"""Regenerate every table and figure of the paper's evaluation as one report.

Prints Tables 1-4 and the series behind Figures 3, 5, 6a, 6b, 7 from the
calibrated cost model, plus the headline averages.  (Figure 4 — the real
masked-training accuracy run — lives in
``benchmarks/bench_fig4_training_accuracy.py`` and ``private_training.py``
because it trains models rather than evaluating the cost model.)

Run:  python examples/paper_report.py
"""

from repro.perf import (
    TABLE2_HEADERS,
    fig3_series,
    fig5_series,
    fig6a_series,
    fig6b_series,
    fig7_series,
    headline_speedups,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
)
from repro.reporting import render_series, render_table


def main() -> None:
    rows = table1_rows()
    print(
        render_table(
            ["Operations", "Linear", "Maxpool", "Relu", "Total"],
            [
                [r["operation"]] + [f"{r[k]:.2f}x" for k in ("linear", "maxpool", "relu", "total")]
                for r in rows
            ],
            title="Table 1 — GPU speedup over SGX (VGG16, ImageNet)",
        )
    )

    print()
    print(render_table(TABLE2_HEADERS, table2_rows(), title="Table 2 — prior techniques"))

    print()
    print(
        render_table(
            ["Model", "DK lin", "DK nonlin", "DK enc/dec", "DK comm", "BL lin", "BL nonlin"],
            [
                [
                    r["model"],
                    f"{r['darknight']['linear']:.2f}",
                    f"{r['darknight']['nonlinear']:.2f}",
                    f"{r['darknight']['encode_decode']:.2f}",
                    f"{r['darknight']['communication']:.2f}",
                    f"{r['baseline']['linear']:.2f}",
                    f"{r['baseline']['nonlinear']:.2f}",
                ]
                for r in table3_rows()
            ],
            title="Table 3 — training time breakdown (fractions)",
        )
    )

    print()
    print(
        render_table(
            ["Model", "over DarKnight", "over SGX-only"],
            [
                [r["model"], f"{r['speedup_over_darknight']:.1f}x", f"{r['speedup_over_sgx']:.1f}x"]
                for r in table4_rows()
            ],
            title="Table 4 — non-private 3-GPU training speedup",
        )
    )

    print()
    for model, speedups in fig3_series().items():
        ks = sorted(speedups)
        print(render_series(f"Fig 3 — {model}", ks, [speedups[k] for k in ks], unit="x"))

    print()
    print(
        render_table(
            ["Model", "non-pipelined", "pipelined", "linear x (pipelined)"],
            [
                [m, f"{v['non_pipelined']:.1f}x", f"{v['pipelined']:.1f}x",
                 f"{v['linear_speedup_pipelined']:.0f}x"]
                for m, v in fig5_series().items()
            ],
            title="Fig 5 — training speedup over SGX baseline",
        )
    )

    print()
    configs = ["SGX", "Slalom", "DarKnight(4)", "Slalom+Integrity", "DarKnight(3)+Integrity"]
    series6a = fig6a_series()
    print(
        render_table(
            ["Model"] + configs,
            [[m] + [f"{series6a[m][c]:.1f}x" for c in configs] for m in series6a],
            title="Fig 6a — inference speedup over SGX-only",
        )
    )

    print()
    series6b = fig6b_series()
    ks = sorted(series6b["Total"])
    print(
        render_table(
            ["Operation"] + [f"K={k}" for k in ks],
            [[op] + [f"{series6b[op][k]:.2f}x" for k in ks] for op in series6b],
            title="Fig 6b — per-op inference speedup vs DarKnight(1), VGG16",
        )
    )

    print()
    f7 = fig7_series()
    print(render_series("Fig 7 — SGX multithread latency (vs 1 thread)",
                        sorted(f7), [f7[t] for t in sorted(f7)], unit="x"))

    print()
    headline = headline_speedups()
    print(
        f"headline: avg training speedup {headline['training_speedup_avg']:.1f}x"
        " (paper 6.5x), avg inference speedup"
        f" {headline['inference_speedup_avg']:.1f}x (paper 12.5x)"
    )


if __name__ == "__main__":
    main()
