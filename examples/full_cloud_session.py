"""The whole Figure-1 story in one session.

A data holder:

1. attests the cloud enclave (and refuses a wrong one);
2. uploads encrypted training data over the established channel;
3. the enclave trains privately via masked TEE+GPU offload — with a
   byzantine GPU in the pool, caught by the integrity share and benched by
   the recovery executor;
4. the trained model goes live behind the multi-tenant serving subsystem:
   many clients' single-sample requests are coalesced into virtual
   batches, each tenant attesting once and riding a cached session.

Run:  python examples/full_cloud_session.py [--seed N]
"""

import numpy as np

from repro.cli import parse_seed_flag
from repro.data import cifar_like
from repro.enclave import Enclave
from repro.errors import AttestationError
from repro.fieldmath import PrimeField
from repro.gpu import GpuCluster, RandomTamper
from repro.models import build_mini_vgg
from repro.quantization import QuantizationConfig
from repro.runtime import (
    ClientSession,
    DarKnightBackend,
    DarKnightConfig,
    RecoveringExecutor,
    Trainer,
)
from repro.serving import PrivateInferenceServer, ServingConfig, trace_from_arrays

SEED = parse_seed_flag(default=0)


def main() -> None:
    field = PrimeField()

    # --- 1. attestation -------------------------------------------------
    evil = Enclave(code_identity="trojaned-enclave", seed=SEED)
    try:
        ClientSession.connect(evil, expected_code_identity="darknight-enclave-v1")
        raise AssertionError("client accepted the wrong enclave!")
    except AttestationError as exc:
        print(f"client refused rogue enclave: {exc}")

    enclave = Enclave(code_identity="darknight-enclave-v1", seed=SEED + 1)
    session = ClientSession.connect(enclave)
    print("client attested the genuine enclave and opened a secure channel")

    # --- 2. encrypted provisioning --------------------------------------
    data = cifar_like(n_train=64, n_test=32, seed=SEED, size=8)
    x_train, y_train = session.provision(data.x_train, data.y_train)
    print(
        f"uploaded {x_train.shape[0]} samples;"
        f" {session.link.total_bytes:,} ciphertext bytes crossed the wire"
    )

    # --- 3. private training with a byzantine GPU in the pool -----------
    cfg = DarKnightConfig(virtual_batch_size=2, integrity=True, seed=SEED + 2)
    cluster = GpuCluster(
        field,
        cfg.n_gpus_required + 1,  # one spare for recovery
        fault_injectors={3: RandomTamper(field, probability=1.0, seed=SEED + 3)},
    )

    # First, bench the liar with the recovery executor on a probe batch.
    executor = RecoveringExecutor(cluster, enclave.rng)
    cluster.broadcast_weights("probe_w", enclave.rng.uniform((192, 4)))
    quantizer = QuantizationConfig(field=field)
    probe = quantizer.quantize(x_train[:2].reshape(2, -1) / 4.0)
    _, report = executor.execute_forward(
        probe, k=2, m=1, gpu_op=lambda dev, key: dev.dense_forward(key, "probe_w")
    )
    print(
        f"probe computation took {report.attempts} attempt(s);"
        f" quarantined GPUs: {list(executor.quarantined_devices)}"
    )

    # Train on the honest survivors.
    honest = GpuCluster(field, cfg.n_gpus_required)
    backend = DarKnightBackend(cfg, enclave=enclave, cluster=honest)
    net = build_mini_vgg(
        input_shape=data.input_shape, n_classes=10,
        rng=np.random.default_rng(SEED), width=8,
    )
    trainer = Trainer(net, backend, lr=0.08, momentum=0.9)
    history = trainer.fit(x_train, y_train, epochs=2, batch_size=16)
    print(f"private training: loss {history.loss[0]:.3f} -> {history.loss[-1]:.3f}")

    # --- 4. multi-tenant private serving --------------------------------
    # The trained model goes behind the serving subsystem: the test set
    # arrives as independent single-sample requests from three tenants,
    # coalesced back into virtual batches under a 10 ms deadline.
    serve_cfg = ServingConfig(
        darknight=DarKnightConfig(
            virtual_batch_size=4, integrity=True, seed=SEED + 4
        ),
        max_batch_wait=0.01,
    )
    server = PrivateInferenceServer(net, serve_cfg)
    trace = trace_from_arrays(
        data.x_test, tenants=["alice", "bob", "carol"], seed=SEED + 5
    )
    serving_report = server.serve_trace(trace)
    completed = serving_report.completed
    labels = {i: int(data.y_test[i]) for i in range(len(data.y_test))}
    hits = sum(1 for o in completed if o.prediction == labels[o.request_id])
    metrics = serving_report.metrics
    print(
        f"served {metrics.completed} inference requests to"
        f" {len(serving_report.tenants)} tenants in {metrics.batches}"
        " integrity-verified virtual batches"
        f" ({serving_report.handshakes} handshakes,"
        f" fill {metrics.batch_fill_ratio:.2f},"
        f" p99 {metrics.latency_percentile(99) * 1e3:.1f} ms)"
    )
    print(f"private test accuracy over the served trace: {hits / len(completed):.2f}")


if __name__ == "__main__":
    main()
