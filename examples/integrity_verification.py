"""Integrity verification: catching a malicious GPU in the act.

Section 4.4: with one redundant encoded share (K' = K + M + 1 GPUs), every
result is recoverable from two distinct share subsets, so a GPU that
tampers with its computation produces inconsistent decodes and is detected.
This example runs private inference twice — once against honest GPUs, once
with a byzantine device injected — and shows the verifier firing, plus
Slalom's Freivalds-based alternative on the same tampered product.

Run:  python examples/integrity_verification.py [--seed N]
"""

import numpy as np

from repro.cli import parse_seed_flag
from repro.errors import IntegrityError
from repro.fieldmath import FieldRng, PrimeField, field_matmul
from repro.gpu import GpuCluster, RandomTamper
from repro.models import build_mini_vgg
from repro.runtime import DarKnightBackend, DarKnightConfig, PrivateInferenceEngine
from repro.slalom import freivalds_check

SEED = parse_seed_flag(default=0)


def darknight_detection() -> None:
    rng = np.random.default_rng(SEED)
    net = build_mini_vgg(input_shape=(3, 8, 8), n_classes=10, rng=rng, width=8)
    x = rng.normal(size=(2, 3, 8, 8))
    field = PrimeField()
    cfg = DarKnightConfig(virtual_batch_size=2, integrity=True, seed=SEED + 1)

    print(f"cluster: {cfg.n_gpus_required} GPUs (K=2 inputs + M=1 noise + 1 redundant)")
    honest = PrivateInferenceEngine(net, backend=DarKnightBackend(cfg))
    print("honest GPUs  ->", honest.predict(x))

    byzantine = GpuCluster(
        field,
        cfg.n_gpus_required,
        fault_injectors={1: RandomTamper(field, probability=1.0, seed=SEED + 2)},
    )
    engine = PrivateInferenceEngine(
        net, backend=DarKnightBackend(cfg, cluster=byzantine)
    )
    try:
        engine.predict(x)
        raise AssertionError("tampering went undetected!")
    except IntegrityError as exc:
        print(f"byzantine GPU -> detected: {exc}")


def freivalds_comparison() -> None:
    """Slalom's check on the same class of tamper: a forged matrix product."""
    field = PrimeField()
    rng = FieldRng(field, seed=SEED + 3)
    w = rng.uniform((64, 128))
    x = rng.uniform((128, 32))
    honest = field_matmul(field, w, x)
    forged = honest.copy()
    forged[5, 7] = field.add(forged[5, 7], 1)
    print("\nFreivalds (Slalom's verifier) on the same forged product:")
    print("  honest product verifies:", freivalds_check(field, w, x, honest, rng))
    print("  forged product verifies:", freivalds_check(field, w, x, forged, rng, trials=3))


if __name__ == "__main__":
    darknight_detection()
    freivalds_comparison()
