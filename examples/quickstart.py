"""Quickstart: mask a virtual batch, offload, decode — then go end-to-end.

Walks the paper's Section 3.1 flow at the smallest possible scale:

1. encode two quantized inputs + noise into three masked shares;
2. let simulated GPUs run the linear op on the shares;
3. decode the exact results inside the (simulated) enclave;
4. then do the same implicitly by running a real model through the
   DarKnight backend;
5. finally serve *concurrent single-sample requests* through the
   multi-tenant server, which coalesces them back into virtual batches.

Run:  python examples/quickstart.py [--seed N]
"""

import numpy as np

from repro import (
    CoefficientSet,
    DarKnightConfig,
    FieldRng,
    ForwardDecoder,
    ForwardEncoder,
    PrimeField,
    PrivateInferenceServer,
    QuantizationConfig,
    ServingConfig,
    build_mini_vgg,
    synthetic_trace,
)
from repro.cli import parse_seed_flag
from repro.fieldmath import field_matmul
from repro.nn import PlainBackend
from repro.runtime import DarKnightBackend

SEED = parse_seed_flag(default=0)


def manual_masking_walkthrough() -> None:
    """Steps 1-3: the raw masking protocol on a toy linear layer."""
    field = PrimeField()  # p = 2**25 - 39, as in the paper
    rng = FieldRng(field, seed=SEED)
    quantizer = QuantizationConfig(fractional_bits=8, field=field)

    # Two private inputs and a public weight matrix.
    x = np.array([[0.25, -0.5, 0.75, 0.1], [0.9, 0.2, -0.3, -0.8]])
    w = np.array([[0.5, -0.25], [0.1, 0.9], [-0.4, 0.2], [0.3, 0.3]])

    # K=2 inputs + M=1 noise -> 3 shares; coefficients stay enclave-secret.
    coeffs = CoefficientSet.generate(rng, k=2, m=1)
    encoded = ForwardEncoder(coeffs, rng).encode(quantizer.quantize(x))
    print("masked share 0 (what GPU 0 sees):", encoded.shares[0][:4], "...")

    # Each simulated GPU computes <W, x̄> on its single share.
    w_q = quantizer.quantize(w)
    gpu_outputs = np.stack(
        [field_matmul(field, s.reshape(1, -1), w_q).ravel() for s in encoded.shares]
    )

    # The enclave decodes exactly and converts back to floats.
    decoded = ForwardDecoder(coeffs).decode(gpu_outputs)
    y = quantizer.dequantize_product(decoded)
    print("decoded result:", np.round(y, 3))
    print("float reference:", np.round(x @ w, 3))
    assert np.max(np.abs(y - x @ w)) < 0.05


def end_to_end_model() -> None:
    """Step 4: the same protocol, driven by a real model + backend."""
    rng = np.random.default_rng(SEED)
    net = build_mini_vgg(input_shape=(3, 8, 8), n_classes=10, rng=rng, width=8)
    x = rng.normal(size=(4, 3, 8, 8))

    private = net.forward(
        x,
        DarKnightBackend(DarKnightConfig(virtual_batch_size=2, seed=SEED + 1)),
        training=False,
    )
    plain = net.forward(x, PlainBackend(), training=False)
    gap = float(np.max(np.abs(private - plain)))
    print(f"\nMiniVGG masked vs float logits: max gap {gap:.4f} (quantization only)")
    assert gap < 0.2


def serve_concurrent_requests() -> None:
    """Step 5: independent tenant requests, coalesced into virtual batches."""
    rng = np.random.default_rng(SEED)
    net = build_mini_vgg(input_shape=(3, 8, 8), n_classes=10, rng=rng, width=8)
    trace = synthetic_trace(
        n_requests=12, input_shape=(3, 8, 8), n_tenants=3, seed=SEED
    )
    server = PrivateInferenceServer(
        net,
        ServingConfig(darknight=DarKnightConfig(virtual_batch_size=4, seed=SEED)),
    )
    report = server.serve_trace(trace)
    metrics = report.metrics
    print(
        f"\nserved {metrics.completed} single-sample requests from"
        f" {len(report.tenants)} tenants in {metrics.batches} virtual batches"
        f" (fill {metrics.batch_fill_ratio:.2f},"
        f" {report.handshakes} attestation handshakes,"
        f" p99 {metrics.latency_percentile(99) * 1e3:.1f} ms)"
    )
    assert metrics.completed == 12
    # One handshake per distinct tenant in the trace, cached afterwards.
    assert report.handshakes == len({r.tenant for r in trace})


if __name__ == "__main__":
    manual_masking_walkthrough()
    end_to_end_model()
    serve_concurrent_requests()
    print("\nquickstart OK")
