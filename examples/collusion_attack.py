"""The privacy boundary, attacked from both sides (Sections 4.5 and 5).

With ``M`` noise vectors DarKnight tolerates up to ``M`` colluding GPUs.
This example provisions M = 2, then:

* lets coalitions of size 1, 2 (≤ M) attack with *leaked* secret
  coefficients — reconstruction fails, pooled shares are uniform;
* lets a coalition of K + M = 5 GPUs attack — reconstruction succeeds
  exactly, showing the tolerance is tight, not conservative;
* measures the statistical dependence an adversary could exploit: mutual
  information and correlation of shares vs. inputs sit at the estimator
  floor, while an unmasked control blows up.

Run:  python examples/collusion_attack.py [--seed N]
"""

from repro.analysis import (
    chi_square_uniformity,
    run_collusion_attack,
    share_input_dependence,
)
from repro.cli import parse_seed_flag
from repro.fieldmath import FieldRng, PrimeField

K, M = 3, 2
SEED = parse_seed_flag(default=0)


def main() -> None:
    field = PrimeField()
    rng = FieldRng(field, seed=SEED)
    inputs = rng.uniform((K, 64))

    print(f"masking K={K} inputs with M={M} noise vectors -> {K + M} shares\n")
    for coalition in [(0,), (0, 1), (1, 3), (0, 1, 2), tuple(range(K + M))]:
        result = run_collusion_attack(field, inputs, coalition, k=K, m=M, seed=SEED + 1)
        verdict = "RECONSTRUCTED" if result.success else "failed"
        print(f"coalition {coalition!s:<18} (|C|={len(coalition)}): {verdict} — {result.reason}")

    # Statistical view of a single GPU's feed across many virtual batches.
    masked = share_input_dependence(field, k=K, m=M, n_trials=192, seed=SEED + 2)
    control = share_input_dependence(
        field, k=K, m=M, n_trials=192, seed=SEED + 2, mask=False
    )
    print("\nshare/input dependence over 192 fresh encodings:")
    print(
        f"  masked : MI excess {masked.mi_excess:+.4f} nats,"
        f" max |corr| {masked.max_correlation:.3f}"
    )
    print(
        f"  control: MI excess {control.mi_excess:+.4f} nats,"
        f" max |corr| {control.max_correlation:.3f}  (no masking)"
    )

    stat, dof = chi_square_uniformity(
        rng.uniform((20000,)), field.p, bins=64
    )
    print(f"\nuniformity sanity (chi-square, dof={dof}): fresh field noise -> {stat:.1f}")


if __name__ == "__main__":
    main()
