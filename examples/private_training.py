"""Private training: the paper's headline capability, reproduced end to end.

Trains the same Mini model twice on identical synthetic CIFAR-like data —
once on raw floats, once through the full DarKnight pipeline (quantize ->
mask -> simulated GPUs -> decode, aggregate-only weight updates) — and
prints the two accuracy curves side by side (the Fig. 4 experiment), plus
the Slalom counter-demonstration: the same training loop refuses to run on
a precomputed-blinding backend (Section 7.2).

Run:  python examples/private_training.py [--seed N]
"""

import numpy as np

from repro import DarKnightConfig, Trainer, build_mini_vgg
from repro.cli import parse_seed_flag
from repro.data import cifar_like
from repro.runtime import DarKnightBackend
from repro.slalom import SlalomBackend, SlalomTrainingError

SEED = parse_seed_flag(default=0)


def train(mode: str, data, seed: int = SEED) -> list[float]:
    """Train one model; returns per-epoch validation accuracy."""
    rng = np.random.default_rng(seed)  # identical init for both modes
    net = build_mini_vgg(input_shape=data.input_shape, n_classes=10, rng=rng, width=8)
    if mode == "raw":
        trainer = Trainer(net, lr=0.08, momentum=0.9)
    else:
        backend = DarKnightBackend(DarKnightConfig(virtual_batch_size=2, seed=seed))
        trainer = Trainer(net, backend, lr=0.08, momentum=0.9)
    history = trainer.fit(
        data.x_train,
        data.y_train,
        epochs=3,
        batch_size=16,
        val_x=data.x_test,
        val_y=data.y_test,
        shuffle_seed=seed,
    )
    return history.val_accuracy


def main() -> None:
    data = cifar_like(n_train=128, n_test=64, seed=SEED, size=8)
    print("training MiniVGG on raw floats...")
    raw = train("raw", data)
    print("training MiniVGG through DarKnight (masked TEE+GPU)...")
    dk = train("darknight", data)

    print("\nepoch | raw acc | darknight acc")
    for epoch, (a, b) in enumerate(zip(raw, dk), start=1):
        print(f"  {epoch}   |  {a:.3f}  |  {b:.3f}")
    print(f"final gap: {abs(raw[-1] - dk[-1]):.3f} (paper: < 0.01 at full scale)")

    # And the system Slalom cannot build: a training step on blinded offload.
    print("\nattempting the same training step under Slalom...")
    rng = np.random.default_rng(SEED)
    net = build_mini_vgg(input_shape=data.input_shape, n_classes=10, rng=rng, width=8)
    trainer = Trainer(net, SlalomBackend(), lr=0.08)
    try:
        trainer.train_step(data.x_train[:4], data.y_train[:4])
    except SlalomTrainingError as exc:
        print(f"refused, as the paper argues: {exc}")


if __name__ == "__main__":
    main()
