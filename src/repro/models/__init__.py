"""Model zoo: exact full-size specs for counting + runnable Mini variants."""

from repro.models.mobilenet import (
    build_mini_mobilenet,
    mini_mobilenet_spec,
    mobilenet_v1_spec,
    mobilenet_v2_spec,
)
from repro.models.resnet import build_mini_resnet, mini_resnet_spec, resnet50_spec
from repro.models.specs import (
    LINEAR_KINDS,
    NONLINEAR_KINDS,
    LayerCounts,
    LayerSpec,
    ModelSpec,
    SpecBuilder,
)
from repro.models.vgg import build_mini_vgg, mini_vgg_spec, vgg16_spec

__all__ = [
    "ModelSpec",
    "LayerSpec",
    "LayerCounts",
    "SpecBuilder",
    "LINEAR_KINDS",
    "NONLINEAR_KINDS",
    "vgg16_spec",
    "build_mini_vgg",
    "mini_vgg_spec",
    "resnet50_spec",
    "build_mini_resnet",
    "mini_resnet_spec",
    "mobilenet_v1_spec",
    "mobilenet_v2_spec",
    "build_mini_mobilenet",
    "mini_mobilenet_spec",
]
