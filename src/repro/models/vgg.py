"""VGG16: full-size spec (op counting) and a runnable Mini variant.

VGG16 [Simonyan & Zisserman 2014] is the paper's headline benchmark — 138 M
parameters, almost all time in big dense convolutions, no normalisation
layers.  That profile is why DarKnight's GPU offload shines on it (Table 1,
Fig. 5) and why it needs the dynamic max-abs quantization (Section 5).
"""

from __future__ import annotations

import numpy as np

from repro.models.specs import ModelSpec, SpecBuilder
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential

#: Channel plan per block: (n_convs, channels).
_VGG16_BLOCKS = [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)]


def vgg16_spec(input_size: int = 224, n_classes: int = 1000) -> ModelSpec:
    """The exact VGG16 layer inventory at the given input resolution.

    At 224x224 this reports ~138.4M parameters and ~15.5 GMACs forward,
    matching the published architecture.
    """
    b = SpecBuilder("VGG16", (3, input_size, input_size))
    for n_convs, channels in _VGG16_BLOCKS:
        for _ in range(n_convs):
            b.conv(channels, kernel=3, stride=1, pad=1).relu()
        b.maxpool(2)
    b.dense(4096).relu()
    b.dense(4096).relu()
    b.dense(n_classes)
    b.softmax()
    return b.build()


def build_mini_vgg(
    input_shape: tuple[int, int, int] = (3, 16, 16),
    n_classes: int = 10,
    rng: np.random.Generator | None = None,
    width: int = 16,
) -> Sequential:
    """A laptop-scale VGG-family network (conv stacks + maxpool, no BN).

    Structurally faithful to VGG — plain 3x3 conv stacks, ReLU, maxpool,
    dense head, *no* normalisation layers — so it exercises exactly the
    DarKnight code paths full VGG16 would (including the dynamic
    normalisation requirement).  Used for the Fig. 4 accuracy experiments.
    """
    rng = rng or np.random.default_rng()
    c, h, w = input_shape
    layers = [
        Conv2D(c, width, 3, 1, 1, rng=rng),
        ReLU(),
        Conv2D(width, width, 3, 1, 1, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Conv2D(width, 2 * width, 3, 1, 1, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Dense(2 * width * (h // 4) * (w // 4), 4 * width, rng=rng),
        ReLU(),
        Dense(4 * width, n_classes, rng=rng),
    ]
    return Sequential(layers, input_shape)


def mini_vgg_spec(
    input_shape: tuple[int, int, int] = (3, 16, 16),
    n_classes: int = 10,
    width: int = 16,
) -> ModelSpec:
    """Counted spec of :func:`build_mini_vgg` (keeps perf + runnable in sync)."""
    c, h, w = input_shape
    b = SpecBuilder("MiniVGG", input_shape)
    b.conv(width).relu().conv(width).relu().maxpool(2)
    b.conv(2 * width).relu().maxpool(2)
    b.dense(4 * width).relu().dense(n_classes).softmax()
    del c, h, w
    return b.build()
