"""MobileNetV1/V2: full-size specs and a runnable Mini variant.

The paper calls MobileNetV2 "the worst-case benchmark for our model as it
reduces linear operations considerably (using depth-wise separable
convolution)" — little linear work to offload, lots of BN to keep in the
enclave, hence only 2.2x training speedup (Fig. 5).  MobileNetV1 appears in
the inference comparison against Slalom (Fig. 6a).
"""

from __future__ import annotations

import numpy as np

from repro.models.specs import ModelSpec, SpecBuilder
from repro.nn import (
    BatchNorm2D,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    GlobalAvgPool,
    ReLU,
    Sequential,
)

#: MobileNetV1 separable blocks: (pointwise_out_channels, stride).
_MOBILENET_V1_BLOCKS = [
    (64, 1),
    (128, 2), (128, 1),
    (256, 2), (256, 1),
    (512, 2), (512, 1), (512, 1), (512, 1), (512, 1), (512, 1),
    (1024, 2), (1024, 1),
]

#: MobileNetV2 inverted residual plan: (expansion, out_channels, repeats, stride).
_MOBILENET_V2_BLOCKS = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def mobilenet_v1_spec(input_size: int = 224, n_classes: int = 1000) -> ModelSpec:
    """Exact MobileNetV1 inventory: ~4.2M params, ~0.57 GMACs at 224x224."""
    b = SpecBuilder("MobileNetV1", (3, input_size, input_size))
    b.conv(32, kernel=3, stride=2, pad=1).batchnorm().relu()
    for out_channels, stride in _MOBILENET_V1_BLOCKS:
        b.depthwise_conv(kernel=3, stride=stride, pad=1).batchnorm().relu()
        b.conv(out_channels, kernel=1, stride=1, pad=0).batchnorm().relu()
    b.global_avgpool()
    b.dense(n_classes)
    b.softmax()
    return b.build()


def mobilenet_v2_spec(input_size: int = 224, n_classes: int = 1000) -> ModelSpec:
    """Exact MobileNetV2 inventory: ~3.5M params, ~0.3 GMACs at 224x224.

    Inverted residuals: 1x1 expand (t×), 3x3 depthwise, 1x1 linear project,
    residual add when stride 1 and shapes match.
    """
    b = SpecBuilder("MobileNetV2", (3, input_size, input_size))
    b.conv(32, kernel=3, stride=2, pad=1).batchnorm().relu()
    in_channels = 32
    for expansion, out_channels, repeats, first_stride in _MOBILENET_V2_BLOCKS:
        for i in range(repeats):
            stride = first_stride if i == 0 else 1
            hidden = in_channels * expansion
            if expansion != 1:
                b.conv(hidden, kernel=1, stride=1, pad=0).batchnorm().relu()
            b.depthwise_conv(kernel=3, stride=stride, pad=1).batchnorm().relu()
            b.conv(out_channels, kernel=1, stride=1, pad=0).batchnorm()
            if stride == 1 and in_channels == out_channels:
                b.add()
            in_channels = out_channels
    b.conv(1280, kernel=1, stride=1, pad=0).batchnorm().relu()
    b.global_avgpool()
    b.dense(n_classes)
    b.softmax()
    return b.build()


def build_mini_mobilenet(
    input_shape: tuple[int, int, int] = (3, 16, 16),
    n_classes: int = 10,
    rng: np.random.Generator | None = None,
    width: int = 16,
) -> Sequential:
    """Laptop-scale MobileNet-family net (depthwise-separable blocks + BN)."""
    rng = rng or np.random.default_rng()
    c, _, _ = input_shape

    def separable(in_ch: int, out_ch: int, stride: int) -> list:
        return [
            DepthwiseConv2D(in_ch, 3, stride, 1, rng=rng),
            BatchNorm2D(in_ch),
            ReLU(),
            Conv2D(in_ch, out_ch, 1, 1, 0, rng=rng),
            BatchNorm2D(out_ch),
            ReLU(),
        ]

    layers = [
        Conv2D(c, width, 3, 1, 1, rng=rng),
        BatchNorm2D(width),
        ReLU(),
        *separable(width, 2 * width, 2),
        *separable(2 * width, 4 * width, 2),
        GlobalAvgPool(),
        Dense(4 * width, n_classes, rng=rng),
    ]
    return Sequential(layers, input_shape)


def mini_mobilenet_spec(
    input_shape: tuple[int, int, int] = (3, 16, 16),
    n_classes: int = 10,
    width: int = 16,
) -> ModelSpec:
    """Counted spec of :func:`build_mini_mobilenet`."""
    b = SpecBuilder("MiniMobileNet", input_shape)
    b.conv(width).batchnorm().relu()
    b.depthwise_conv(stride=2).batchnorm().relu()
    b.conv(2 * width, kernel=1, pad=0).batchnorm().relu()
    b.depthwise_conv(stride=2).batchnorm().relu()
    b.conv(4 * width, kernel=1, pad=0).batchnorm().relu()
    b.global_avgpool().dense(n_classes).softmax()
    return b.build()
