"""Layer-by-layer architecture specs for op/byte counting.

The paper's timing experiments (Tables 1, 3, 4; Figures 3, 5, 6, 7) run
full-size VGG16/ResNet50/MobileNet on ImageNet-shaped inputs — far beyond
what a numpy simulator should *execute*.  What the performance model needs
is exact *counts*: multiply-accumulates per linear layer, element counts per
non-linear layer, activation and weight bytes.  A :class:`ModelSpec` is that
inventory, built layer by layer with shapes propagated exactly as the real
network would.

Specs are pure data — no tensors are ever allocated — so building VGG16 at
224x224 costs microseconds while reporting its true 15.5 GMAC forward pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.errors import ConfigurationError
from repro.nn.functional import conv_output_size

#: Operator classes the cost model prices separately.
LINEAR_KINDS = frozenset({"conv", "dense", "depthwise_conv"})
NONLINEAR_KINDS = frozenset(
    {"relu", "maxpool", "avgpool", "global_avgpool", "batchnorm", "add", "softmax", "flatten"}
)


@dataclass(frozen=True)
class LayerCounts:
    """Static cost inventory of one layer.

    Attributes
    ----------
    macs_forward:
        Multiply-accumulates of the forward linear op (0 for non-linear).
    macs_grad_w / macs_grad_x:
        Backward MACs for the weight and input gradients.
    elementwise:
        Element-operations for non-linear layers (per forward pass).
    params / param_bytes:
        Trainable scalar count and float32 footprint.
    activation_elems / activation_bytes:
        Output tensor size per sample (float32 bytes).
    """

    macs_forward: int = 0
    macs_grad_w: int = 0
    macs_grad_x: int = 0
    elementwise: int = 0
    params: int = 0
    param_bytes: int = 0
    activation_elems: int = 0
    activation_bytes: int = 0


@dataclass(frozen=True)
class LayerSpec:
    """One layer of a counted architecture."""

    name: str
    kind: str
    in_shape: tuple[int, ...]
    out_shape: tuple[int, ...]
    counts: LayerCounts

    @property
    def is_linear(self) -> bool:
        """True for the bilinear ops DarKnight offloads."""
        return self.kind in LINEAR_KINDS


@dataclass
class ModelSpec:
    """A named, counted architecture."""

    name: str
    input_shape: tuple[int, int, int]
    layers: list[LayerSpec] = dataclass_field(default_factory=list)

    # ------------------------------------------------------------------
    # aggregate queries used by the perf model
    # ------------------------------------------------------------------
    @property
    def n_params(self) -> int:
        """Total trainable scalars."""
        return sum(l.counts.params for l in self.layers)

    @property
    def param_bytes(self) -> int:
        """float32 weight footprint."""
        return sum(l.counts.param_bytes for l in self.layers)

    def linear_macs_forward(self) -> int:
        """Forward MACs across all offloadable layers (per sample)."""
        return sum(l.counts.macs_forward for l in self.layers if l.is_linear)

    def linear_macs_backward(self) -> int:
        """Backward MACs (weight + input gradients) per sample."""
        return sum(
            l.counts.macs_grad_w + l.counts.macs_grad_x
            for l in self.layers
            if l.is_linear
        )

    def elementwise_ops(self, kinds: frozenset[str] | None = None) -> int:
        """Non-linear element-ops per sample, optionally for specific kinds."""
        selected = NONLINEAR_KINDS if kinds is None else kinds
        return sum(l.counts.elementwise for l in self.layers if l.kind in selected)

    def activation_bytes(self) -> int:
        """Sum of per-layer output bytes for one sample (forward footprint)."""
        return sum(l.counts.activation_bytes for l in self.layers)

    def max_activation_bytes(self) -> int:
        """Largest single activation (per sample) — the paging hot spot."""
        return max((l.counts.activation_bytes for l in self.layers), default=0)

    def layers_of_kind(self, *kinds: str) -> list[LayerSpec]:
        """All layers of the given kinds, in network order."""
        return [l for l in self.layers if l.kind in kinds]

    def summary(self) -> str:
        """Human-readable inventory table."""
        lines = [
            f"{self.name}: input {self.input_shape}, "
            f"{self.n_params/1e6:.1f}M params, "
            f"{self.linear_macs_forward()/1e9:.2f} GMACs forward"
        ]
        for l in self.layers:
            lines.append(
                f"  {l.name:<24} {l.kind:<14} {str(l.in_shape):<18} ->"
                f" {str(l.out_shape):<18} macs={l.counts.macs_forward:>12,}"
            )
        return "\n".join(lines)


class SpecBuilder:
    """Incremental :class:`ModelSpec` construction with shape propagation."""

    def __init__(self, name: str, input_shape: tuple[int, int, int]) -> None:
        self.spec = ModelSpec(name=name, input_shape=tuple(input_shape))
        self.shape: tuple[int, ...] = tuple(input_shape)
        self._counter = 0

    def _add(self, kind: str, out_shape: tuple[int, ...], counts: LayerCounts, label=None):
        self._counter += 1
        self.spec.layers.append(
            LayerSpec(
                name=label or f"{kind}_{self._counter}",
                kind=kind,
                in_shape=self.shape,
                out_shape=out_shape,
                counts=counts,
            )
        )
        self.shape = out_shape
        return self

    # ------------------------------------------------------------------
    # linear layers
    # ------------------------------------------------------------------
    def conv(self, out_channels: int, kernel: int = 3, stride: int = 1, pad: int = 1,
             bias: bool = True, label: str | None = None) -> "SpecBuilder":
        """Standard convolution."""
        c, h, w = self.shape
        oh = conv_output_size(h, kernel, stride, pad)
        ow = conv_output_size(w, kernel, stride, pad)
        macs = oh * ow * out_channels * c * kernel * kernel
        params = out_channels * c * kernel * kernel + (out_channels if bias else 0)
        out_elems = out_channels * oh * ow
        counts = LayerCounts(
            macs_forward=macs,
            macs_grad_w=macs,
            macs_grad_x=macs,
            params=params,
            param_bytes=params * 4,
            activation_elems=out_elems,
            activation_bytes=out_elems * 4,
        )
        return self._add("conv", (out_channels, oh, ow), counts, label)

    def depthwise_conv(self, kernel: int = 3, stride: int = 1, pad: int = 1,
                       label: str | None = None) -> "SpecBuilder":
        """Depthwise convolution (MobileNet)."""
        c, h, w = self.shape
        oh = conv_output_size(h, kernel, stride, pad)
        ow = conv_output_size(w, kernel, stride, pad)
        macs = oh * ow * c * kernel * kernel
        params = c * kernel * kernel
        out_elems = c * oh * ow
        counts = LayerCounts(
            macs_forward=macs,
            macs_grad_w=macs,
            macs_grad_x=macs,
            params=params,
            param_bytes=params * 4,
            activation_elems=out_elems,
            activation_bytes=out_elems * 4,
        )
        return self._add("depthwise_conv", (c, oh, ow), counts, label)

    def dense(self, out_features: int, bias: bool = True, label=None) -> "SpecBuilder":
        """Fully connected layer; flattens implicitly if needed."""
        if len(self.shape) != 1:
            self.flatten()
        (in_features,) = self.shape
        macs = in_features * out_features
        params = in_features * out_features + (out_features if bias else 0)
        counts = LayerCounts(
            macs_forward=macs,
            macs_grad_w=macs,
            macs_grad_x=macs,
            params=params,
            param_bytes=params * 4,
            activation_elems=out_features,
            activation_bytes=out_features * 4,
        )
        return self._add("dense", (out_features,), counts, label)

    # ------------------------------------------------------------------
    # non-linear layers
    # ------------------------------------------------------------------
    def _elementwise(self, kind: str, out_shape, elems_factor: float = 1.0, label=None):
        out_elems = 1
        for d in out_shape:
            out_elems *= d
        counts = LayerCounts(
            elementwise=int(out_elems * elems_factor),
            activation_elems=out_elems,
            activation_bytes=out_elems * 4,
        )
        return self._add(kind, tuple(out_shape), counts, label)

    def relu(self, label=None) -> "SpecBuilder":
        """Rectifier (1 op per element)."""
        return self._elementwise("relu", self.shape, 1.0, label)

    def maxpool(self, size: int = 2, stride: int | None = None, label=None) -> "SpecBuilder":
        """Max pooling (size^2 comparisons per output element)."""
        stride = stride or size
        c, h, w = self.shape
        oh = conv_output_size(h, size, stride, 0)
        ow = conv_output_size(w, size, stride, 0)
        return self._elementwise("maxpool", (c, oh, ow), float(size * size), label)

    def avgpool(self, size: int = 2, stride: int | None = None, label=None) -> "SpecBuilder":
        """Average pooling."""
        stride = stride or size
        c, h, w = self.shape
        oh = conv_output_size(h, size, stride, 0)
        ow = conv_output_size(w, size, stride, 0)
        return self._elementwise("avgpool", (c, oh, ow), float(size * size), label)

    def global_avgpool(self, label=None) -> "SpecBuilder":
        """Spatial mean per channel."""
        c, h, w = self.shape
        builder = self._elementwise("global_avgpool", (c,), float(h * w), label)
        return builder

    def batchnorm(self, label=None) -> "SpecBuilder":
        """Batch normalisation: ~4 passes over the tensor plus 2 params/channel."""
        c = self.shape[0]
        out_elems = 1
        for d in self.shape:
            out_elems *= d
        counts = LayerCounts(
            elementwise=4 * out_elems,
            params=2 * c,
            param_bytes=8 * c,
            activation_elems=out_elems,
            activation_bytes=out_elems * 4,
        )
        return self._add("batchnorm", self.shape, counts, label)

    def add(self, label=None) -> "SpecBuilder":
        """Residual addition (1 op per element)."""
        return self._elementwise("add", self.shape, 1.0, label)

    def flatten(self, label=None) -> "SpecBuilder":
        """Shape-only reshape."""
        out = 1
        for d in self.shape:
            out *= d
        counts = LayerCounts(activation_elems=out, activation_bytes=out * 4)
        return self._add("flatten", (out,), counts, label)

    def softmax(self, label=None) -> "SpecBuilder":
        """Final probability layer (counted ~3 ops/element)."""
        return self._elementwise("softmax", self.shape, 3.0, label)

    def build(self) -> ModelSpec:
        """Finish and return the spec."""
        if not self.spec.layers:
            raise ConfigurationError("spec has no layers")
        return self.spec
