"""ResNet50: full-size spec and a runnable Mini residual network.

ResNet50 [He et al. 2016] brings batch normalisation into every block.  BN
is non-linear, so DarKnight must run it inside the enclave — the paper's
Table 3 shows ResNet spending 75% of DarKnight time in non-linear TEE work,
capping the speedup at 4.2x (Fig. 5).  The spec below reproduces the exact
bottleneck layout (3-4-6-3 blocks) so those ratios emerge from counting.
"""

from __future__ import annotations

import numpy as np

from repro.models.specs import ModelSpec, SpecBuilder
from repro.nn import (
    BatchNorm2D,
    Conv2D,
    Dense,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
    ResidualBlock,
    Sequential,
)

#: (n_blocks, bottleneck_channels, output_channels, first_stride) per stage.
_RESNET50_STAGES = [
    (3, 64, 256, 1),
    (4, 128, 512, 2),
    (6, 256, 1024, 2),
    (3, 512, 2048, 2),
]


def resnet50_spec(input_size: int = 224, n_classes: int = 1000) -> ModelSpec:
    """Exact ResNet50 inventory: ~25.6M params, ~4.1 GMACs at 224x224."""
    b = SpecBuilder("ResNet50", (3, input_size, input_size))
    b.conv(64, kernel=7, stride=2, pad=3).batchnorm().relu()
    b.maxpool(3, stride=2)
    for n_blocks, mid, out, first_stride in _RESNET50_STAGES:
        for block in range(n_blocks):
            stride = first_stride if block == 0 else 1
            project = block == 0
            # The projection path needs the *pre-block* shape; SpecBuilder is
            # sequential, so we count the projection right after the expand
            # conv with matching dims (counts are identical).
            _bottleneck_with_shape(b, mid, out, stride, project)
    b.global_avgpool()
    b.dense(n_classes)
    b.softmax()
    return b.build()


def _bottleneck_with_shape(b: SpecBuilder, mid: int, out: int, stride: int, project: bool):
    """One bottleneck (1x1 reduce, 3x3, 1x1 expand) with optional projection.

    The projection shortcut runs in parallel in the real graph; counting it
    sequentially right after the expand conv is exact for ops/bytes (the
    totals do not depend on ordering), using the stored pre-block shape.
    """
    in_shape = b.shape
    b.conv(mid, kernel=1, stride=1, pad=0).batchnorm().relu()
    b.conv(mid, kernel=3, stride=stride, pad=1).batchnorm().relu()
    b.conv(out, kernel=1, stride=1, pad=0).batchnorm()
    if project:
        # Count the 1x1/stride projection from the stored input shape.
        c_in = in_shape[0]
        oh, ow = b.shape[1], b.shape[2]
        macs = oh * ow * out * c_in
        params = out * c_in + out
        from repro.models.specs import LayerCounts

        counts = LayerCounts(
            macs_forward=macs,
            macs_grad_w=macs,
            macs_grad_x=macs,
            params=params,
            param_bytes=params * 4,
            activation_elems=out * oh * ow,
            activation_bytes=out * oh * ow * 4,
        )
        b._add("conv", (out, oh, ow), counts, label=f"shortcut_proj_{len(b.spec.layers)}")
        b.batchnorm()
    b.add().relu()


def build_mini_resnet(
    input_shape: tuple[int, int, int] = (3, 16, 16),
    n_classes: int = 10,
    rng: np.random.Generator | None = None,
    width: int = 16,
) -> Sequential:
    """Laptop-scale ResNet-family network (BN + residual blocks + GAP head)."""
    rng = rng or np.random.default_rng()
    c, _, _ = input_shape

    def block(channels: int) -> ResidualBlock:
        return ResidualBlock(
            body=[
                Conv2D(channels, channels, 3, 1, 1, rng=rng),
                BatchNorm2D(channels),
                ReLU(),
                Conv2D(channels, channels, 3, 1, 1, rng=rng),
                BatchNorm2D(channels),
            ]
        )

    layers = [
        Conv2D(c, width, 3, 1, 1, rng=rng),
        BatchNorm2D(width),
        ReLU(),
        block(width),
        MaxPool2D(2),
        Conv2D(width, 2 * width, 3, 1, 1, rng=rng),
        BatchNorm2D(2 * width),
        ReLU(),
        block(2 * width),
        GlobalAvgPool(),
        Dense(2 * width, n_classes, rng=rng),
    ]
    return Sequential(layers, input_shape)


def mini_resnet_spec(
    input_shape: tuple[int, int, int] = (3, 16, 16),
    n_classes: int = 10,
    width: int = 16,
) -> ModelSpec:
    """Counted spec of :func:`build_mini_resnet`."""
    b = SpecBuilder("MiniResNet", input_shape)
    b.conv(width).batchnorm().relu()
    b.conv(width).batchnorm().relu().conv(width).batchnorm().add().relu()
    b.maxpool(2)
    b.conv(2 * width).batchnorm().relu()
    b.conv(2 * width).batchnorm().relu().conv(2 * width).batchnorm().add().relu()
    b.global_avgpool().dense(n_classes).softmax()
    return b.build()
