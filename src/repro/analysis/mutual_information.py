"""Empirical verification of the privacy theorem (Section 5, Lemma 1).

The paper's guarantee is information-theoretic: each masked share is
marginally uniform over ``F_p``, so ``I(x̄ : x) = 0``.  These estimators let
tests and examples *measure* that on simulated data:

* histogram mutual information between inputs and shares (≈ the estimator
  bias for masked data, visibly positive for unmasked combinations);
* chi-square uniformity of share values over the field;
* Pearson correlation screening between share and input coordinates.

Estimators are biased upward on finite samples; callers compare against a
same-size *independent* baseline rather than absolute zero.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def empirical_mutual_information(
    a: np.ndarray, b: np.ndarray, bins: int = 16
) -> float:
    """Histogram MI estimate (nats) between two equal-length value streams."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.size != b.size:
        raise ConfigurationError(f"length mismatch: {a.size} vs {b.size}")
    if a.size < bins * bins:
        raise ConfigurationError(
            f"need at least bins^2 = {bins * bins} samples for a stable"
            f" estimate, got {a.size}"
        )
    joint, _, _ = np.histogram2d(a, b, bins=bins)
    joint = joint / joint.sum()
    pa = joint.sum(axis=1, keepdims=True)
    pb = joint.sum(axis=0, keepdims=True)
    mask = joint > 0
    return float(np.sum(joint[mask] * np.log(joint[mask] / (pa @ pb)[mask])))


def mi_gap_vs_independent(
    inputs: np.ndarray, shares: np.ndarray, bins: int = 16, seed: int = 0
) -> tuple[float, float]:
    """MI(input, share) alongside MI(input, shuffled share).

    The shuffled pairing destroys any dependence while preserving both
    marginals, giving the finite-sample bias floor.  A masked share should
    produce an MI within noise of that floor; a leaky encoding exceeds it.
    """
    rng = np.random.default_rng(seed)
    inputs = np.asarray(inputs, dtype=np.float64).ravel()
    shares = np.asarray(shares, dtype=np.float64).ravel()
    mi = empirical_mutual_information(inputs, shares, bins)
    mi_floor = empirical_mutual_information(inputs, rng.permutation(shares), bins)
    return mi, mi_floor


def chi_square_uniformity(values: np.ndarray, p: int, bins: int = 64) -> tuple[float, int]:
    """Chi-square statistic and dof of ``values`` against Uniform([0, p))."""
    values = np.asarray(values).ravel()
    if values.size < bins * 5:
        raise ConfigurationError(
            f"need >= {bins * 5} samples for {bins} bins, got {values.size}"
        )
    counts, _ = np.histogram(values, bins=bins, range=(0, p))
    expected = values.size / bins
    stat = float(np.sum((counts - expected) ** 2 / expected))
    return stat, bins - 1


def max_abs_correlation(inputs: np.ndarray, shares: np.ndarray) -> float:
    """Largest |Pearson correlation| between any input and share coordinate.

    ``inputs`` is ``(n_samples, d_in)``, ``shares`` ``(n_samples, d_share)``;
    coordinates are screened pairwise on a common subset for tractability.
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    shares = np.asarray(shares, dtype=np.float64)
    if inputs.shape[0] != shares.shape[0]:
        raise ConfigurationError("sample count mismatch")
    if inputs.shape[0] < 8:
        raise ConfigurationError("need at least 8 samples for correlations")
    d = min(inputs.shape[1], shares.shape[1], 64)
    a = inputs[:, :d] - inputs[:, :d].mean(axis=0)
    b = shares[:, :d] - shares[:, :d].mean(axis=0)
    a_std = a.std(axis=0)
    b_std = b.std(axis=0)
    a_std[a_std == 0] = 1.0
    b_std[b_std == 0] = 1.0
    corr = (a / a_std).T @ (b / b_std) / inputs.shape[0]
    return float(np.max(np.abs(corr)))
