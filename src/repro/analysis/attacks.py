"""Adversarial reconstruction experiments against the masking scheme.

These wrap :class:`repro.gpu.collusion.CollusionPool` into experiment-shaped
helpers that certify the privacy boundary from both sides:

* at or below the collusion tolerance ``M`` — reconstruction must fail and
  shares must carry no measurable dependence on the inputs;
* above ``M`` with leaked coefficients — reconstruction must succeed
  (the theorem is tight, not conservative).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.mutual_information import (
    empirical_mutual_information,
    max_abs_correlation,
)
from repro.fieldmath import FieldRng, PrimeField
from repro.gpu.collusion import CollusionPool, ReconstructionResult
from repro.masking import CoefficientSet, ForwardEncoder


def run_collusion_attack(
    field: PrimeField,
    inputs: np.ndarray,
    coalition: tuple[int, ...],
    k: int,
    m: int,
    seed: int = 0,
) -> ReconstructionResult:
    """Mask ``inputs`` (shape ``(k, features)``) and attack with a coalition.

    The worst case is assumed: the coalition has somehow obtained the
    enclave-secret coefficients ``A``.  With ``len(coalition) <= m`` the
    attack must still fail; with a full ``k + m`` invertible column set it
    succeeds and returns the recovered inputs.
    """
    rng = FieldRng(field, seed)
    coeffs = CoefficientSet.generate(rng, k=k, m=m, extra_shares=0)
    encoded = ForwardEncoder(coeffs, rng).encode(inputs)
    pool = CollusionPool(field, coalition, encoded.shares[list(coalition)])
    return pool.attack_with_known_coefficients(coeffs)


@dataclass(frozen=True)
class DependenceReport:
    """Statistical dependence between inputs and one GPU's share stream."""

    mi_estimate: float
    mi_floor: float
    max_correlation: float
    n_trials: int

    @property
    def mi_excess(self) -> float:
        """MI above the same-size independent baseline (≈0 when private)."""
        return self.mi_estimate - self.mi_floor


def share_input_dependence(
    field: PrimeField,
    k: int = 2,
    m: int = 1,
    share_index: int = 0,
    n_trials: int = 256,
    n_features: int = 16,
    seed: int = 0,
    mask: bool = True,
) -> DependenceReport:
    """Measure dependence between input and share across fresh encodings.

    Every trial draws new inputs and (when ``mask=True``) fresh coefficients
    and noise — exactly the adversary's view over a training run.  With
    masking the MI excess and correlation stay at the estimator floor; with
    ``mask=False`` the "share" is the raw input itself (a scheme with no
    masking at all), and both statistics blow up — the positive control
    proving the estimators have teeth.
    """
    rng = FieldRng(field, seed)
    input_stream = []
    share_stream = []
    for _ in range(n_trials):
        inputs = rng.uniform((k, n_features))
        if mask:
            coeffs = CoefficientSet.generate(rng, k=k, m=m, extra_shares=0)
            share = ForwardEncoder(coeffs, rng).encode(inputs).shares[share_index]
        else:
            share = inputs[0]
        input_stream.append(inputs[0])
        share_stream.append(share)
    inputs_flat = np.concatenate(input_stream).astype(np.float64)
    shares_flat = np.concatenate(share_stream).astype(np.float64)
    mi = empirical_mutual_information(inputs_flat, shares_flat, bins=16)
    shuffle_rng = np.random.default_rng(seed + 1)
    mi_floor = empirical_mutual_information(
        inputs_flat, shuffle_rng.permutation(shares_flat), bins=16
    )
    corr = max_abs_correlation(
        np.stack(input_stream).astype(np.float64),
        np.stack(share_stream).astype(np.float64),
    )
    return DependenceReport(
        mi_estimate=mi, mi_floor=mi_floor, max_correlation=corr, n_trials=n_trials
    )
