"""Gradient-leakage measurement backing Section 6's large-batch argument.

The paper acknowledges (citing Zhu et al.'s "Deep Leakage from Gradients")
that the aggregate weight update ``▽W`` exposed to GPUs "may leak some
information about the intermediate features", and argues that aggregating
over *large batches* "can eliminate nearly all the side channel leakage".

This module measures that claim on the actual pipeline: for a fixed probe
input, it computes how strongly a single sample's contribution survives in
the batch-aggregate update as the aggregation width grows.  The signal is
the cosine alignment between the per-sample gradient and the aggregate — an
upper bound proxy for what a gradient-inversion attack can exploit — which
should decay like ``~1/√B`` for i.i.d. batches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.nn import PlainBackend, Sequential, SoftmaxCrossEntropy


@dataclass(frozen=True)
class LeakagePoint:
    """Leakage measurement at one aggregation width."""

    batch_size: int
    alignment: float  # |cos| between target-sample gradient and aggregate


def _flat_grads(net: Sequential) -> np.ndarray:
    pieces = []
    for layer, name, _ in net.parameters():
        if name in layer.grads:
            pieces.append(layer.grads[name].ravel())
    if not pieces:
        raise ConfigurationError("no gradients recorded; run backward first")
    return np.concatenate(pieces)


def _gradient_for(net: Sequential, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    backend = PlainBackend()
    loss = SoftmaxCrossEntropy()
    logits = net.forward(x, backend, training=True)
    loss.forward(logits, y)
    net.backward(loss.backward(), backend)
    grads = _flat_grads(net)
    for layer, _, _ in net.parameters():
        layer.grads.clear()
    return grads


def gradient_leakage_curve(
    net: Sequential,
    x_pool: np.ndarray,
    y_pool: np.ndarray,
    batch_sizes: tuple[int, ...] = (1, 2, 4, 8, 16),
    target_index: int = 0,
    seed: int = 0,
) -> list[LeakagePoint]:
    """Alignment of one sample's gradient with aggregates of growing width.

    ``batch_sizes`` must fit within the pool; the target sample is always
    included so the measurement isolates dilution, not absence.
    """
    x_pool = np.asarray(x_pool)
    y_pool = np.asarray(y_pool)
    if max(batch_sizes) > x_pool.shape[0]:
        raise ConfigurationError(
            f"largest batch {max(batch_sizes)} exceeds pool of {x_pool.shape[0]}"
        )
    if not 0 <= target_index < x_pool.shape[0]:
        raise ConfigurationError(f"target index {target_index} out of range")
    rng = np.random.default_rng(seed)
    target_grad = _gradient_for(
        net, x_pool[target_index : target_index + 1], y_pool[target_index : target_index + 1]
    )
    target_unit = target_grad / (np.linalg.norm(target_grad) + 1e-12)

    points = []
    for batch_size in batch_sizes:
        others = [i for i in range(x_pool.shape[0]) if i != target_index]
        chosen = [target_index] + list(
            rng.choice(others, size=batch_size - 1, replace=False)
        ) if batch_size > 1 else [target_index]
        aggregate = _gradient_for(net, x_pool[chosen], y_pool[chosen])
        unit = aggregate / (np.linalg.norm(aggregate) + 1e-12)
        points.append(
            LeakagePoint(
                batch_size=batch_size,
                alignment=float(abs(np.dot(target_unit, unit))),
            )
        )
    return points


def leakage_reduction(points: list[LeakagePoint]) -> float:
    """How much the largest aggregate dilutes the single-sample signal."""
    if len(points) < 2:
        raise ConfigurationError("need at least two batch sizes to compare")
    first = points[0].alignment
    last = points[-1].alignment
    if first <= 0:
        return 0.0
    return 1.0 - last / first
