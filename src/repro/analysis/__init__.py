"""Empirical privacy analysis: MI estimation and reconstruction attacks."""

from repro.analysis.attacks import (
    DependenceReport,
    run_collusion_attack,
    share_input_dependence,
)
from repro.analysis.gradient_leakage import (
    LeakagePoint,
    gradient_leakage_curve,
    leakage_reduction,
)
from repro.analysis.mutual_information import (
    chi_square_uniformity,
    empirical_mutual_information,
    max_abs_correlation,
    mi_gap_vs_independent,
)

__all__ = [
    "empirical_mutual_information",
    "mi_gap_vs_independent",
    "chi_square_uniformity",
    "max_abs_correlation",
    "run_collusion_attack",
    "share_input_dependence",
    "DependenceReport",
    "gradient_leakage_curve",
    "leakage_reduction",
    "LeakagePoint",
]
