"""Layer partitioning: cut the execution plan across enclave shards.

A replicated deployment gives every shard the whole model; throughput
scales but each shard still pays the full per-batch enclave time.  Layer
partitioning instead cuts the flattened
:meth:`~repro.nn.Sequential.execution_plan` into contiguous *stage
ranges* and pins each range to its own :class:`EnclaveShard`, forming a
pipeline: shard 0 runs steps ``[0, c1)``, seals the live activations at
the cut, and hands them to shard 1 over an
:class:`~repro.sharding.mesh.AttestationMesh`-verified
:class:`~repro.comm.secure_channel.SecureChannel`.  The host relays
only sealed envelopes — AEAD-authenticated per hop, decrypted inside the
consumer enclave — so the privacy boundary is exactly the single-shard
one.  Because masking decodes exactly and normalization is per-sample,
logits are bit-identical for *every* legal cut placement.

Three pieces live here:

* :class:`PartitionSpec` — the serving-config surface
  (``replicated`` / ``layered:N``).
* :class:`LayerPartitionPlanner` — balances contiguous ranges by
  per-step enclave cost (priced from :meth:`plan_shapes` symbolic
  shapes via :class:`~repro.pipeline.timing.StageCostModel`) with a
  bottleneck-minimizing DP, and reports per-range EPC footprint.
* :class:`PipelineGroup` — one pipeline of member shards that
  duck-types :class:`EnclaveShard` for the router/worker-pool layers:
  a window dispatched to the group chains stage-major through the
  members, and a member failure surfaces as a *group* failure carrying
  the completed batch prefix, so per-batch retry semantics upstream
  are preserved unchanged.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.comm import LinkModel
from repro.comm.secure_channel import Envelope, SecureChannel
from repro.errors import ConfigurationError, ShardFailedError
from repro.nn import PLAN_INPUT, Sequential
from repro.pipeline.executor import plan_live_out
from repro.pipeline.stages import PipelineStats
from repro.pipeline.timing import DEFAULT_STAGE_COSTS, StageCostModel

#: Bytes per activation element (float64 everywhere in the repro).
_ELEM_BYTES = 8


# ----------------------------------------------------------------------
# config surface
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class PartitionSpec:
    """Parsed ``partition`` serving-config value.

    ``replicated`` is the classic full-model-per-shard deployment;
    ``layered:N`` cuts the plan into ``N`` stage ranges and groups every
    ``N`` consecutive shards into one :class:`PipelineGroup`.
    """

    mode: str
    n_stages: int = 1

    @classmethod
    def parse(cls, text: str) -> "PartitionSpec":
        """Parse ``"replicated"`` or ``"layered:N"`` (N >= 1)."""
        if not isinstance(text, str):
            raise ConfigurationError(f"partition must be a string, got {text!r}")
        if text == "replicated":
            return cls(mode="replicated", n_stages=1)
        if text.startswith("layered:"):
            raw = text.split(":", 1)[1]
            try:
                n = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"bad partition stage count {raw!r} in {text!r}"
                ) from None
            if n < 1:
                raise ConfigurationError(
                    f"layered partition needs >= 1 stage, got {n}"
                )
            return cls(mode="layered", n_stages=n)
        raise ConfigurationError(
            f"unknown partition mode {text!r}; expected 'replicated' or 'layered:N'"
        )

    @property
    def layered(self) -> bool:
        """True when serving should build pipeline groups."""
        return self.mode == "layered"

    def __str__(self) -> str:
        if self.mode == "replicated":
            return "replicated"
        return f"layered:{self.n_stages}"


# ----------------------------------------------------------------------
# planner
# ----------------------------------------------------------------------
class LayerPartitionPlanner:
    """Cut the flattened plan into enclave-cost-balanced stage ranges.

    Each plan step is priced in *enclave seconds per sample* from the
    symbolic shapes :meth:`~repro.nn.Sequential.plan_shapes` provides:
    offloaded steps cost their encode + decode traffic (the GPU kernel
    overlaps and is not the serialized resource), TEE-resident steps
    cost their local pass.  The planner then minimizes the *bottleneck*
    range cost over contiguous cuts — the pipeline's steady-state period
    is its slowest stage, so the balanced bottleneck is exactly the
    partitioned deployment's per-batch enclave floor.
    """

    def __init__(
        self,
        network: Sequential,
        costs: StageCostModel | None = None,
    ) -> None:
        self.network = network
        self.costs = costs or DEFAULT_STAGE_COSTS
        self._plan = network.execution_plan()
        if not self._plan:
            raise ConfigurationError("cannot partition an empty network")
        self._shapes = network.plan_shapes()

    # -- per-step pricing ------------------------------------------------
    def _shape_of(self, producer: int) -> tuple[int, ...]:
        if producer == PLAN_INPUT:
            return self.network.input_shape
        return self._shapes[producer]

    def step_costs(self) -> list[float]:
        """Enclave seconds per sample for every plan step."""
        out = []
        for step in self._plan:
            in_bytes = sum(
                int(np.prod(self._shape_of(dep))) * _ELEM_BYTES
                for dep in step.deps
            )
            out_bytes = int(np.prod(self._shapes[step.index])) * _ELEM_BYTES
            if step.offloaded:
                cost = self.costs.encode_time(in_bytes) + self.costs.decode_time(
                    out_bytes
                )
            else:
                cost = self.costs.local_time(in_bytes)
            out.append(cost)
        return out

    def step_param_bytes(self) -> list[int]:
        """Resident parameter bytes per plan step (EPC footprint)."""
        return [
            sum(int(p.nbytes) for p in step.layer.params.values())
            for step in self._plan
        ]

    def cut_bytes(self, cut: int) -> int:
        """Per-sample sealed hand-off bytes for a cut before step ``cut``."""
        return sum(
            int(np.prod(self._shape_of(idx))) * _ELEM_BYTES
            for idx in plan_live_out(self._plan, cut)
        )

    # -- partitioning ----------------------------------------------------
    def plan(self, n_partitions: int) -> list[tuple[int, int]]:
        """Contiguous ``[lo, hi)`` ranges covering the plan, balanced.

        Classic linear-partition DP: minimize the maximum range cost.
        Among bottleneck-optimal cuts, ties break toward later cuts,
        which keeps early (activation-heavy) stages from absorbing extra
        steps and so keeps hand-off envelopes small.
        """
        n_steps = len(self._plan)
        if n_partitions < 1:
            raise ConfigurationError(
                f"need >= 1 partition, got {n_partitions}"
            )
        if n_partitions > n_steps:
            raise ConfigurationError(
                f"cannot cut a {n_steps}-step plan into {n_partitions}"
                " partitions; each range needs at least one step"
            )
        if n_partitions == 1:
            return [(0, n_steps)]
        costs = self.step_costs()
        prefix = [0.0]
        for c in costs:
            prefix.append(prefix[-1] + c)

        def range_cost(lo: int, hi: int) -> float:
            return prefix[hi] - prefix[lo]

        # best[p][i]: minimal bottleneck covering steps [0, i) with p ranges.
        inf = math.inf
        best = [[inf] * (n_steps + 1) for _ in range(n_partitions + 1)]
        back = [[0] * (n_steps + 1) for _ in range(n_partitions + 1)]
        best[0][0] = 0.0
        for p in range(1, n_partitions + 1):
            for i in range(p, n_steps + 1):
                for j in range(p - 1, i):
                    cand = max(best[p - 1][j], range_cost(j, i))
                    if cand <= best[p][i]:
                        best[p][i] = cand
                        back[p][i] = j
        ranges: list[tuple[int, int]] = []
        hi = n_steps
        for p in range(n_partitions, 0, -1):
            lo = back[p][hi]
            ranges.append((lo, hi))
            hi = lo
        ranges.reverse()
        return ranges

    def range_epc_bytes(self, ranges: list[tuple[int, int]]) -> list[int]:
        """Resident parameter bytes each range pins in its shard's EPC."""
        params = self.step_param_bytes()
        return [sum(params[lo:hi]) for lo, hi in ranges]

    def bottleneck(self, ranges: list[tuple[int, int]]) -> float:
        """Slowest range's enclave seconds per sample (pipeline period)."""
        costs = self.step_costs()
        return max(sum(costs[lo:hi]) for lo, hi in ranges)


# ----------------------------------------------------------------------
# sealed activation hand-off
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SealedActivations:
    """The live value set at a cut, sealed per array for one hop.

    The host sees only this — AEAD ciphertext plus shape metadata.  Each
    envelope is MAC'd under the hop's channel key with the consumer's
    name as associated data, so a relay cannot splice envelopes between
    hops or tamper without the consumer enclave rejecting the window.
    """

    envelopes: tuple[tuple[int, Envelope], ...]

    @property
    def nbytes(self) -> int:
        """Total sealed wire bytes for the hop."""
        return sum(env.nbytes for _, env in self.envelopes)


def seal_activations(
    channel: SecureChannel, values: dict[int, np.ndarray]
) -> SealedActivations:
    """Seal a live value set (``{producer step: batch}``) for the peer."""
    return SealedActivations(
        envelopes=tuple(
            (int(step), channel.send_array(np.asarray(values[step])))
            for step in sorted(values)
        )
    )


def open_activations(
    channel: SecureChannel, sealed: SealedActivations
) -> dict[int, np.ndarray]:
    """Authenticate + unseal a hand-off inside the consumer enclave.

    Raises :class:`~repro.errors.CommunicationError` when any envelope
    fails authentication — a tampered hop kills the window rather than
    feeding the next shard attacker-chosen activations.
    """
    return {step: channel.recv_array(env) for step, env in sealed.envelopes}


# ----------------------------------------------------------------------
# pipeline group
# ----------------------------------------------------------------------
class _GroupTimeline:
    """Read-only timeline facade over a group's member enclaves.

    The worker pool reads ``free_at`` (failover fallback clock) and
    ``busy_time`` (utilization report); for a pipeline the honest
    answers are the *latest* member clock and the *summed* enclave
    occupancy.
    """

    def __init__(self, members: list) -> None:
        self._members = members

    @property
    def free_at(self) -> float:
        return max(m.timeline.free_at for m in self._members)

    @property
    def busy_time(self) -> float:
        return sum(m.timeline.busy_time for m in self._members)


def _flat_rows(output) -> np.ndarray:
    """Canonical per-batch rows for audit leaves: final logits pass
    through; a mid-cut live dict flattens to ``(n, total)`` in step
    order."""
    if isinstance(output, dict):
        parts = [np.asarray(output[k]) for k in sorted(output)]
        n = parts[0].shape[0]
        return np.concatenate([p.reshape(n, -1) for p in parts], axis=1)
    return np.asarray(output)


class PipelineGroup:
    """``N`` member shards chained over one partitioned plan.

    Duck-types :class:`~repro.sharding.shard.EnclaveShard` for every
    upstream consumer: exposes ``shard_id`` (the *group* id the router
    and sessions pin to), ``run_window``, ``timeline``, ``healthy`` /
    ``state``, ``busy_time`` / ``batches_run``, and ``enclave`` /
    ``engine`` (the entry member's — sessions handshake and slot-size
    estimates run against the stage that actually ingests requests).

    Parameters
    ----------
    group_id:
        The unit id upstream layers route on.
    members:
        Entry-to-exit :class:`EnclaveShard` s, one per stage range.
    ranges:
        Contiguous ``[lo, hi)`` plan ranges, aligned with ``members``.
    mesh:
        The *shard-level* attestation mesh; every consecutive member
        pair must hold a verified link before a channel is keyed.
    link:
        Host relay the sealed envelopes traverse.
    seed:
        Deterministic channel-handshake randomness.
    """

    def __init__(
        self,
        group_id: int,
        members: list,
        ranges: list[tuple[int, int]],
        mesh,
        link: LinkModel | None = None,
        seed: int = 0,
    ) -> None:
        if not members:
            raise ConfigurationError("pipeline group needs >= 1 member shard")
        if len(members) != len(ranges):
            raise ConfigurationError(
                f"{len(members)} member shards but {len(ranges)} stage ranges"
            )
        for (_, hi), (lo2, _) in zip(ranges, ranges[1:]):
            if hi != lo2:
                raise ConfigurationError(
                    f"stage ranges must be contiguous, got cut {hi} != {lo2}"
                )
        self.shard_id = group_id
        self.members = list(members)
        self.ranges = [tuple(r) for r in ranges]
        self.link = link or LinkModel()
        self._timeline = _GroupTimeline(self.members)
        self._failed = False
        #: Group-level dispatch counters (members keep their own too).
        self.batches_run = 0
        self.busy_time = 0.0
        #: Per-member canonical rows from the last window, for audit
        #: fan-out onto each member shard's own chain.
        self.last_sub_outputs: dict[int, list] = {}
        # A (re)built group re-maps stage ranges onto members, so any
        # weight encodings a member cached for its *previous* range are
        # stale; drop them before the first window (mask pools keep
        # their counters — bit-identity needs the draw order intact).
        for member in self.members:
            invalidate = getattr(
                getattr(member, "backend", None), "invalidate_precompute", None
            )
            if callable(invalidate):
                invalidate()
        # Key one verified channel per hop; the mesh gates every pair.
        self._hops: list[tuple[SecureChannel, SecureChannel]] = []
        for a, b in zip(self.members, self.members[1:]):
            mesh.assert_verified(a.shard_id, b.shard_id)
            rng = np.random.default_rng(
                seed + 7919 * (a.shard_id + 1) + b.shard_id
            )
            tx, rx = SecureChannel.establish_pair(
                f"shard{a.shard_id}", f"shard{b.shard_id}", self.link, rng
            )
            self._hops.append((tx, rx))

    # -- EnclaveShard duck-type surface ---------------------------------
    @property
    def enclave(self):
        """The entry member's trust anchor (session handshakes)."""
        return self.members[0].enclave

    @property
    def engine(self):
        """The entry member's engine (slot-size estimation)."""
        return self.members[0].engine

    @property
    def timeline(self) -> _GroupTimeline:
        return self._timeline

    @property
    def healthy(self) -> bool:
        return not self._failed and all(m.healthy for m in self.members)

    @property
    def state(self) -> str:
        if not self.healthy:
            return "failed"
        if any(m.draining for m in self.members):
            return "draining"
        return "active"

    @property
    def n_gpus(self) -> int:
        return sum(m.n_gpus for m in self.members)

    @property
    def draining(self) -> bool:
        return any(m.draining for m in self.members)

    def kill(self) -> None:
        """Take the whole pipeline down (a pipeline with a dead stage
        cannot serve)."""
        self._failed = True

    # -- dispatch --------------------------------------------------------
    def run_window(self, items: list[tuple]):
        """Chain one flush window stage-major through the members.

        Each member runs its stage range for the *whole* window, then
        every batch's live value set is sealed and handed to the next
        member; the consumer prices the unseal as a transfer op on its
        own timeline.  Returns ``(groups, stats)`` shaped exactly like a
        single shard's window.

        Raises
        ------
        ShardFailedError
            With ``shard_id`` set to the *group* id when any member dies
            mid-window.  The completed prefix — batches that cleared the
            failing member — continues through the remaining stages so
            their responses survive, and the error carries them as
            finished ``(groups, stats)`` entries; the worker pool's
            per-batch failover then re-runs only the lost suffix on a
            replacement group.
        """
        if not self.healthy:
            raise ShardFailedError(
                f"pipeline group {self.shard_id} is down", shard_id=self.shard_id
            )
        n_items = len(items)
        self.last_sub_outputs = {m.shard_id: [] for m in self.members}
        current = [
            (
                item[0],
                item[1],
                item[2] if len(item) > 2 else math.inf,
            )
            for item in items
        ]
        transfer = [0] * n_items  # sealed bytes feeding each batch's next hop
        starts: list[float] = []
        finals: list = []
        failure: tuple[int, str] | None = None
        agg_start = math.inf
        agg_finish = 0.0
        agg_jobs = 0
        agg_enclave = 0.0
        agg_gpu = 0.0
        agg_stages: dict[str, float] = {}

        def absorb(stats: PipelineStats) -> None:
            nonlocal agg_start, agg_finish, agg_jobs, agg_enclave, agg_gpu
            agg_start = min(agg_start, stats.start)
            agg_finish = max(agg_finish, stats.finish)
            agg_jobs += stats.n_jobs
            agg_enclave += stats.enclave_busy
            agg_gpu += stats.gpu_busy
            for name, secs in stats.stage_totals.items():
                agg_stages[name] = agg_stages.get(name, 0.0) + secs

        for hop, (member, (lo, hi)) in enumerate(zip(self.members, self.ranges)):
            if not current:
                break
            stage_items = [
                (payload, release, deadline, transfer[i])
                for i, (payload, release, deadline) in enumerate(current)
            ]
            try:
                groups, stats = member.run_window(stage_items, step_range=(lo, hi))
            except ShardFailedError as exc:
                # The member finished a prefix one batch at a time; keep
                # those moving through the rest of the chain and fail the
                # suffix at group granularity.
                self._failed = True
                failure = (member.shard_id, str(exc))
                groups = [g[0] for g, _ in exc.completed]
                for _, s in exc.completed:
                    absorb(s)
                current = current[: exc.remaining_from]
                transfer = transfer[: exc.remaining_from]
            else:
                absorb(stats)
            if hop == 0:
                starts = [g.start for g in groups]
            self.last_sub_outputs[member.shard_id] = [
                _flat_rows(g.output) for g in groups
            ]
            if hop == len(self.members) - 1:
                finals = list(groups)
            else:
                tx, rx = self._hops[hop]
                handed = []
                bytes_next = []
                for g, (_, _, deadline) in zip(groups, current):
                    sealed = seal_activations(tx, g.output)
                    values = open_activations(rx, sealed)
                    handed.append((values, g.finish, deadline))
                    bytes_next.append(sealed.nbytes)
                current = handed
                transfer = bytes_next

        finals = [
            dataclasses.replace(g, start=starts[i]) for i, g in enumerate(finals)
        ]
        if agg_jobs == 0:
            agg_start = 0.0
        stats = PipelineStats(
            start=agg_start,
            finish=agg_finish,
            n_jobs=agg_jobs,
            enclave_busy=agg_enclave,
            gpu_busy=agg_gpu,
            stage_totals=agg_stages,
            spans=[],
        )
        self.batches_run += len(finals)
        self.busy_time += agg_enclave
        if failure is not None:
            member_id, message = failure
            completed = []
            for i, g in enumerate(finals):
                per = (
                    stats
                    if i == 0
                    else PipelineStats(
                        start=g.start,
                        finish=g.finish,
                        n_jobs=0,
                        enclave_busy=0.0,
                        gpu_busy=0.0,
                    )
                )
                completed.append(([g], per))
            raise ShardFailedError(
                f"pipeline group {self.shard_id} lost member shard"
                f" {member_id}: {message}",
                shard_id=self.shard_id,
                completed=completed,
                remaining_from=len(finals),
            )
        return finals, stats

    def sub_outputs(self, member_id: int, n_batches: int, final_outputs: list):
        """Per-batch canonical rows for one member's audit chain.

        The exit member commits the actual response logits; interior
        members commit the flattened live values their stage produced.
        Missing entries (batches that never reached the member) are
        ``None`` so the caller can skip them.
        """
        if self.members and member_id == self.members[-1].shard_id:
            return list(final_outputs)
        outs = self.last_sub_outputs.get(member_id, [])
        return [outs[i] if i < len(outs) else None for i in range(n_batches)]
