"""Tenant-to-shard routing: consistent hashing with load-aware pinning.

Tenants are sticky to a shard — their attested session, and therefore
their encrypted channel, lives on one enclave — so routing is a *pinning*
decision, made once per tenant and revisited only on shard failure.  The
router places each new tenant by consistent hashing over a virtual-node
ring (stable under shard-count changes, no coordination needed), then
applies a load-aware override: when the ring's candidate already carries
materially more tenants than the lightest shard, the new tenant is pinned
to the lightest shard instead.  Hashing is keyed (BLAKE2b), not Python's
randomized ``hash``, so placements are reproducible across runs.

Heterogeneous deployments weight the ring: a shard with weight ``w``
contributes ``w`` times the virtual nodes and its pin count is compared
*normalized by weight*, so a double-capacity shard legitimately carries
about twice the tenants before the balancer diverts anyone.

With an :class:`~repro.serving.slo.SloPolicy`, placement is additionally
SLO-aware: tenants of above-default priority skip the hash walk and pin
straight to the lightest (weight-normalized) healthy shard, spreading
premium traffic across the least-contended enclaves instead of wherever
the ring happens to land them.

On failure, :meth:`ShardRouter.fail_shard` removes the dead shard from
the ring walk and re-pins its displaced tenants through the same
placement rule, returning the remap so the session layer can migrate
each displaced tenant's attested session.

Membership is *dynamic*: :meth:`ShardRouter.add_shard` inserts a new
shard's virtual nodes into the live ring and re-pins only the bounded
set of tenants consistent hashing says now belong to it (about
``pins / n_live``, optionally capped), and :meth:`ShardRouter.
remove_shard` retires a shard gracefully — its tenants re-place through
the normal rule, with :meth:`ShardRouter.begin_drain` available first so
a draining shard stops receiving *new* tenants while its existing pins
keep routing until the migration completes.  Constructing with
``n_shards`` remains exactly equivalent to adding that many unit-weight
shards up front, so every pre-elastic call site behaves unchanged.
"""

from __future__ import annotations

import bisect
import hashlib
import math

from repro.errors import ConfigurationError, ShardError


def _stable_hash(key: str) -> int:
    """Deterministic 64-bit ring position for a string key."""
    digest = hashlib.blake2b(key.encode(), digest_size=8, person=b"repro-ring").digest()
    return int.from_bytes(digest, "big")


class ShardRouter:
    """Pins tenants to shards; rebalances new tenants toward light shards.

    Parameters
    ----------
    n_shards:
        Shards in the deployment (ids ``0..n_shards-1``).
    replicas:
        Virtual nodes per *unit of weight* on the hash ring; more
        replicas smooth the hash distribution at slightly more setup
        cost.
    rebalance_margin:
        How many more pinned tenants (per unit of weight) the ring's
        candidate may carry than the least-loaded shard before a *new*
        tenant is diverted to the latter.  ``1`` balances aggressively
        (hash placement only breaks ties); larger values preserve hash
        affinity under skew.
    weights:
        Optional per-shard capacity weights for heterogeneous
        deployments; a weight-2 shard gets twice the virtual nodes and
        is expected to carry about twice the pins.  ``None`` (the
        default) weighs every shard 1.0 — ring and balancing identical
        to the homogeneous router.
    slo:
        Optional :class:`~repro.serving.slo.SloPolicy`.  Tenants whose
        class priority exceeds the default class's pin to the lightest
        healthy shard instead of walking the ring (counted in
        :attr:`slo_pins`).  ``None`` keeps placement priority-blind.
    group_members:
        Optional ``{routing id: (member shard ids, ...)}`` for
        layer-partitioned deployments, where each routing unit is a
        :class:`~repro.sharding.partition.PipelineGroup` spanning several
        enclave shards.  The router still pins tenants to *units*; the
        mapping lets callers resolve which physical shards a pinned unit
        spans (:meth:`members_of`), and a member-shard failure fails the
        whole unit — re-pinning re-runs the displaced tenants' windows on
        a replacement group, preserving per-batch retry semantics.
    """

    def __init__(
        self,
        n_shards: int,
        replicas: int = 48,
        rebalance_margin: int = 2,
        weights: list[float] | None = None,
        slo=None,
        group_members: dict[int, tuple[int, ...]] | None = None,
    ) -> None:
        if n_shards < 1:
            raise ConfigurationError(f"router needs >= 1 shards, got {n_shards}")
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        if rebalance_margin < 1:
            raise ConfigurationError(
                f"rebalance margin must be >= 1, got {rebalance_margin}"
            )
        if weights is not None:
            if len(weights) != n_shards:
                raise ConfigurationError(
                    f"need one weight per shard: {len(weights)} weights"
                    f" for {n_shards} shards"
                )
            if any(w <= 0 for w in weights):
                raise ConfigurationError(f"shard weights must be > 0, got {weights}")
        if group_members is not None:
            for unit, members in group_members.items():
                if unit not in range(n_shards):
                    raise ConfigurationError(
                        f"group id {unit} outside routing range 0..{n_shards - 1}"
                    )
                if not members:
                    raise ConfigurationError(f"group {unit} has no member shards")
        self.n_shards = n_shards
        self.replicas = replicas
        self.rebalance_margin = rebalance_margin
        #: Routing-unit -> physical member shards (layer partitioning).
        self.group_members = {
            int(unit): tuple(members)
            for unit, members in (group_members or {}).items()
        }
        self.weights = [1.0] * n_shards if weights is None else [float(w) for w in weights]
        self.slo = slo
        ring = [
            (_stable_hash(f"shard{shard}/vnode{replica}"), shard)
            for shard in range(n_shards)
            for replica in range(max(1, round(replicas * self.weights[shard])))
        ]
        ring.sort()
        self._ring_keys = [h for h, _ in ring]
        self._ring_shards = [s for _, s in ring]
        self._pins: dict[str, int] = {}
        self._load = [0] * n_shards
        self._failed: set[int] = set()
        self._retired: set[int] = set()
        self._draining: set[int] = set()
        #: New tenants diverted off their ring candidate by load skew.
        self.rebalanced = 0
        #: Tenants re-pinned because their shard failed.  Kept separate
        #: from ``rebalanced`` so telemetry distinguishes load diversions
        #: from failure migrations.
        self.failover_repins = 0
        #: Above-default-priority tenants placed by SLO spreading rather
        #: than the hash ring.
        self.slo_pins = 0
        #: Tenants re-pinned onto a newly provisioned shard (scale-out).
        self.scale_repins = 0
        #: Tenants re-pinned off a gracefully retired shard (scale-in).
        self.drain_repins = 0

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def healthy_shards(self) -> list[int]:
        """Shard ids currently serving traffic (draining shards included)."""
        return [
            s
            for s in range(self.n_shards)
            if s not in self._failed and s not in self._retired
        ]

    def placeable_shards(self) -> list[int]:
        """Shard ids eligible for *new* pins (healthy and not draining)."""
        return [s for s in self.healthy_shards() if s not in self._draining]

    def _normalized_load(self, shard: int) -> float:
        """Pinned tenants per unit of shard weight."""
        return self._load[shard] / self.weights[shard]

    def _lightest_shard(self) -> int:
        """The placeable shard with the lowest weight-normalized load."""
        return min(
            self.placeable_shards(), key=lambda s: (self._normalized_load(s), s)
        )

    def ring_candidate(self, tenant: str) -> int:
        """The consistent-hashing placement, skipping unplaceable shards."""
        if not self.placeable_shards():
            raise ShardError("no healthy shards left to route to")
        blocked = self._failed | self._retired | self._draining
        start = bisect.bisect_left(self._ring_keys, _stable_hash(tenant))
        for offset in range(len(self._ring_shards)):
            shard = self._ring_shards[(start + offset) % len(self._ring_shards)]
            if shard not in blocked:
                return shard
        raise ShardError("no healthy shards left to route to")

    def _is_premium(self, tenant: str) -> bool:
        """True when the tenant's class outranks the default class."""
        return (
            self.slo is not None
            and self.slo.priority_for(tenant) > self.slo.default_class.priority
        )

    def shard_for(self, tenant: str) -> int:
        """The tenant's pinned shard, placing (and pinning) on first sight.

        New default-class tenants take the ring candidate unless it is
        already carrying ``rebalance_margin`` more pinned tenants (per
        unit of weight) than the lightest healthy shard, in which case
        the lightest shard wins (deterministic tie break toward the
        lowest shard id).  New above-default-priority tenants pin
        straight to the lightest shard.
        """
        pinned = self._pins.get(tenant)
        if (
            pinned is not None
            and pinned not in self._failed
            and pinned not in self._retired
        ):
            return pinned
        return self._place(tenant, count_as_rebalance=True)

    def _place(self, tenant: str, count_as_rebalance: bool) -> int:
        """SLO-then-hash-then-balance placement for admission and failover.

        Only organic admissions count load diversions in ``rebalanced``;
        failover re-pins are accounted in ``failover_repins`` by
        :meth:`fail_shard` so the two telemetry streams stay disjoint.
        SLO spreads are counted in ``slo_pins`` either way.
        """
        if not self.placeable_shards():
            raise ShardError("no healthy shards left to route to")
        if self._is_premium(tenant):
            candidate = self._lightest_shard()
            self.slo_pins += 1
        else:
            candidate = self.ring_candidate(tenant)
            lightest = self._lightest_shard()
            if (
                self._normalized_load(candidate) - self._normalized_load(lightest)
                >= self.rebalance_margin
            ):
                candidate = lightest
                if count_as_rebalance:
                    self.rebalanced += 1
        self._pins[tenant] = candidate
        self._load[candidate] += 1
        return candidate

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def fail_shard(self, shard_id: int) -> dict[str, int]:
        """Remove a shard from rotation and re-pin its tenants.

        Returns ``{tenant: new_shard}`` for every displaced tenant, in
        first-pinned order, so callers can migrate sessions in lockstep.
        """
        if shard_id not in range(self.n_shards):
            raise ConfigurationError(f"unknown shard id {shard_id}")
        if shard_id in self._failed or shard_id in self._retired:
            return {}
        self._failed.add(shard_id)
        self._draining.discard(shard_id)
        displaced = [t for t, s in self._pins.items() if s == shard_id]
        for tenant in displaced:
            del self._pins[tenant]
        self._load[shard_id] = 0
        if not self.placeable_shards():
            # Nothing left to re-pin onto; tenants stay unpinned and the
            # next routing attempt surfaces the outage.
            return {}
        remap = {
            tenant: self._place(tenant, count_as_rebalance=False)
            for tenant in displaced
        }
        self.failover_repins += len(remap)
        return remap

    def is_failed(self, shard_id: int) -> bool:
        """True when the shard has been removed from rotation."""
        return shard_id in self._failed

    def members_of(self, unit_id: int) -> tuple[int, ...]:
        """Physical shard ids behind one routing unit.

        A replicated deployment routes directly on shards, so the unit is
        its own (only) member; a layer-partitioned deployment resolves to
        the pipeline group's member shards.
        """
        return self.group_members.get(unit_id, (unit_id,))

    # ------------------------------------------------------------------
    # dynamic membership
    # ------------------------------------------------------------------
    def add_shard(
        self, weight: float = 1.0, max_migrations: int | None = None
    ) -> tuple[int, dict[str, int]]:
        """Insert a new shard into the live ring with bounded re-pinning.

        The new shard gets the next monotonic id (failed and retired ids
        are never reused, so router ids stay aligned with the server's
        shard list), ``weight`` virtual-node share on the ring, and an
        empty load slot.  Existing pinned tenants move only when the
        updated ring says the new shard is now their candidate — about
        ``pins / n_placeable`` tenants for unit weight — topped up from
        the heaviest shard while the load gap exceeds
        ``rebalance_margin``, with the total move count capped by
        ``max_migrations`` (default: ``ceil(pins / n_placeable)``).

        Returns ``(shard_id, remap)`` where ``remap`` maps each moved
        tenant to the new shard, in deterministic first-pinned order, so
        the session layer can migrate attested sessions in lockstep.
        """
        if weight <= 0:
            raise ConfigurationError(f"shard weight must be > 0, got {weight}")
        shard_id = self.n_shards
        self.n_shards += 1
        self.weights.append(float(weight))
        self._load.append(0)
        for replica in range(max(1, round(self.replicas * weight))):
            key = _stable_hash(f"shard{shard_id}/vnode{replica}")
            at = bisect.bisect_left(self._ring_keys, key)
            self._ring_keys.insert(at, key)
            self._ring_shards.insert(at, shard_id)
        n_placeable = len(self.placeable_shards())
        if max_migrations is None:
            max_migrations = math.ceil(len(self._pins) / max(1, n_placeable))
        remap: dict[str, int] = {}
        # Pass 1: tenants whose ring candidate the new shard now is.
        for tenant, pinned in list(self._pins.items()):
            if len(remap) >= max_migrations:
                break
            if pinned == shard_id or self._is_premium(tenant):
                continue
            if self.ring_candidate(tenant) == shard_id:
                self._load[pinned] -= 1
                self._pins[tenant] = shard_id
                self._load[shard_id] += 1
                remap[tenant] = shard_id
        # Pass 2: drain the heaviest shard while the imbalance the new
        # shard was provisioned to fix still exceeds the margin.
        while len(remap) < max_migrations:
            heaviest = max(
                self.placeable_shards(),
                key=lambda s: (self._normalized_load(s), -s),
            )
            if heaviest == shard_id or (
                self._normalized_load(heaviest)
                - self._normalized_load(shard_id)
                < self.rebalance_margin
            ):
                break
            movable = [
                t
                for t, s in self._pins.items()
                if s == heaviest and not self._is_premium(t)
            ]
            if not movable:
                break
            tenant = movable[0]
            self._load[heaviest] -= 1
            self._pins[tenant] = shard_id
            self._load[shard_id] += 1
            remap[tenant] = shard_id
        self.scale_repins += len(remap)
        return shard_id, remap

    def begin_drain(self, shard_id: int) -> None:
        """Stop pinning *new* tenants to a shard ahead of its removal.

        Existing pins keep routing to the draining shard so in-flight
        sessions finish where they started; :meth:`remove_shard`
        completes the retirement once the drain has flushed.
        """
        if shard_id not in range(self.n_shards):
            raise ConfigurationError(f"unknown shard id {shard_id}")
        if shard_id in self._failed or shard_id in self._retired:
            raise ShardError(f"shard {shard_id} is not live; cannot drain")
        if len(self.placeable_shards()) <= 1 and shard_id in self.placeable_shards():
            raise ShardError("cannot drain the last placeable shard")
        self._draining.add(shard_id)

    def is_draining(self, shard_id: int) -> bool:
        """True while the shard accepts no new pins pending retirement."""
        return shard_id in self._draining

    def remove_shard(self, shard_id: int) -> dict[str, int]:
        """Gracefully retire a shard and re-pin its remaining tenants.

        Unlike :meth:`fail_shard` this is a *planned* removal: the
        shard's virtual nodes leave the ring, its tenants re-place
        through the normal rule (counted in :attr:`drain_repins`, not
        :attr:`failover_repins`), and the returned remap lets the
        session layer migrate each displaced tenant's attested session
        over the still-verified mesh links.
        """
        if shard_id not in range(self.n_shards):
            raise ConfigurationError(f"unknown shard id {shard_id}")
        if shard_id in self._failed:
            raise ShardError(
                f"shard {shard_id} already failed; use fail_shard accounting"
            )
        if shard_id in self._retired:
            return {}
        if len(self.healthy_shards()) <= 1:
            raise ShardError("cannot remove the last serving shard")
        self._retired.add(shard_id)
        self._draining.discard(shard_id)
        keep = [
            (k, s)
            for k, s in zip(self._ring_keys, self._ring_shards)
            if s != shard_id
        ]
        self._ring_keys = [k for k, _ in keep]
        self._ring_shards = [s for _, s in keep]
        displaced = [t for t, s in self._pins.items() if s == shard_id]
        for tenant in displaced:
            del self._pins[tenant]
        self._load[shard_id] = 0
        remap = {
            tenant: self._place(tenant, count_as_rebalance=False)
            for tenant in displaced
        }
        self.drain_repins += len(remap)
        return remap

    def is_retired(self, shard_id: int) -> bool:
        """True when the shard was gracefully removed from the ring."""
        return shard_id in self._retired

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pins(self) -> dict[str, int]:
        """Current tenant -> shard pinning."""
        return dict(self._pins)

    def loads(self) -> list[int]:
        """Pinned-tenant count per shard."""
        return list(self._load)
