"""One enclave shard: a trusted unit with its own serialized timeline.

DarKnight's enclave is the serialized resource — every encode, decode, and
TEE-resident layer queues on one clock.  A shard bundles one such unit end
to end: an :class:`~repro.enclave.Enclave`, a
:class:`~repro.gpu.GpuCluster` sized for the masking parameters, and a
:class:`~repro.runtime.inference.PrivateInferenceEngine` whose staged
executor runs on the shard's *own* :class:`EnclaveTimeline`.  Shards
therefore progress in parallel on the simulated clock; the router decides
which tenants ride which timeline.

Failure is a first-class event: :meth:`EnclaveShard.kill` (or the
test-facing :meth:`EnclaveShard.fail_after`) makes subsequent dispatch
raise :class:`~repro.errors.ShardFailedError` carrying the window batches
that did complete, so the worker pool can fail the remainder over to a
surviving shard without dropping a response.
"""

from __future__ import annotations

import dataclasses

from repro.comm import LinkModel
from repro.enclave import Enclave, EpcModel
from repro.errors import ShardFailedError
from repro.gpu import GpuCluster
from repro.pipeline.timing import StageCostModel
from repro.runtime.config import DarKnightConfig
from repro.runtime.darknight import DarKnightBackend
from repro.runtime.inference import PrivateInferenceEngine


class EnclaveShard:
    """An enclave + GPU cluster + pipeline engine behind one shard id.

    Parameters
    ----------
    shard_id:
        Position in the deployment's shard list (stable across failover).
    engine:
        The shard's private-inference engine; its backend owns the
        enclave and cluster, and its timeline is the shard's clock.
        Build one from scratch with :meth:`provision`.
    """

    def __init__(self, shard_id: int, engine: PrivateInferenceEngine) -> None:
        self.shard_id = shard_id
        self.engine = engine
        self.healthy = True
        self.batches_run = 0
        #: Enclave-occupied simulated seconds across dispatched windows.
        self.busy_time = 0.0
        self._fail_after: int | None = None
        #: Lifecycle marks for elastic membership (simulated seconds).
        self.draining = False
        self.retired = False
        self.provisioned_at = 0.0
        self.retired_at: float | None = None

    @classmethod
    def provision(
        cls,
        shard_id: int,
        network,
        config: DarKnightConfig,
        code_identity: str | bytes = "darknight-enclave-v1",
        stage_costs: StageCostModel | None = None,
        cluster: GpuCluster | None = None,
        enclave: Enclave | None = None,
        link: LinkModel | None = None,
    ) -> "EnclaveShard":
        """Build a shard's full trusted stack from a DarKnight config.

        The shard's enclave randomness is derived from ``config.seed`` and
        the shard id, so multi-shard deployments stay deterministic while
        every shard masks with independent coefficients/noise.  (Decoded
        logits never depend on the seed — masking decodes exactly.)
        """
        seed = None if config.seed is None else config.seed + shard_id
        shard_config = dataclasses.replace(config, seed=seed)
        epc = (
            EpcModel(usable_bytes=config.epc_budget_bytes)
            if config.epc_budget_bytes is not None
            else None
        )
        enclave = enclave or Enclave(code_identity=code_identity, seed=seed, epc=epc)
        backend = DarKnightBackend(
            shard_config, enclave=enclave, cluster=cluster, link=link
        )
        engine = PrivateInferenceEngine(
            network, backend=backend, stage_costs=stage_costs
        )
        return cls(shard_id, engine)

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def enclave(self) -> Enclave:
        """The shard's trust anchor."""
        return self.engine.backend.enclave

    @property
    def backend(self) -> DarKnightBackend:
        """The shard's masked execution backend."""
        return self.engine.backend

    @property
    def cluster(self) -> GpuCluster:
        """The shard's simulated accelerator pool."""
        return self.engine.backend.cluster

    @property
    def timeline(self):
        """The shard's serialized enclave clock."""
        return self.engine.timeline

    @property
    def n_gpus(self) -> int:
        """Simulated devices this shard occupies."""
        return len(self.cluster)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``active`` / ``draining`` / ``retired`` / ``failed``."""
        if self.retired:
            return "retired"
        if not self.healthy:
            return "failed"
        if self.draining:
            return "draining"
        return "active"

    def begin_drain(self) -> None:
        """Mark the shard as winding down; it still serves pinned work."""
        self.draining = True

    def decommission(self, now: float = 0.0) -> None:
        """Planned retirement: drained, flushed, sessions migrated, done.

        Unlike :meth:`kill`, this is the graceful end of the lifecycle —
        the autoscaler's shard-seconds accounting closes at ``now``.
        """
        self.retired = True
        self.draining = False
        self.healthy = False
        self.retired_at = now

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Take the shard down; subsequent dispatch raises ShardFailedError."""
        self.healthy = False

    def fail_after(self, n_batches: int) -> None:
        """Arrange for the shard to die after ``n_batches`` total batches.

        When the threshold lands inside a dispatched window the shard
        completes the batches it still owes, then fails *mid-window* —
        exactly the scenario session failover must survive.
        """
        self._fail_after = n_batches

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def run_window(self, items: list[tuple], step_range: tuple[int, int] | None = None):
        """Run one flush window on this shard's timeline.

        ``items`` entries are ``(batch, release_time)`` or ``(batch,
        release_time, deadline)``; returns ``(groups, stats)`` exactly like
        :meth:`~repro.runtime.inference.PrivateInferenceEngine.run_batch_window`.
        ``step_range`` restricts the run to one layer-partition stage range
        (this shard's slice of the plan).

        Raises
        ------
        ShardFailedError
            When the shard is dead (nothing ran) or dies mid-window (the
            error carries the completed prefix so no response is lost).
        """
        if not self.healthy:
            raise ShardFailedError(
                f"shard {self.shard_id} is down", shard_id=self.shard_id
            )
        budget = None
        if self._fail_after is not None:
            budget = max(0, self._fail_after - self.batches_run)
        if budget is not None and budget < len(items):
            completed = []
            for item in items[:budget]:
                groups, stats = self.engine.run_batch_window(
                    [item], step_range=step_range
                )
                self.batches_run += 1
                self.busy_time += stats.enclave_busy
                completed.append((groups, stats))
            self.healthy = False
            raise ShardFailedError(
                f"shard {self.shard_id} failed mid-window after"
                f" {self.batches_run} batches",
                shard_id=self.shard_id,
                completed=completed,
                remaining_from=budget,
            )
        groups, stats = self.engine.run_batch_window(items, step_range=step_range)
        self.batches_run += len(items)
        self.busy_time += stats.enclave_busy
        return groups, stats
