"""Multi-enclave sharding: parallel trusted timelines behind one scheduler.

DarKnight serializes every encode/decode on one enclave clock; past a
modest pipeline depth that single timeline is the whole bottleneck.  This
package scales *out* instead of up: a deployment runs ``num_shards``
:class:`EnclaveShard` s — each a full enclave + GPU cluster + staged
pipeline engine on its own simulated timeline — with a
:class:`ShardRouter` pinning tenants to shards (consistent hashing,
load-aware for new tenants) and an :class:`AttestationMesh` of pairwise
local-attestation links so sessions can migrate to a surviving shard when
one fails.  Shard counts never change served values: per-sample
normalization makes every logit independent of batch composition, so any
routing is bit-identical to any other.
"""

from repro.sharding.mesh import AttestationMesh
from repro.sharding.partition import (
    LayerPartitionPlanner,
    PartitionSpec,
    PipelineGroup,
    SealedActivations,
    open_activations,
    seal_activations,
)
from repro.sharding.router import ShardRouter
from repro.sharding.shard import EnclaveShard

__all__ = [
    "AttestationMesh",
    "EnclaveShard",
    "LayerPartitionPlanner",
    "PartitionSpec",
    "PipelineGroup",
    "SealedActivations",
    "ShardRouter",
    "open_activations",
    "seal_activations",
]
