"""Cross-enclave local-attestation mesh.

A multi-shard deployment is only as trustworthy as the links between its
enclaves: a tenant's session may *migrate* to another shard on failure, so
every shard must have verified — before taking traffic — that every peer
runs the same measured code.  The mesh performs the pairwise handshake at
startup using the primitive the enclave already exposes
(:meth:`~repro.enclave.enclave.Enclave.verify_peer_quote`, SGX local
attestation): each shard quotes toward each peer, and the peer checks the
platform signature and the expected measurement.  Failover then *asserts*
the link before any session moves; an unverified (or impostor) shard can
never inherit a session.

Membership is dynamic: :meth:`AttestationMesh.extend` attests a joining
shard *incrementally* — pairwise handshakes only against the current live
members, ``2 * n_live`` instead of re-running the full ``n * (n - 1)``
startup mesh — and :meth:`AttestationMesh.retire` removes a shard from
future handshakes while keeping its verified links, so sessions draining
*off* a retiring shard still cross an attested channel.
"""

from __future__ import annotations

from repro.enclave import measure_enclave
from repro.errors import AttestationError, ConfigurationError


class AttestationMesh:
    """Pairwise-verified trust links between enclave shards.

    Parameters
    ----------
    shards:
        The deployment's :class:`~repro.sharding.shard.EnclaveShard` s.
    expected_code_identity:
        The code identity every shard must measure to; any deviation
        fails the startup handshake with
        :class:`~repro.errors.AttestationError`.
    """

    def __init__(
        self,
        shards,
        expected_code_identity: str | bytes = "darknight-enclave-v1",
    ) -> None:
        if not shards:
            raise ConfigurationError("attestation mesh needs >= 1 shard")
        self.shards = list(shards)
        self.expected_measurement = measure_enclave(expected_code_identity)
        self._links: set[tuple[int, int]] = set()
        self.handshakes = 0
        self.established = False

    def establish(self) -> "AttestationMesh":
        """Run the full pairwise handshake; idempotent.

        For every ordered pair ``(verifier, prover)`` the prover's enclave
        produces a quote bound to the link (``report_data`` names both
        ends) and the verifier checks it against the expected measurement.
        ``n * (n - 1)`` handshakes for ``n`` shards.
        """
        if self.established:
            return self
        for verifier in self.shards:
            for prover in self.shards:
                if verifier.shard_id == prover.shard_id:
                    continue
                quote = prover.enclave.quote(
                    report_data=f"mesh:{prover.shard_id}->{verifier.shard_id}".encode()
                )
                verifier.enclave.verify_peer_quote(quote, self.expected_measurement)
                self._links.add((verifier.shard_id, prover.shard_id))
                self.handshakes += 1
        self.established = True
        return self

    # ------------------------------------------------------------------
    # dynamic membership
    # ------------------------------------------------------------------
    def extend(self, shard) -> "AttestationMesh":
        """Attest a joining shard against the live members, incrementally.

        Runs both handshake directions between the new shard and every
        live existing member — ``2 * n_live`` quotes instead of the full
        ``n * (n - 1)`` startup mesh — so scale-out cost stays linear in
        the deployment size.  If the mesh has not been established yet,
        the shard simply joins the roster and :meth:`establish` covers it.
        """
        if any(s.shard_id == shard.shard_id for s in self.shards):
            raise ConfigurationError(
                f"shard {shard.shard_id} is already a mesh member"
            )
        peers = [s for s in self.shards if s.healthy]
        self.shards.append(shard)
        if not self.established:
            return self
        for peer in peers:
            for verifier, prover in ((peer, shard), (shard, peer)):
                quote = prover.enclave.quote(
                    report_data=f"mesh:{prover.shard_id}->{verifier.shard_id}".encode()
                )
                verifier.enclave.verify_peer_quote(quote, self.expected_measurement)
                self._links.add((verifier.shard_id, prover.shard_id))
                self.handshakes += 1
        return self

    def retire(self, shard_id: int) -> None:
        """Drop a shard from future handshakes, keeping existing links.

        Verified links survive retirement on purpose: the drain path
        migrates the retiring shard's sessions *after* calling this, and
        those migrations still :meth:`assert_verified` against the links
        established while the shard was live.
        """
        self.shards = [s for s in self.shards if s.shard_id != shard_id]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def verified(self, shard_a: int, shard_b: int) -> bool:
        """True when both directions of the link passed attestation."""
        if shard_a == shard_b:
            return True
        return (shard_a, shard_b) in self._links and (shard_b, shard_a) in self._links

    def assert_verified(self, shard_a: int, shard_b: int) -> None:
        """Refuse any cross-shard hand-off over an unverified link."""
        if not self.verified(shard_a, shard_b):
            raise AttestationError(
                f"no verified attestation link between shard {shard_a} and"
                f" shard {shard_b}; refusing session migration"
            )

    @property
    def n_links(self) -> int:
        """Directed links verified so far."""
        return len(self._links)
