"""DarKnight reproduction: privacy/integrity-preserving DNN training via TEE-GPU masking.

Reproduces Hashemi, Wang & Annavaram, *DarKnight* (MICRO 2021).  The public
API re-exports the pieces a downstream user needs most:

>>> from repro import DarKnightConfig, Trainer, build_mini_vgg
>>> from repro.runtime import DarKnightBackend
>>> net = build_mini_vgg()
>>> trainer = Trainer(net, DarKnightBackend(DarKnightConfig(virtual_batch_size=2)))

See README.md for the architecture overview and DESIGN.md for the full
system inventory and experiment index.
"""

from repro.errors import (
    ConfigurationError,
    DecodingError,
    EncodingError,
    EnclaveError,
    FieldError,
    IntegrityError,
    QuantizationError,
    ReproError,
)
from repro.fieldmath import DEFAULT_PRIME, FieldRng, PrimeField
from repro.masking import CoefficientSet, ForwardDecoder, ForwardEncoder, IntegrityVerifier
from repro.models import build_mini_mobilenet, build_mini_resnet, build_mini_vgg
from repro.nn import PlainBackend, Sequential
from repro.quantization import QuantizationConfig
from repro.runtime import (
    DarKnightBackend,
    DarKnightConfig,
    PrivateInferenceEngine,
    Trainer,
)
from repro.serving import PrivateInferenceServer, ServingConfig, synthetic_trace
from repro.slalom import SlalomBackend

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "ReproError",
    "FieldError",
    "QuantizationError",
    "EncodingError",
    "DecodingError",
    "IntegrityError",
    "EnclaveError",
    "ConfigurationError",
    "PrimeField",
    "FieldRng",
    "DEFAULT_PRIME",
    "QuantizationConfig",
    "CoefficientSet",
    "ForwardEncoder",
    "ForwardDecoder",
    "IntegrityVerifier",
    "Sequential",
    "PlainBackend",
    "DarKnightConfig",
    "DarKnightBackend",
    "Trainer",
    "PrivateInferenceEngine",
    "PrivateInferenceServer",
    "ServingConfig",
    "synthetic_trace",
    "SlalomBackend",
    "build_mini_vgg",
    "build_mini_resnet",
    "build_mini_mobilenet",
]
