"""TEE <-> GPU interconnect model.

The paper emulates communication over a 40 Gbps Infiniband switch and finds
~20% of DarKnight's training time goes to moving encoded data (Table 3).
This model converts byte counts into transfer times with a simple
``latency + bytes/bandwidth`` law and keeps a per-endpoint ledger the
timeline builder consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.errors import ConfigurationError

#: 40 Gbps Infiniband (the paper's Section 7 setting).
INFINIBAND_40G_BYTES_PER_S = 40e9 / 8
#: Typical small-message switch latency.
INFINIBAND_LATENCY_S = 2e-6


@dataclass
class TransferRecord:
    """One logged transfer."""

    src: str
    dst: str
    nbytes: int
    seconds: float


@dataclass
class LinkModel:
    """Point-to-point link with fixed latency and bandwidth.

    Parameters
    ----------
    bandwidth_bytes_per_s:
        Sustained throughput.
    latency_s:
        Per-message latency added to every transfer.
    """

    bandwidth_bytes_per_s: float = INFINIBAND_40G_BYTES_PER_S
    latency_s: float = INFINIBAND_LATENCY_S
    records: list = dataclass_field(default_factory=list)

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ConfigurationError("latency cannot be negative")

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` across the link."""
        if nbytes < 0:
            raise ConfigurationError(f"cannot transfer {nbytes} bytes")
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s

    def transfer(self, src: str, dst: str, nbytes: int) -> float:
        """Log a transfer and return its modeled duration."""
        seconds = self.transfer_time(nbytes)
        self.records.append(TransferRecord(src=src, dst=dst, nbytes=nbytes, seconds=seconds))
        return seconds

    @property
    def total_bytes(self) -> int:
        """All bytes that crossed this link."""
        return sum(r.nbytes for r in self.records)

    @property
    def total_seconds(self) -> float:
        """Serialised total transfer time (no overlap assumed)."""
        return sum(r.seconds for r in self.records)

    def reset(self) -> None:
        """Clear the transfer log."""
        self.records.clear()
