"""Communication substrate: link cost model and encrypted channels."""

from repro.comm.link import (
    INFINIBAND_40G_BYTES_PER_S,
    INFINIBAND_LATENCY_S,
    LinkModel,
    TransferRecord,
)
from repro.comm.secure_channel import Envelope, SecureChannel

__all__ = [
    "LinkModel",
    "TransferRecord",
    "SecureChannel",
    "Envelope",
    "INFINIBAND_40G_BYTES_PER_S",
    "INFINIBAND_LATENCY_S",
]
