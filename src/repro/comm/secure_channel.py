"""Encrypted TEE <-> endpoint channels over the link model.

Section 3 of the paper: "Communication channels between the client, server,
and GPUs are encrypted ... a pairwise secure channel between TEE and each
GPU can be established using a secret key exchange protocol at the beginning
of the session."  This module implements that handshake with the toy DH and
AEAD from :mod:`repro.enclave.crypto` and charges every message to a
:class:`~repro.comm.link.LinkModel`.

Note the masked shares themselves do not *need* encryption for privacy (they
are one-time-pad uniform); the channel protects protocol metadata and
matches the deployed system's defence in depth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.link import LinkModel
from repro.enclave.crypto import (
    Ciphertext,
    DiffieHellman,
    StreamAead,
    array_to_bytes,
    bytes_to_array,
)
from repro.errors import CommunicationError


@dataclass(frozen=True)
class Envelope:
    """A sealed message plus the array metadata needed to rebuild it."""

    ciphertext: Ciphertext
    dtype: str
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Wire size."""
        return self.ciphertext.nbytes


class SecureChannel:
    """One end of an established pairwise channel."""

    def __init__(
        self,
        local_name: str,
        peer_name: str,
        session_key: bytes,
        link: LinkModel,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.local_name = local_name
        self.peer_name = peer_name
        self._aead = StreamAead(session_key, rng)
        self._link = link

    @classmethod
    def establish_pair(
        cls,
        name_a: str,
        name_b: str,
        link: LinkModel,
        rng: np.random.Generator | None = None,
    ) -> tuple["SecureChannel", "SecureChannel"]:
        """Run the DH handshake and return both endpoints' channels."""
        rng = rng or np.random.default_rng()
        kx_a = DiffieHellman(rng)
        kx_b = DiffieHellman(rng)
        # Public values cross the wire once each.
        link.transfer(name_a, name_b, 32)
        link.transfer(name_b, name_a, 32)
        key_a = kx_a.shared_key(kx_b.public)
        key_b = kx_b.shared_key(kx_a.public)
        if key_a != key_b:  # pragma: no cover - DH algebra guarantees equality
            raise CommunicationError("key agreement failed")
        return (
            cls(name_a, name_b, key_a, link, rng),
            cls(name_b, name_a, key_b, link, rng),
        )

    def send_array(self, array: np.ndarray) -> Envelope:
        """Encrypt an array for the peer and charge the link."""
        data, meta = array_to_bytes(np.asarray(array))
        ct = self._aead.encrypt(data, aad=self.peer_name.encode())
        env = Envelope(ciphertext=ct, dtype=meta["dtype"], shape=tuple(meta["shape"]))
        self._link.transfer(self.local_name, self.peer_name, env.nbytes)
        return env

    def recv_array(self, envelope: Envelope) -> np.ndarray:
        """Authenticate and decrypt an array received from the peer."""
        try:
            data = self._aead.decrypt(envelope.ciphertext)
        except CommunicationError as exc:
            raise CommunicationError(
                f"channel {self.peer_name}->{self.local_name}: {exc}"
            ) from exc
        return bytes_to_array(data, {"dtype": envelope.dtype, "shape": envelope.shape})
