"""Command-line entry points for ``python -m repro``.

Two subcommands:

* ``report`` (the default) — regenerate the paper's evaluation tables;
* ``serve`` — drive the multi-tenant private-inference server over a
  synthetic offline request trace (no network dependency) and print the
  serving metrics.

Unknown leading arguments fall through to ``report`` so the module also
runs cleanly under harnesses that own ``sys.argv`` (e.g. pytest's smoke
test imports and runs it with pytest's own flags still in ``argv``).
"""

from __future__ import annotations

import argparse
import runpy
import sys
from pathlib import Path

import numpy as np


def parse_seed_flag(argv: list[str] | None = None, default: int = 0) -> int:
    """Extract a ``--seed N`` / ``--seed=N`` flag from an argv-style list.

    Shared by the examples so every script in ``examples/`` is
    deterministic and re-seedable, while tolerating foreign flags (the
    example smoke tests run them under pytest's argv).
    """
    argv = sys.argv[1:] if argv is None else list(argv)
    for i, arg in enumerate(argv):
        value = None
        if arg == "--seed" and i + 1 < len(argv):
            value = argv[i + 1]
        elif arg.startswith("--seed="):
            value = arg.split("=", 1)[1]
        if value is not None:
            try:
                return int(value)
            except ValueError:
                return default
    return default


# ----------------------------------------------------------------------
# models the serve subcommand can load
# ----------------------------------------------------------------------
def build_serving_model(name: str, seed: int = 0):
    """Build a named model for serving; returns ``(network, input_shape)``.

    ``tiny`` is a dense head small enough for smoke tests and CI;
    ``mini-vgg`` exercises the full conv path.
    """
    from repro.errors import ConfigurationError
    from repro.models import build_mini_vgg
    from repro.nn import Sequential
    from repro.nn.layers import Dense, ReLU

    rng = np.random.default_rng(seed)
    if name == "tiny":
        input_shape = (16,)
        network = Sequential(
            [Dense(16, 12, rng=rng), ReLU(), Dense(12, 4, rng=rng)], input_shape
        )
        return network, input_shape
    if name == "mini-vgg":
        input_shape = (3, 8, 8)
        network = build_mini_vgg(
            input_shape=input_shape, n_classes=10, rng=rng, width=8
        )
        return network, input_shape
    raise ConfigurationError(f"unknown serving model {name!r} (tiny | mini-vgg)")


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def run_report() -> int:
    """Regenerate the paper's evaluation as a text report."""
    report = Path(__file__).resolve().parent.parent.parent / "examples" / "paper_report.py"
    if report.exists():
        runpy.run_path(str(report), run_name="__main__")
        return 0
    # Installed without the examples tree: fall back to the harnesses.
    from repro.perf import headline_speedups, table1_rows
    from repro.reporting import render_table

    rows = table1_rows()
    print(
        render_table(
            ["Operations", "Linear", "Maxpool", "Relu", "Total"],
            [
                [r["operation"]] + [f"{r[k]:.2f}x" for k in ("linear", "maxpool", "relu", "total")]
                for r in rows
            ],
            title="Table 1 — GPU speedup over SGX (VGG16, ImageNet)",
        )
    )
    headline = headline_speedups()
    print(
        f"\nheadline: training {headline['training_speedup_avg']:.1f}x,"
        f" inference {headline['inference_speedup_avg']:.1f}x"
    )
    return 0


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve a synthetic multi-tenant inference trace privately.",
    )
    parser.add_argument("--model", default="tiny", help="tiny | mini-vgg")
    parser.add_argument("--requests", type=int, default=64, help="trace length")
    parser.add_argument("--tenants", type=int, default=4, help="distinct tenants")
    parser.add_argument(
        "--rate", type=float, default=1000.0, help="offered load, requests/second"
    )
    parser.add_argument(
        "--virtual-batch", type=int, default=4, help="K — coalescing target"
    )
    parser.add_argument(
        "--batch-wait", type=float, default=0.01,
        help="max seconds a request waits before a partial batch flushes",
    )
    parser.add_argument(
        "--adaptive-batching", action="store_true",
        help="learn each shard's flush deadline from observed arrivals and"
             " pipeline timings, and cap K against the enclave's EPC budget"
             " (--batch-wait becomes the deadline ceiling)",
    )
    parser.add_argument(
        "--target-fill", type=float, default=None,
        help="fill ratio adaptive deadline flushes aim for, default 0.85"
             " (requires --adaptive-batching)",
    )
    parser.add_argument(
        "--epc-budget", type=int, default=None,
        help="usable EPC bytes each enclave models (default: the paper"
             " generation's ~93 MB); adaptive batching sizes K against it"
             " (requires --adaptive-batching)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="accepted for compatibility; overlap now comes from the staged"
             " pipeline (use --pipeline-depth)",
    )
    parser.add_argument(
        "--pipeline-depth", type=int, default=1,
        help="virtual batches kept in flight by the staged executor"
             " (1 = synchronous; >= 2 overlaps enclave encode with GPU compute)",
    )
    parser.add_argument(
        "--slo-budget", action="append", default=None, metavar="CLASS=MS",
        help="define an SLO class with an end-to-end latency budget in"
             " milliseconds (repeatable, e.g. --slo-budget premium=5);"
             " tighter budgets get higher admission priority",
    )
    parser.add_argument(
        "--slo-class", action="append", default=None, metavar="TENANT=CLASS",
        help="assign a tenant to an SLO class defined with --slo-budget"
             " (repeatable, e.g. --slo-class tenant0=premium); unassigned"
             " tenants keep the budget-less default class",
    )
    parser.add_argument(
        "--stage-ranker", default="earliest", choices=["earliest", "deadline"],
        help="pipeline executor task-selection policy: 'earliest' (classic"
             " earliest-start/decode-first) or 'deadline' (tightest remaining"
             " SLO budget first); decoded values are bit-identical either way",
    )
    parser.add_argument(
        "--num-shards", type=int, default=1,
        help="enclave shards tenants are partitioned across (each shard is"
             " its own enclave + GPU cluster on a parallel timeline)",
    )
    parser.add_argument(
        "--gpus", type=int, default=None,
        help="total simulated-GPU budget across all shards (default: exactly"
             " what the configuration needs); serving refuses to start when"
             " the shards would not fit",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=256, help="bounded queue size"
    )
    parser.add_argument(
        "--integrity", action="store_true",
        help="add the redundant share and verify every GPU result",
    )
    parser.add_argument(
        "--per-request", action="store_true",
        help="disable coalescing (dispatch each request alone; baseline)",
    )
    parser.add_argument("--seed", type=int, default=0, help="determinism seed")
    return parser


def run_serve(argv: list[str]) -> int:
    """``python -m repro serve ...`` — offline trace driver."""
    from repro.errors import ReproError

    args = _serve_parser().parse_args(argv)
    try:
        return _serve(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _parse_kv_flags(pairs: list[str] | None, flag: str) -> dict[str, str]:
    """Parse repeated ``key=value`` flag occurrences into a dict."""
    from repro.errors import ConfigurationError

    out: dict[str, str] = {}
    for pair in pairs or []:
        key, sep, value = pair.partition("=")
        if not sep or not key or not value:
            raise ConfigurationError(
                f"{flag} expects key=value, got {pair!r}"
            )
        out[key] = value
    return out


def _build_slo(args):
    """Build the SLO policy from --slo-budget / --slo-class flags."""
    from repro.errors import ConfigurationError
    from repro.serving import build_slo_policy

    if args.slo_budget is None and args.slo_class is None:
        return None
    budgets = {}
    for name, ms in _parse_kv_flags(args.slo_budget, "--slo-budget").items():
        try:
            budgets[name] = float(ms) / 1e3
        except ValueError:
            raise ConfigurationError(
                f"--slo-budget {name}={ms!r}: budget must be a number of"
                " milliseconds"
            ) from None
    assignments = _parse_kv_flags(args.slo_class, "--slo-class")
    return build_slo_policy(budgets, assignments)


def _serve(args) -> int:
    from repro.errors import ConfigurationError
    from repro.runtime.config import DarKnightConfig
    from repro.serving import PrivateInferenceServer, ServingConfig, synthetic_trace

    if args.rate <= 0:
        raise ConfigurationError(f"--rate must be > 0, got {args.rate}")
    if args.pipeline_depth < 1:
        raise ConfigurationError(
            f"--pipeline-depth must be >= 1, got {args.pipeline_depth}"
        )
    if args.num_shards < 1:
        raise ConfigurationError(
            f"--num-shards must be >= 1, got {args.num_shards}"
        )
    if not args.adaptive_batching and args.target_fill is not None:
        raise ConfigurationError(
            "--target-fill only applies with --adaptive-batching"
        )
    if not args.adaptive_batching and args.epc_budget is not None:
        raise ConfigurationError(
            "--epc-budget only applies with --adaptive-batching"
        )
    slo = _build_slo(args)
    if slo is None and args.stage_ranker == "deadline":
        raise ConfigurationError(
            "--stage-ranker deadline needs SLO budgets to rank on"
            " (add --slo-budget class=ms)"
        )
    dk = DarKnightConfig(
        virtual_batch_size=args.virtual_batch,
        integrity=args.integrity,
        pipeline_depth=args.pipeline_depth,
        stage_ranker=args.stage_ranker,
        num_shards=args.num_shards,
        epc_budget_bytes=args.epc_budget,
        seed=args.seed,
    )
    gpus_needed = args.num_shards * dk.n_gpus_required
    if args.gpus is not None and args.gpus < gpus_needed:
        raise ConfigurationError(
            f"--gpus {args.gpus} cannot host {args.num_shards} shard(s): each"
            f" shard needs K + M{' + 1 (integrity)' if args.integrity else ''}"
            f" = {dk.n_gpus_required} simulated GPUs, {gpus_needed} total;"
            " raise --gpus or lower --num-shards / --virtual-batch"
        )
    network, input_shape = build_serving_model(args.model, seed=args.seed)
    adaptive = None
    if args.adaptive_batching:
        from repro.serving import AdaptiveBatchingConfig

        adaptive = AdaptiveBatchingConfig(
            target_fill=0.85 if args.target_fill is None else args.target_fill
        )
    config = ServingConfig(
        darknight=dk,
        max_batch_wait=args.batch_wait,
        queue_capacity=args.queue_capacity,
        n_workers=args.workers,
        coalesce=not args.per_request,
        adaptive=adaptive,
        slo=slo,
    )
    trace = synthetic_trace(
        n_requests=args.requests,
        input_shape=input_shape,
        n_tenants=args.tenants,
        mean_interarrival=1.0 / args.rate,
        seed=args.seed,
    )
    server = PrivateInferenceServer(network, config)
    report = server.serve_trace(trace)
    if args.per_request:
        mode = "per-request"
    elif args.adaptive_batching:
        mode = (
            f"adaptive K={server.darknight.virtual_batch_size}"
            f" (requested {args.virtual_batch})"
        )
    else:
        mode = f"coalesced K={args.virtual_batch}"
    print(
        f"served {args.requests} requests from {args.tenants} tenants"
        f" ({mode}, integrity={'on' if args.integrity else 'off'},"
        f" pipeline depth {args.pipeline_depth},"
        f" {args.num_shards} shard(s))"
    )
    if slo is not None:
        classes = ", ".join(
            f"{row['name']}"
            + (
                f"={row['latency_budget'] * 1e3:.1f}ms"
                if row["latency_budget"] is not None
                else " (no budget)"
            )
            + (f" <- {', '.join(row['tenants'])}" if row["tenants"] else "")
            for row in slo.class_table()
        )
        print(f"SLO classes ({args.stage_ranker} ranker): {classes}")
    print(report.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    """Dispatch ``python -m repro [report|serve] ...``."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "serve":
        return run_serve(argv[1:])
    # ``report`` explicitly, or anything else (including foreign argv).
    return run_report()
