"""Command-line entry points for ``python -m repro``.

Three subcommands:

* ``report`` (the default) — regenerate the paper's evaluation tables;
* ``serve`` — drive the multi-tenant private-inference server over a
  synthetic offline request trace (no network dependency) and print the
  serving metrics; ``--audit-log DIR`` additionally commits every flush
  window to the verifiable audit trail, ``--config FILE_OR_PRESET``
  loads a whole :class:`~repro.serving.ServingConfig` (JSON file or
  named preset) in one flag, and ``--autoscale`` serves elastically
  (live shard provision/decommission with drain-before-kill);
* ``audit`` — query a recorded trail: ``prove`` a request's inclusion,
  ``verify`` a proof offline against a published chain head, ``replay``
  a disputed window deterministically, ``check-chain`` walk the logs.

Unknown leading arguments fall through to ``report`` so the module also
runs cleanly under harnesses that own ``sys.argv`` (e.g. pytest's smoke
test imports and runs it with pytest's own flags still in ``argv``).
"""

from __future__ import annotations

import argparse
import runpy
import sys
from pathlib import Path

import numpy as np


def parse_seed_flag(argv: list[str] | None = None, default: int = 0) -> int:
    """Extract a ``--seed N`` / ``--seed=N`` flag from an argv-style list.

    Shared by the examples so every script in ``examples/`` is
    deterministic and re-seedable, while tolerating foreign flags (the
    example smoke tests run them under pytest's argv).
    """
    argv = sys.argv[1:] if argv is None else list(argv)
    for i, arg in enumerate(argv):
        value = None
        if arg == "--seed" and i + 1 < len(argv):
            value = argv[i + 1]
        elif arg.startswith("--seed="):
            value = arg.split("=", 1)[1]
        if value is not None:
            try:
                return int(value)
            except ValueError:
                return default
    return default


# ----------------------------------------------------------------------
# models the serve subcommand can load
# ----------------------------------------------------------------------
def build_serving_model(name: str, seed: int = 0):
    """Build a named model for serving; returns ``(network, input_shape)``.

    ``tiny`` is a dense head small enough for smoke tests and CI;
    ``mini-vgg`` exercises the full conv path; ``mini-resnet`` adds
    residual blocks — the deep plan layered partitioning wants.
    """
    from repro.errors import ConfigurationError
    from repro.models import build_mini_resnet, build_mini_vgg
    from repro.nn import Sequential
    from repro.nn.layers import Dense, ReLU

    rng = np.random.default_rng(seed)
    if name == "tiny":
        input_shape = (16,)
        network = Sequential(
            [Dense(16, 12, rng=rng), ReLU(), Dense(12, 4, rng=rng)], input_shape
        )
        return network, input_shape
    if name == "mini-vgg":
        input_shape = (3, 8, 8)
        network = build_mini_vgg(
            input_shape=input_shape, n_classes=10, rng=rng, width=8
        )
        return network, input_shape
    if name == "mini-resnet":
        input_shape = (3, 8, 8)
        network = build_mini_resnet(
            input_shape=input_shape, n_classes=10, rng=rng, width=8
        )
        return network, input_shape
    raise ConfigurationError(
        f"unknown serving model {name!r} (tiny | mini-vgg | mini-resnet)"
    )


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def run_report() -> int:
    """Regenerate the paper's evaluation as a text report."""
    report = Path(__file__).resolve().parent.parent.parent / "examples" / "paper_report.py"
    if report.exists():
        runpy.run_path(str(report), run_name="__main__")
        return 0
    # Installed without the examples tree: fall back to the harnesses.
    from repro.perf import headline_speedups, table1_rows
    from repro.reporting import render_table

    rows = table1_rows()
    print(
        render_table(
            ["Operations", "Linear", "Maxpool", "Relu", "Total"],
            [
                [r["operation"]] + [f"{r[k]:.2f}x" for k in ("linear", "maxpool", "relu", "total")]
                for r in rows
            ],
            title="Table 1 — GPU speedup over SGX (VGG16, ImageNet)",
        )
    )
    headline = headline_speedups()
    print(
        f"\nheadline: training {headline['training_speedup_avg']:.1f}x,"
        f" inference {headline['inference_speedup_avg']:.1f}x"
    )
    return 0


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve a synthetic multi-tenant inference trace privately.",
    )
    parser.add_argument(
        "--model", default="tiny", help="tiny | mini-vgg | mini-resnet"
    )
    parser.add_argument("--requests", type=int, default=64, help="trace length")
    parser.add_argument("--tenants", type=int, default=4, help="distinct tenants")
    parser.add_argument(
        "--rate", type=float, default=1000.0, help="offered load, requests/second"
    )
    parser.add_argument(
        "--config", default=None, metavar="FILE_OR_PRESET",
        help="load a full ServingConfig from a JSON file"
             " (ServingConfig.to_dict layout) or a named preset"
             " (latency | throughput | audited); explicit per-field flags"
             " still override it, with a deprecation warning",
    )
    parser.add_argument(
        "--virtual-batch", type=int, default=None,
        help="K — coalescing target (default 4)",
    )
    parser.add_argument(
        "--batch-wait", type=float, default=None,
        help="max seconds a request waits before a partial batch flushes"
             " (default 0.01)",
    )
    parser.add_argument(
        "--adaptive-batching", action="store_true",
        help="learn each shard's flush deadline from observed arrivals and"
             " pipeline timings, and cap K against the enclave's EPC budget"
             " (--batch-wait becomes the deadline ceiling)",
    )
    parser.add_argument(
        "--target-fill", type=float, default=None,
        help="fill ratio adaptive deadline flushes aim for, default 0.85"
             " (requires --adaptive-batching)",
    )
    parser.add_argument(
        "--epc-budget", type=int, default=None,
        help="usable EPC bytes each enclave models (default: the paper"
             " generation's ~93 MB); adaptive batching sizes K against it"
             " (requires --adaptive-batching)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="deprecated; overlap now comes from the staged pipeline"
             " (use --pipeline-depth)",
    )
    parser.add_argument(
        "--pipeline-depth", type=int, default=None,
        help="virtual batches kept in flight by the staged executor"
             " (1 = synchronous, the default; >= 2 overlaps enclave encode"
             " with GPU compute)",
    )
    parser.add_argument(
        "--slo-budget", action="append", default=None, metavar="CLASS=MS",
        help="define an SLO class with an end-to-end latency budget in"
             " milliseconds (repeatable, e.g. --slo-budget premium=5);"
             " tighter budgets get higher admission priority",
    )
    parser.add_argument(
        "--slo-class", action="append", default=None, metavar="TENANT=CLASS",
        help="assign a tenant to an SLO class defined with --slo-budget"
             " (repeatable, e.g. --slo-class tenant0=premium); unassigned"
             " tenants keep the budget-less default class",
    )
    parser.add_argument(
        "--stage-ranker", default=None, choices=["earliest", "deadline"],
        help="pipeline executor task-selection policy: 'earliest' (classic"
             " earliest-start/decode-first) or 'deadline' (tightest remaining"
             " SLO budget first); decoded values are bit-identical either way",
    )
    parser.add_argument(
        "--num-shards", type=int, default=None,
        help="enclave shards tenants are partitioned across (each shard is"
             " its own enclave + GPU cluster on a parallel timeline;"
             " default 1 — with --autoscale this is only the initial count)",
    )
    parser.add_argument(
        "--partition", default=None, metavar="MODE",
        help="shard topology: 'replicated' (every shard runs the whole"
             " model, the default) or 'layered:N' (cut the execution plan"
             " into N contiguous stages; shards chain into pipeline groups"
             " of N, handing sealed activations over attested channels;"
             " logits stay bit-identical to replicated)",
    )
    parser.add_argument(
        "--autoscale", action="store_true",
        help="elastically provision/decommission shards at runtime from"
             " queue-depth and utilization signals (drain-before-kill;"
             " logits stay bit-identical at any membership history)",
    )
    parser.add_argument(
        "--min-shards", type=int, default=None,
        help="autoscaler floor on live shards (requires --autoscale;"
             " default 1)",
    )
    parser.add_argument(
        "--max-shards", type=int, default=None,
        help="autoscaler ceiling on live shards (requires --autoscale;"
             " default 4)",
    )
    parser.add_argument(
        "--target-utilization", type=float, default=None,
        help="utilization above which the autoscaler scales out"
             " (requires --autoscale; default 0.85)",
    )
    parser.add_argument(
        "--gpus", type=int, default=None,
        help="total simulated-GPU budget across all shards (default: exactly"
             " what the configuration needs); serving refuses to start when"
             " the shards would not fit",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=None,
        help="bounded queue size (default 256)",
    )
    parser.add_argument(
        "--field-backend", default=None, choices=["limb", "generic"],
        help="field-op backend for every masked GEMM: 'limb' (float64 BLAS"
             " GEMMs over 13-bit limbs with Barrett reduction, the fast"
             " default) or 'generic' (chunked int64 oracle); results are"
             " bit-identical either way",
    )
    parser.add_argument(
        "--integrity", action="store_true",
        help="add the redundant share and verify every GPU result",
    )
    parser.add_argument(
        "--per-request", action="store_true",
        help="disable coalescing (dispatch each request alone; baseline)",
    )
    parser.add_argument(
        "--audit-log", default=None, metavar="DIR",
        help="enable the verifiable audit trail: commit every flush window"
             " to per-shard hash-chained Merkle logs under DIR (plus a"
             " manifest for deterministic replay); query them afterwards"
             " with 'python -m repro audit'",
    )
    parser.add_argument(
        "--precompute", action="store_true",
        help="offline/online split: pregenerate mask streams in enclave"
             " idle gaps, cache weight encodings across flush windows, and"
             " recycle hot-path buffers; responses stay bit-identical to a"
             " run without the flag",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="determinism seed (default 0)"
    )
    return parser


def run_serve(argv: list[str]) -> int:
    """``python -m repro serve ...`` — offline trace driver."""
    from repro.errors import ReproError

    args = _serve_parser().parse_args(argv)
    try:
        return _serve(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _parse_kv_flags(pairs: list[str] | None, flag: str) -> dict[str, str]:
    """Parse repeated ``key=value`` flag occurrences into a dict."""
    from repro.errors import ConfigurationError

    out: dict[str, str] = {}
    for pair in pairs or []:
        key, sep, value = pair.partition("=")
        if not sep or not key or not value:
            raise ConfigurationError(
                f"{flag} expects key=value, got {pair!r}"
            )
        out[key] = value
    return out


def _build_slo(args):
    """Build the SLO policy from --slo-budget / --slo-class flags."""
    from repro.errors import ConfigurationError
    from repro.serving import build_slo_policy

    if args.slo_budget is None and args.slo_class is None:
        return None
    budgets = {}
    for name, ms in _parse_kv_flags(args.slo_budget, "--slo-budget").items():
        try:
            budgets[name] = float(ms) / 1e3
        except ValueError:
            raise ConfigurationError(
                f"--slo-budget {name}={ms!r}: budget must be a number of"
                " milliseconds"
            ) from None
    assignments = _parse_kv_flags(args.slo_class, "--slo-class")
    return build_slo_policy(budgets, assignments)


def _load_serving_config(spec: str):
    """Resolve ``--config``: a preset name or a ServingConfig JSON file."""
    import json

    from repro.errors import ConfigurationError
    from repro.serving import PRESETS, ServingConfig

    if spec in PRESETS:
        return ServingConfig.preset(spec)
    path = Path(spec)
    if not path.exists():
        raise ConfigurationError(
            f"--config {spec!r} is neither a preset"
            f" ({', '.join(PRESETS)}) nor an existing JSON file"
        )
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"--config {spec}: not valid JSON ({exc})"
        ) from exc
    return ServingConfig.from_dict(data)


# CLI flags a --config file supersedes, with the predicate telling
# whether the flag was explicitly given on this invocation.
_SUPERSEDED_FLAGS = (
    ("--virtual-batch", "virtual_batch"),
    ("--batch-wait", "batch_wait"),
    ("--workers", "workers"),
    ("--pipeline-depth", "pipeline_depth"),
    ("--stage-ranker", "stage_ranker"),
    ("--num-shards", "num_shards"),
    ("--partition", "partition"),
    ("--queue-capacity", "queue_capacity"),
    ("--field-backend", "field_backend"),
    ("--epc-budget", "epc_budget"),
    ("--target-fill", "target_fill"),
    ("--integrity", "integrity"),
    ("--per-request", "per_request"),
    ("--adaptive-batching", "adaptive_batching"),
    ("--audit-log", "audit_log"),
    ("--precompute", "precompute"),
    ("--slo-budget", "slo_budget"),
    ("--slo-class", "slo_class"),
)


def _serve(args) -> int:
    import dataclasses
    import warnings

    from repro.errors import ConfigurationError
    from repro.runtime.config import DarKnightConfig
    from repro.serving import (
        AutoscaleConfig,
        PrivateInferenceServer,
        ServingConfig,
        synthetic_trace,
    )

    # DeprecationWarning is hidden by default outside __main__; a CLI
    # user should still see their flags are on the way out.
    warnings.filterwarnings("default", category=DeprecationWarning, module=__name__)
    if args.workers is not None:
        warnings.warn(
            "--workers is deprecated and changes nothing beyond the recorded"
            " config: overlap comes from the staged pipeline"
            " (--pipeline-depth) and parallel shard timelines (--num-shards)",
            DeprecationWarning,
            stacklevel=2,
        )
    base = _load_serving_config(args.config) if args.config is not None else None
    if base is not None:
        used = sorted(
            flag
            for flag, dest in _SUPERSEDED_FLAGS
            if getattr(args, dest) not in (None, False)
        )
        if used:
            warnings.warn(
                f"{', '.join(used)}: per-field serve flags are deprecated"
                " when --config is given — move them into the config file"
                " (explicit flags still override it for now)",
                DeprecationWarning,
                stacklevel=2,
            )
    base_dk = base.darknight if base is not None else DarKnightConfig()

    def pick(flag_value, config_value, default):
        """Explicit flag > config file > legacy default."""
        if flag_value is not None:
            return flag_value
        return config_value if base is not None else default

    seed = pick(args.seed, base_dk.seed, 0)
    if seed is None:
        seed = 0
    virtual_batch = pick(args.virtual_batch, base_dk.virtual_batch_size, 4)
    pipeline_depth = pick(args.pipeline_depth, base_dk.pipeline_depth, 1)
    num_shards = pick(args.num_shards, base_dk.num_shards, 1)
    field_backend = pick(args.field_backend, base_dk.field_backend, "limb")
    stage_ranker = pick(args.stage_ranker, base_dk.stage_ranker, "earliest")
    epc_budget = pick(args.epc_budget, base_dk.epc_budget_bytes, None)
    integrity = args.integrity or (base is not None and base_dk.integrity)
    batch_wait = pick(
        args.batch_wait, base.max_batch_wait if base else None, 0.01
    )
    queue_capacity = pick(
        args.queue_capacity, base.queue_capacity if base else None, 256
    )
    n_workers = pick(args.workers, base.n_workers if base else None, 2)
    coalesce = not args.per_request and (base.coalesce if base else True)
    partition = pick(
        args.partition, base.partition if base else None, "replicated"
    )
    precompute = args.precompute or (base is not None and base.precompute)

    if args.rate <= 0:
        raise ConfigurationError(f"--rate must be > 0, got {args.rate}")
    if pipeline_depth < 1:
        raise ConfigurationError(
            f"--pipeline-depth must be >= 1, got {pipeline_depth}"
        )
    if num_shards < 1:
        raise ConfigurationError(
            f"--num-shards must be >= 1, got {num_shards}"
        )

    adaptive = base.adaptive if base is not None else None
    if args.adaptive_batching and adaptive is None:
        from repro.serving import AdaptiveBatchingConfig

        adaptive = AdaptiveBatchingConfig()
    if args.target_fill is not None:
        if adaptive is None:
            raise ConfigurationError(
                "--target-fill only applies with --adaptive-batching"
            )
        adaptive = dataclasses.replace(adaptive, target_fill=args.target_fill)
    if adaptive is None and epc_budget is not None:
        raise ConfigurationError(
            "--epc-budget only applies with --adaptive-batching"
        )

    slo = _build_slo(args)
    if slo is None and base is not None:
        slo = base.slo
    if slo is None and stage_ranker == "deadline":
        raise ConfigurationError(
            "--stage-ranker deadline needs SLO budgets to rank on"
            " (add --slo-budget class=ms)"
        )

    autoscale = base.autoscale if base is not None else None
    tuning = (
        args.min_shards is not None
        or args.max_shards is not None
        or args.target_utilization is not None
    )
    if tuning and not args.autoscale and autoscale is None:
        raise ConfigurationError(
            "--min-shards/--max-shards/--target-utilization only apply with"
            " --autoscale (or a config file with an autoscale section)"
        )
    if args.autoscale or tuning:
        knobs = {}
        if args.min_shards is not None:
            knobs["min_shards"] = args.min_shards
        if args.max_shards is not None:
            knobs["max_shards"] = args.max_shards
        if args.target_utilization is not None:
            knobs["utilization_high"] = args.target_utilization
        autoscale = (
            dataclasses.replace(autoscale, **knobs)
            if autoscale is not None
            else AutoscaleConfig(**knobs)
        )

    audit = base.audit if base is not None else None
    if args.audit_log is not None:
        from repro.serving import AuditConfig

        audit = AuditConfig(log_dir=args.audit_log, model=args.model)

    dk = dataclasses.replace(
        base_dk,
        virtual_batch_size=virtual_batch,
        integrity=integrity,
        field_backend=field_backend,
        pipeline_depth=pipeline_depth,
        stage_ranker=stage_ranker,
        num_shards=num_shards,
        epc_budget_bytes=epc_budget,
        seed=seed,
    )
    gpus_needed = num_shards * dk.n_gpus_required
    if args.gpus is not None and args.gpus < gpus_needed:
        raise ConfigurationError(
            f"--gpus {args.gpus} cannot host {num_shards} shard(s): each"
            f" shard needs K + M{' + 1 (integrity)' if integrity else ''}"
            f" = {dk.n_gpus_required} simulated GPUs, {gpus_needed} total;"
            " raise --gpus or lower --num-shards / --virtual-batch"
        )
    network, input_shape = build_serving_model(args.model, seed=seed)
    overrides = dict(
        darknight=dk,
        partition=partition,
        max_batch_wait=batch_wait,
        queue_capacity=queue_capacity,
        n_workers=n_workers,
        coalesce=coalesce,
        adaptive=adaptive,
        slo=slo,
        audit=audit,
        autoscale=autoscale,
        precompute=precompute,
    )
    config = (
        dataclasses.replace(base, **overrides)
        if base is not None
        else ServingConfig(**overrides)
    )
    trace = synthetic_trace(
        n_requests=args.requests,
        input_shape=input_shape,
        n_tenants=args.tenants,
        mean_interarrival=1.0 / args.rate,
        seed=seed,
    )
    server = PrivateInferenceServer(network, config)
    report = server.serve_trace(trace)
    if args.per_request:
        mode = "per-request"
    elif adaptive is not None:
        mode = (
            f"adaptive K={server.darknight.virtual_batch_size}"
            f" (requested {virtual_batch})"
        )
    else:
        mode = f"coalesced K={virtual_batch}"
    if autoscale is not None:
        initial = min(max(num_shards, autoscale.min_shards), autoscale.max_shards)
        shard_desc = (
            f"elastic {autoscale.min_shards}-{autoscale.max_shards} shard(s),"
            f" started at {initial}"
        )
    else:
        shard_desc = f"{num_shards} shard(s)"
    print(
        f"served {args.requests} requests from {args.tenants} tenants"
        f" ({mode}, integrity={'on' if integrity else 'off'},"
        f" pipeline depth {pipeline_depth},"
        f" {shard_desc})"
    )
    if slo is not None:
        classes = ", ".join(
            f"{row['name']}"
            + (
                f"={row['latency_budget'] * 1e3:.1f}ms"
                if row["latency_budget"] is not None
                else " (no budget)"
            )
            + (f" <- {', '.join(row['tenants'])}" if row["tenants"] else "")
            for row in slo.class_table()
        )
        print(f"SLO classes ({stage_ranker} ranker): {classes}")
    print(report.render())
    if audit is not None and audit.log_dir is not None:
        print(
            f"audit: {server.metrics.audit_windows} windows"
            f" ({server.metrics.audit_leaves} leaves,"
            f" {server.metrics.audit_bytes:,} bytes) committed to"
            f" {audit.log_dir}"
        )
    return 0


# ----------------------------------------------------------------------
# the audit subcommand
# ----------------------------------------------------------------------
def _audit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro audit",
        description="Query a serving run's verifiable audit trail.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    prove = sub.add_parser(
        "prove", help="extract a request's offline-verifiable inclusion proof"
    )
    prove.add_argument("--log-dir", required=True, help="audit directory")
    prove.add_argument("--request-id", type=int, required=True)
    prove.add_argument(
        "--out", default=None, help="write the proof JSON here (default: stdout)"
    )
    verify = sub.add_parser(
        "verify", help="verify a proof file against a shard chain head"
    )
    verify.add_argument("--proof", required=True, help="proof JSON from 'prove'")
    verify.add_argument(
        "--root", default=None,
        help="the shard chain head to verify against (hex); defaults to the"
             " head embedded in the proof file — pass the independently"
             " published head to actually distrust the file",
    )
    replay = sub.add_parser(
        "replay", help="deterministically re-execute a committed window"
    )
    replay.add_argument("--log-dir", required=True, help="audit directory")
    replay.add_argument("--shard", type=int, default=None)
    replay.add_argument("--window", type=int, default=None)
    replay.add_argument(
        "--request-id", type=int, default=None,
        help="replay the window holding this request's terminal leaf"
             " (alternative to --shard/--window)",
    )
    chain = sub.add_parser(
        "check-chain", help="walk every shard log's hash chain end to end"
    )
    chain.add_argument("--log-dir", required=True, help="audit directory")
    chain.add_argument(
        "--recover", action="store_true",
        help="tolerate a damaged log: keep each chain's longest valid"
             " prefix and report how many lines were dropped",
    )
    return parser


def _audit_logs(log_dir: str, recover: bool = False):
    """Load every per-shard log in an audit directory."""
    from repro.audit import AuditLog
    from repro.errors import ConfigurationError

    paths = sorted(Path(log_dir).glob("shard*.audit.jsonl"))
    if not paths:
        raise ConfigurationError(f"no shard*.audit.jsonl logs under {log_dir}")
    logs = {}
    for path in paths:
        if recover:
            log, dropped = AuditLog.recover(path)
        else:
            log, dropped = AuditLog.load(path), 0
        logs[log.shard_id] = (log, dropped)
    return logs


def _audit_find(logs, request_id: int):
    """The (log, proof) pair holding a request's best (terminal) leaf."""
    from repro.audit import STATUS_RETRIED, prove
    from repro.errors import AuditError

    best = None
    for log, _ in logs.values():
        try:
            proof = prove(log, request_id)
        except AuditError:
            continue
        terminal = proof.leaf["status"] != STATUS_RETRIED
        if best is None or (terminal and not best[2]):
            best = (log, proof, terminal)
        if terminal:
            break
    if best is None:
        raise AuditError(f"request {request_id} appears in no shard's audit log")
    return best[0], best[1]


def run_audit(argv: list[str]) -> int:
    """``python -m repro audit <prove|verify|replay|check-chain> ...``."""
    import json

    from repro.audit import (
        InclusionProof,
        load_manifest,
        manifest_config,
        replay_window,
        verify_proof,
    )
    from repro.errors import ConfigurationError, ReproError

    args = _audit_parser().parse_args(argv)
    try:
        if args.cmd == "prove":
            logs = _audit_logs(args.log_dir)
            log, proof = _audit_find(logs, args.request_id)
            record = {"proof": proof.to_record(), "shard_root": log.chain_root}
            text = json.dumps(record, sort_keys=True, indent=2)
            if args.out is not None:
                Path(args.out).write_text(text + "\n")
                print(
                    f"request {args.request_id}: proof from shard"
                    f" {log.shard_id} window {proof.window_id}"
                    f" ({len(proof.merkle.path)} siblings) -> {args.out}"
                )
            else:
                print(text)
            return 0
        if args.cmd == "verify":
            record = json.loads(Path(args.proof).read_text())
            proof = InclusionProof.from_record(record["proof"])
            root = args.root if args.root is not None else record["shard_root"]
            ok = verify_proof(proof, root)
            print(
                f"request {proof.leaf['request_id']} (shard {proof.shard_id},"
                f" window {proof.window_id}, status"
                f" {proof.leaf['status']!r}): "
                + ("PROOF OK" if ok else "PROOF FAILED")
            )
            return 0 if ok else 1
        if args.cmd == "replay":
            manifest = load_manifest(args.log_dir)
            logs = _audit_logs(args.log_dir)
            if args.request_id is not None:
                log, proof = _audit_find(logs, args.request_id)
                entry = log.entries[proof.window_id]
            elif args.shard is not None and args.window is not None:
                if args.shard not in logs:
                    raise ConfigurationError(
                        f"no shard {args.shard} log under {args.log_dir}"
                    )
                log = logs[args.shard][0]
                if not 0 <= args.window < log.n_windows:
                    raise ConfigurationError(
                        f"shard {args.shard} has {log.n_windows} windows;"
                        f" --window {args.window} is out of range"
                    )
                entry = log.entries[args.window]
            else:
                raise ConfigurationError(
                    "replay needs --request-id, or both --shard and --window"
                )
            network, _ = build_serving_model(
                manifest["model"], seed=manifest["seed"] or 0
            )
            result = replay_window(entry, network, manifest_config(manifest))
            print(
                f"window {result.window_id} (shard {result.shard_id}):"
                f" replayed {result.n_requests} request(s) in"
                f" {result.n_batches} batch(es); output digests MATCH"
            )
            return 0
        # check-chain
        logs = _audit_logs(args.log_dir, recover=args.recover)
        total = 0
        events = []
        for shard_id in sorted(logs):
            log, dropped = logs[shard_id]
            checked = log.verify_chain()
            total += checked
            line = (
                f"shard {shard_id}: {checked} window(s) verified,"
                f" head {log.chain_root[:16]}…"
            )
            if dropped:
                line += f" ({dropped} damaged line(s) dropped)"
            print(line)
            events.extend(log.membership_events())
        if events:
            events.sort(key=lambda e: (e["time"], e["shard_id"], e["window_id"]))
            print(f"membership history ({len(events)} chained event(s)):")
            for ev in events:
                print(
                    f"  t={ev['time']:.6f} shard {ev['shard_id']}"
                    f" {ev['kind']} (window {ev['window_id']})"
                )
        print(f"chain OK: {total} window(s) across {len(logs)} shard(s)")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    """Dispatch ``python -m repro [report|serve|audit] ...``."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "serve":
        return run_serve(argv[1:])
    if argv and argv[0] == "audit":
        return run_audit(argv[1:])
    # ``report`` explicitly, or anything else (including foreign argv).
    return run_report()
