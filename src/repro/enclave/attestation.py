"""Local/remote attestation simulation.

Before a client uploads private data, SGX lets it verify *which code* runs
inside the enclave: the hardware measures the enclave (MRENCLAVE), signs a
quote with a platform key, and the client checks both.  The simulator keeps
the same three moving parts — measurement, quote, verification — so the
runtime can refuse to serve un-attested sessions and tests can exercise
measurement mismatches.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import AttestationError


def measure_enclave(code_identity: bytes | str) -> bytes:
    """MRENCLAVE analogue: hash of the enclave's code identity."""
    if isinstance(code_identity, str):
        code_identity = code_identity.encode()
    return hashlib.blake2b(code_identity, digest_size=32, person=b"repro-msr").digest()


@dataclass(frozen=True)
class Quote:
    """A signed attestation statement."""

    measurement: bytes
    report_data: bytes
    signature: bytes


class AttestationService:
    """The platform's quoting enclave + the client's verification logic.

    Parameters
    ----------
    platform_key:
        Secret signing key fused into the (simulated) CPU.
    """

    def __init__(self, platform_key: bytes) -> None:
        if len(platform_key) < 16:
            raise AttestationError("platform key must be at least 16 bytes")
        self._platform_key = platform_key

    def _sign(self, measurement: bytes, report_data: bytes) -> bytes:
        h = hashlib.blake2b(key=self._platform_key, digest_size=32, person=b"repro-qte")
        h.update(measurement)
        h.update(report_data)
        return h.digest()

    def quote(self, measurement: bytes, report_data: bytes = b"") -> Quote:
        """Produce a quote over the enclave measurement."""
        return Quote(
            measurement=measurement,
            report_data=report_data,
            signature=self._sign(measurement, report_data),
        )

    def verify(self, quote: Quote, expected_measurement: bytes) -> bool:
        """Client-side check: correct platform signature *and* expected code.

        Raises
        ------
        AttestationError
            When the signature is invalid or the measurement differs from
            what the client audited.
        """
        if self._sign(quote.measurement, quote.report_data) != quote.signature:
            raise AttestationError("quote signature invalid (not this platform)")
        if quote.measurement != expected_measurement:
            raise AttestationError(
                "enclave measurement mismatch: refusing to provision data"
            )
        return True
