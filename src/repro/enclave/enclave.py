"""The simulated SGX enclave: identity, protected memory, ledgers.

The :class:`Enclave` is the trust anchor the DarKnight runtime builds on.
It owns:

* an identity (measurement) and a sealing facility bound to it;
* the EPC model that makes memory pressure — the paper's recurring villain —
  observable;
* an operation ledger that records what ran inside the TEE (encode, decode,
  non-linear ops, crypto) with byte counts for the performance model;
* the field RNG whose coefficients/noise never leave protected memory.

It deliberately does *not* know about neural networks; the runtime composes
enclave facilities with the masking and nn packages.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.enclave.attestation import AttestationService, Quote, measure_enclave
from repro.enclave.epc import EpcModel
from repro.enclave.sealing import SealedBlob, Sealer, UntrustedStore
from repro.errors import EnclaveError
from repro.fieldmath import FieldRng, PrimeField


@dataclass
class EnclaveLedger:
    """What happened inside the TEE, for the cost model."""

    ecalls: int = 0
    ocalls: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    sealed_bytes: int = 0
    unsealed_bytes: int = 0
    op_counts: dict = dataclass_field(default_factory=dict)
    op_bytes: dict = dataclass_field(default_factory=dict)

    def record_op(self, name: str, nbytes: int = 0) -> None:
        """Count one enclave-internal operation touching ``nbytes``."""
        self.op_counts[name] = self.op_counts.get(name, 0) + 1
        self.op_bytes[name] = self.op_bytes.get(name, 0) + nbytes


class Enclave:
    """A provisioned enclave instance.

    Parameters
    ----------
    code_identity:
        The code being measured (string or bytes); clients attest against it.
    field:
        Prime field for masking material.
    seed:
        Seed for the in-enclave RNG (coefficients + noise).
    epc:
        EPC model; defaults to the paper's 128 MB-generation limits.
    platform_key:
        The simulated CPU's fused secret (shared by sealing + quoting).
    """

    def __init__(
        self,
        code_identity: bytes | str = "darknight-enclave-v1",
        field: PrimeField | None = None,
        seed=None,
        epc: EpcModel | None = None,
        platform_key: bytes = b"repro-platform-fuse-key",
    ) -> None:
        self.field = field or PrimeField()
        self.measurement = measure_enclave(code_identity)
        self.epc = epc or EpcModel()
        self.ledger = EnclaveLedger()
        self.rng = FieldRng(self.field, seed)
        self._attestation = AttestationService(platform_key)
        self._sealer = Sealer(platform_key, self.measurement, self.rng.generator)
        self.untrusted_store = UntrustedStore()

    # ------------------------------------------------------------------
    # attestation
    # ------------------------------------------------------------------
    def quote(self, report_data: bytes = b"") -> Quote:
        """Produce an attestation quote for a client."""
        self.ledger.record_op("quote")
        return self._attestation.quote(self.measurement, report_data)

    def verify_peer_quote(self, quote: Quote, expected_measurement: bytes) -> bool:
        """Verify another enclave's quote (local attestation path)."""
        return self._attestation.verify(quote, expected_measurement)

    # ------------------------------------------------------------------
    # protected memory
    # ------------------------------------------------------------------
    @contextmanager
    def allocated(self, tag: str, nbytes: int):
        """Scope an EPC allocation to a ``with`` block."""
        self.epc.allocate(tag, nbytes)
        try:
            yield
        finally:
            self.epc.free(tag)

    def track_array(self, tag: str, array: np.ndarray) -> None:
        """Register an array as resident enclave state."""
        self.epc.allocate(tag, int(np.asarray(array).nbytes))

    def release(self, tag: str) -> None:
        """Release a tracked array."""
        self.epc.free(tag)

    # ------------------------------------------------------------------
    # boundary crossings
    # ------------------------------------------------------------------
    def ecall(self, name: str, nbytes_in: int = 0) -> None:
        """Record an enclave entry carrying ``nbytes_in`` of data."""
        self.ledger.ecalls += 1
        self.ledger.bytes_in += nbytes_in
        self.ledger.record_op(f"ecall:{name}", nbytes_in)

    def ocall(self, name: str, nbytes_out: int = 0) -> None:
        """Record an enclave exit carrying ``nbytes_out`` of data."""
        self.ledger.ocalls += 1
        self.ledger.bytes_out += nbytes_out
        self.ledger.record_op(f"ocall:{name}", nbytes_out)

    # ------------------------------------------------------------------
    # sealing / eviction (Algorithm 2 building blocks)
    # ------------------------------------------------------------------
    def seal_and_evict(self, key: str, array: np.ndarray, label: bytes = b"") -> SealedBlob:
        """Encrypt an array and push it to untrusted memory."""
        blob = self._sealer.seal(array, label)
        self.untrusted_store.evict(key, blob)
        self.ledger.sealed_bytes += blob.nbytes
        self.ledger.record_op("seal", blob.nbytes)
        self.ocall("evict", blob.nbytes)
        return blob

    def reload_and_unseal(self, key: str) -> np.ndarray:
        """Fetch a sealed blob back and decrypt it inside the enclave."""
        blob = self.untrusted_store.reload(key)
        self.ecall("reload", blob.nbytes)
        array = self._sealer.unseal(blob)
        self.ledger.unsealed_bytes += blob.nbytes
        self.ledger.record_op("unseal", blob.nbytes)
        return array

    def drop_evicted(self, key: str) -> None:
        """Discard an evicted blob that is no longer needed."""
        self.untrusted_store.drop(key)

    # ------------------------------------------------------------------
    # in-enclave compute accounting
    # ------------------------------------------------------------------
    def record_compute(self, op_name: str, nbytes: int) -> None:
        """Account a TEE-internal computation (encode/decode/non-linear)."""
        self.ledger.record_op(op_name, nbytes)

    def require_fits(self, nbytes: int, what: str) -> None:
        """Fail fast when a single object cannot even fit in usable EPC.

        Real SGX would thrash rather than fail; the simulator treats a
        single allocation larger than the whole EPC as a configuration
        error because the paper sizes virtual batches to avoid it.
        """
        if nbytes > self.epc.usable_bytes:
            raise EnclaveError(
                f"{what} needs {nbytes} bytes, exceeding usable EPC"
                f" ({self.epc.usable_bytes}); shrink the virtual batch"
            )
