"""Sealing: encrypt-and-authenticate enclave state for untrusted storage.

DarKnight's Algorithm 2 seals each virtual batch's weight-update shard
(``▽W_v``) and evicts it to untrusted DRAM, reloading and decrypting during
the final aggregation.  Sealing binds the blob to the enclave measurement so
a different (or tampered) enclave cannot unseal it — mirrored here by mixing
the measurement into the sealing key.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.enclave.crypto import (
    Ciphertext,
    StreamAead,
    array_to_bytes,
    bytes_to_array,
    derive_key,
)
from repro.errors import SealingError


@dataclass(frozen=True)
class SealedBlob:
    """An array sealed for untrusted storage."""

    ciphertext: Ciphertext
    dtype: str
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Wire/storage size of the sealed blob."""
        return self.ciphertext.nbytes


class Sealer:
    """Seals/unseals numpy arrays under a measurement-bound key.

    Parameters
    ----------
    root_key:
        The platform sealing secret (per-CPU fuse key in real SGX).
    measurement:
        The enclave identity the blobs are bound to (MRENCLAVE analogue).
    rng:
        Nonce source.
    """

    def __init__(
        self, root_key: bytes, measurement: bytes, rng: np.random.Generator | None = None
    ) -> None:
        key = derive_key(root_key, measurement, context=b"repro-seal")
        self._aead = StreamAead(key, rng)
        self.measurement = measurement

    def seal(self, array: np.ndarray, label: bytes = b"") -> SealedBlob:
        """Seal an array; ``label`` is bound as associated data."""
        data, meta = array_to_bytes(np.asarray(array))
        ct = self._aead.encrypt(data, aad=label)
        return SealedBlob(ciphertext=ct, dtype=meta["dtype"], shape=tuple(meta["shape"]))

    def unseal(self, blob: SealedBlob) -> np.ndarray:
        """Authenticate and decrypt a sealed array.

        Raises
        ------
        SealingError
            On tag mismatch (tampered blob or wrong enclave identity).
        """
        try:
            data = self._aead.decrypt(blob.ciphertext)
        except Exception as exc:
            raise SealingError("sealed blob failed authentication") from exc
        return bytes_to_array(data, {"dtype": blob.dtype, "shape": blob.shape})


class UntrustedStore:
    """Untrusted DRAM region holding sealed blobs (Algorithm 2's eviction).

    Byte counters feed the perf model's encryption/eviction cost; the
    adversary-visible surface is ciphertext only.
    """

    def __init__(self) -> None:
        self._blobs: dict[str, SealedBlob] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    def evict(self, key: str, blob: SealedBlob) -> None:
        """Store a sealed blob under ``key``."""
        self._blobs[key] = blob
        self.bytes_written += blob.nbytes

    def reload(self, key: str) -> SealedBlob:
        """Fetch a sealed blob back."""
        if key not in self._blobs:
            raise SealingError(f"no sealed blob under key {key!r}")
        blob = self._blobs[key]
        self.bytes_read += blob.nbytes
        return blob

    def drop(self, key: str) -> None:
        """Delete a blob (after aggregation consumed it)."""
        self._blobs.pop(key, None)

    def keys(self) -> list[str]:
        """Keys currently stored."""
        return list(self._blobs)

    def tamper(self, key: str, position: int = 0) -> None:
        """Adversarial helper: flip a ciphertext byte (tests the MAC)."""
        blob = self._blobs[key]
        data = bytearray(blob.ciphertext.data)
        data[position % len(data)] ^= 0xFF
        self._blobs[key] = SealedBlob(
            ciphertext=Ciphertext(
                nonce=blob.ciphertext.nonce,
                data=bytes(data),
                tag=blob.ciphertext.tag,
                aad=blob.ciphertext.aad,
            ),
            dtype=blob.dtype,
            shape=blob.shape,
        )
