"""Enclave Page Cache (EPC) memory model.

SGX gives enclaves ~128 MB of protected memory (~93 MB usable after SGX
metadata); touching more forces encrypted paging to untrusted DRAM, which is
the single effect behind several of the paper's results: the virtual-batch
size cap (Fig. 3 / Fig. 6b, "as the virtual batch size exceeds 4, the
execution time gets worse due to SGX memory overflow"), the multithreading
inversion (Fig. 7), and the baseline's slow non-linear ops (Table 1's 119×
ReLU gap comes from paging large feature maps).

This model is an *accounting* model: it tracks resident bytes against the
usable limit and accumulates paged-byte counters that
:mod:`repro.perf.costs` later converts into time.  Allocations beyond the
limit succeed (as on real SGX) — they just page.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.errors import EnclaveError

#: Hardware EPC size of the paper's SGX generation.
EPC_TOTAL_BYTES = 128 * 1024 * 1024
#: Usable after SGX structures (~93 MB, matching common measurements).
EPC_USABLE_BYTES = 93 * 1024 * 1024


@dataclass
class PagingStats:
    """Cumulative paging traffic (bytes cross the MEE boundary encrypted)."""

    paged_out_bytes: int = 0
    paged_in_bytes: int = 0
    page_faults: int = 0

    @property
    def total_paged_bytes(self) -> int:
        """All encrypted paging traffic, both directions."""
        return self.paged_out_bytes + self.paged_in_bytes


@dataclass
class EpcModel:
    """Byte-level EPC occupancy and paging accountant.

    Parameters
    ----------
    usable_bytes:
        Protected memory available to the enclave heap.
    """

    usable_bytes: int = EPC_USABLE_BYTES
    _allocations: dict = dataclass_field(default_factory=dict)
    stats: PagingStats = dataclass_field(default_factory=PagingStats)
    peak_bytes: int = 0

    def __post_init__(self) -> None:
        if self.usable_bytes <= 0:
            raise EnclaveError(f"usable EPC must be positive, got {self.usable_bytes}")

    # ------------------------------------------------------------------
    # allocation tracking
    # ------------------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        """Bytes currently allocated by the enclave."""
        return sum(self._allocations.values())

    @property
    def overflow_bytes(self) -> int:
        """Bytes beyond the usable EPC (these live paged-out, encrypted)."""
        return max(0, self.resident_bytes - self.usable_bytes)

    @property
    def is_overflowing(self) -> bool:
        """True when the working set no longer fits in protected memory."""
        return self.overflow_bytes > 0

    def allocate(self, tag: str, nbytes: int) -> None:
        """Track an allocation; overflowing charges page-out traffic."""
        if nbytes < 0:
            raise EnclaveError(f"allocation size must be >= 0, got {nbytes}")
        if tag in self._allocations:
            raise EnclaveError(f"allocation tag {tag!r} already in use")
        before_overflow = self.overflow_bytes
        self._allocations[tag] = nbytes
        self.peak_bytes = max(self.peak_bytes, self.resident_bytes)
        newly_paged = self.overflow_bytes - before_overflow
        if newly_paged > 0:
            self.stats.paged_out_bytes += newly_paged
            self.stats.page_faults += 1

    def free(self, tag: str) -> None:
        """Release a tracked allocation."""
        if tag not in self._allocations:
            raise EnclaveError(f"unknown allocation tag {tag!r}")
        del self._allocations[tag]

    def touch(self, tag: str) -> None:
        """Model an access: when overflowing, a share of the data pages back in.

        We charge the proportional slice of the allocation that statistically
        lives outside EPC under an LRU-ish occupancy assumption.
        """
        if tag not in self._allocations:
            raise EnclaveError(f"unknown allocation tag {tag!r}")
        if not self.is_overflowing:
            return
        nbytes = self._allocations[tag]
        fraction_out = self.overflow_bytes / max(1, self.resident_bytes)
        paged = int(nbytes * fraction_out)
        if paged > 0:
            self.stats.paged_in_bytes += paged
            self.stats.paged_out_bytes += paged  # something else gets evicted
            self.stats.page_faults += 1

    def reset_stats(self) -> None:
        """Zero the paging counters (allocations stay)."""
        self.stats = PagingStats()

    # ------------------------------------------------------------------
    # planning helpers (used by the perf model)
    # ------------------------------------------------------------------
    def working_set_paging_bytes(self, working_set_bytes: int, passes: int = 1) -> int:
        """Paging traffic for streaming a working set of the given size.

        Each pass over a working set larger than EPC forces the excess to
        round-trip through encrypted DRAM.
        """
        if working_set_bytes <= self.usable_bytes:
            return 0
        excess = working_set_bytes - self.usable_bytes
        return 2 * excess * max(1, passes)
