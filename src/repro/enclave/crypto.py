"""Toy authenticated encryption and key exchange for the SGX simulator.

**Not cryptographically secure.**  These are deterministic, dependency-free
stand-ins modelling the *interface and cost* of the primitives a real
enclave uses (AES-GCM page encryption, ECDH session keys): a BLAKE2b-keyed
stream cipher with a BLAKE2b MAC, and finite-field Diffie-Hellman over a
fixed 256-bit prime.  They let the simulator exercise the same control flow
— key derivation, nonce handling, tag verification failures — that the real
system depends on, with byte counts the performance model can charge.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import CommunicationError

#: secp256k1's base-field prime — just a convenient public 256-bit prime.
DH_PRIME = 2**256 - 2**32 - 977
DH_GENERATOR = 3

_BLOCK = 64  # BLAKE2b digest size, bytes per keystream block


def derive_key(*parts: bytes, context: bytes = b"repro-kdf") -> bytes:
    """Derive a 32-byte key from the concatenated parts (BLAKE2b KDF)."""
    h = hashlib.blake2b(person=context[:16], digest_size=32)
    for part in parts:
        h.update(len(part).to_bytes(8, "little"))
        h.update(part)
    return h.digest()


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Counter-mode keystream: BLAKE2b(key, nonce || counter) blocks."""
    blocks = []
    for counter in range((length + _BLOCK - 1) // _BLOCK):
        h = hashlib.blake2b(key=key, digest_size=_BLOCK)
        h.update(nonce)
        h.update(counter.to_bytes(8, "little"))
        blocks.append(h.digest())
    return b"".join(blocks)[:length]


def _mac(key: bytes, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
    h = hashlib.blake2b(key=key, digest_size=16, person=b"repro-mac")
    for part in (nonce, aad, ciphertext):
        h.update(len(part).to_bytes(8, "little"))
        h.update(part)
    return h.digest()


@dataclass(frozen=True)
class Ciphertext:
    """An encrypted, authenticated blob."""

    nonce: bytes
    data: bytes
    tag: bytes
    aad: bytes = b""

    @property
    def nbytes(self) -> int:
        """Wire size (what the link model charges)."""
        return len(self.nonce) + len(self.data) + len(self.tag) + len(self.aad)


class StreamAead:
    """Encrypt-then-MAC stream cipher with 12-byte random nonces."""

    NONCE_BYTES = 12

    def __init__(self, key: bytes, rng: np.random.Generator | None = None) -> None:
        if len(key) < 16:
            raise CommunicationError("key must be at least 16 bytes")
        self._key = key
        self._rng = rng or np.random.default_rng()

    def encrypt(self, plaintext: bytes, aad: bytes = b"") -> Ciphertext:
        """Encrypt and authenticate ``plaintext`` binding optional ``aad``."""
        nonce = self._rng.bytes(self.NONCE_BYTES)
        stream = _keystream(self._key, nonce, len(plaintext))
        data = bytes(a ^ b for a, b in zip(plaintext, stream))
        tag = _mac(self._key, nonce, aad, data)
        return Ciphertext(nonce=nonce, data=data, tag=tag, aad=aad)

    def decrypt(self, ct: Ciphertext) -> bytes:
        """Verify the tag and decrypt; raises on any tamper."""
        expected = _mac(self._key, ct.nonce, ct.aad, ct.data)
        if expected != ct.tag:
            raise CommunicationError("authentication tag mismatch (tampered blob)")
        stream = _keystream(self._key, ct.nonce, len(ct.data))
        return bytes(a ^ b for a, b in zip(ct.data, stream))


class DiffieHellman:
    """Finite-field DH over a fixed 256-bit prime (session-key agreement).

    Mirrors the paper's "pairwise secure channel between TEE and each GPU
    can be established using a secret key exchange protocol".
    """

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        rng = rng or np.random.default_rng()
        self._private = int.from_bytes(rng.bytes(32), "little") % (DH_PRIME - 2) + 1
        self.public = pow(DH_GENERATOR, self._private, DH_PRIME)

    def shared_key(self, peer_public: int) -> bytes:
        """Derive the 32-byte session key from the peer's public value."""
        if not 1 < peer_public < DH_PRIME:
            raise CommunicationError("invalid peer public value")
        secret = pow(peer_public, self._private, DH_PRIME)
        return derive_key(secret.to_bytes(32, "little"), context=b"repro-dh")


# ----------------------------------------------------------------------
# numpy array (de)serialisation helpers
# ----------------------------------------------------------------------


def array_to_bytes(arr: np.ndarray) -> tuple[bytes, dict]:
    """Serialise an array to raw bytes plus the metadata to rebuild it."""
    arr = np.ascontiguousarray(arr)
    meta = {"dtype": arr.dtype.str, "shape": arr.shape}
    return arr.tobytes(), meta


def bytes_to_array(data: bytes, meta: dict) -> np.ndarray:
    """Rebuild an array serialised by :func:`array_to_bytes`."""
    return np.frombuffer(data, dtype=np.dtype(meta["dtype"])).reshape(meta["shape"]).copy()
