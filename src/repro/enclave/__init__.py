"""SGX enclave simulator: EPC model, sealing, attestation, toy crypto."""

from repro.enclave.attestation import AttestationService, Quote, measure_enclave
from repro.enclave.crypto import (
    Ciphertext,
    DiffieHellman,
    StreamAead,
    array_to_bytes,
    bytes_to_array,
    derive_key,
)
from repro.enclave.enclave import Enclave, EnclaveLedger
from repro.enclave.epc import EPC_TOTAL_BYTES, EPC_USABLE_BYTES, EpcModel, PagingStats
from repro.enclave.sealing import SealedBlob, Sealer, UntrustedStore

__all__ = [
    "Enclave",
    "EnclaveLedger",
    "EpcModel",
    "PagingStats",
    "EPC_TOTAL_BYTES",
    "EPC_USABLE_BYTES",
    "Sealer",
    "SealedBlob",
    "UntrustedStore",
    "AttestationService",
    "Quote",
    "measure_enclave",
    "StreamAead",
    "Ciphertext",
    "DiffieHellman",
    "derive_key",
    "array_to_bytes",
    "bytes_to_array",
]
