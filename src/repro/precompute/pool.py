"""Bounded pools of pregenerated mask/noise tensors (the offline phase).

DarKnight's offline/online split generates enclave randomness ahead of
time so the online critical path is pure GEMMs.  The serving hot path
draws one noise tensor per encoded virtual batch; a
:class:`MaskStreamPool` pregenerates those tensors during enclave idle
gaps (the pipeline executor's ``stage_precompute`` op) and hands them
out in draw order.

Bit-identity is the load-bearing property: pooled and inline generation
must produce the *same* tensor for the same logical draw.  Sequential
enclave RNG cannot provide that (pooling reorders draws), so every
stream here is **counter-based**: draw number ``c`` of the stream keyed
by ``(feature_shape, K, M, p)`` is a pure function of
``(base_key, stream_id, c)`` via a dedicated Philox generator.  A pool
hit pops the pregenerated tensor for counter ``c``; a pool miss
generates the very same counter inline — identical bits, no double
draw, no deadlock, regardless of refill timing.
"""

from __future__ import annotations

import zlib
from collections import deque

import numpy as np

_MASK64 = (1 << 64) - 1
#: Domain-separation constant mixed into every Philox key so mask
#: streams can never collide with other derived randomness.
_DOMAIN_TAG = 0xDA2C_0DE5_0FF1_1E00

#: Pregenerated tensors kept per stream before refills stop.
DEFAULT_STREAM_CAPACITY = 32
#: Total bytes the pool may pin across all streams.
DEFAULT_POOL_BYTES = 1 << 24


class _MaskStream:
    """One counter-based stream: pregenerated counters ``[drawn, filled)``."""

    __slots__ = ("key", "stream_id", "shape", "nbytes", "drawn", "filled", "ready")

    def __init__(self, key: tuple, stream_id: int, shape: tuple[int, ...]) -> None:
        self.key = key
        self.stream_id = stream_id
        self.shape = shape
        self.nbytes = int(np.prod(shape, dtype=np.int64)) * 8
        self.drawn = 0
        self.filled = 0
        self.ready: deque[np.ndarray] = deque()


class MaskStreamPool:
    """Per-shard pool of mask/noise tensors keyed by ``(feature_shape, K, M, p)``."""

    def __init__(
        self,
        field,
        base_key: int,
        *,
        stream_capacity: int = DEFAULT_STREAM_CAPACITY,
        max_bytes: int = DEFAULT_POOL_BYTES,
    ) -> None:
        if stream_capacity < 1:
            raise ValueError("stream_capacity must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.field = field
        self.base_key = int(base_key) & _MASK64
        self.stream_capacity = int(stream_capacity)
        self.max_bytes = int(max_bytes)
        self._streams: dict[tuple, _MaskStream] = {}
        self.hits = 0
        self.misses = 0
        self.refills = 0
        self._pooled_bytes = 0
        self.peak_bytes = 0

    def _stream_for(self, feature_shape: tuple[int, ...], k: int, m: int) -> _MaskStream:
        key = (tuple(int(s) for s in feature_shape), int(k), int(m))
        stream = self._streams.get(key)
        if stream is None:
            # Stable id derived from the full (feature_shape, K, M, p) key
            # so streams are independent of registration order.
            text = repr((key, int(self.field.p))).encode("utf-8")
            stream_id = zlib.crc32(text) | (len(self._streams) << 32)
            stream = _MaskStream(key, stream_id, (key[2],) + key[0])
            self._streams[key] = stream
        return stream

    def _generate(self, stream: _MaskStream, counter: int) -> np.ndarray:
        """The tensor for draw ``counter`` — pure function of the key material.

        The logical draw counter sits in the *high* word of Philox's
        256-bit block counter; generation advances the low words, so
        distinct draws can never overlap block ranges.
        """
        bit_gen = np.random.Philox(
            key=[self.base_key ^ _DOMAIN_TAG, stream.stream_id & _MASK64],
            counter=[0, 0, 0, counter & _MASK64],
        )
        return self.field.uniform(stream.shape, np.random.Generator(bit_gen))

    def draw(self, feature_shape: tuple[int, ...], k: int, m: int) -> tuple[np.ndarray, bool]:
        """The next noise tensor for this key; ``(tensor, was_pooled)``.

        Hit or miss yields bit-identical tensors: a miss generates the
        same counter the refill would have filled.
        """
        stream = self._stream_for(feature_shape, k, m)
        if stream.ready:
            noise = stream.ready.popleft()
            stream.drawn += 1
            self._pooled_bytes -= stream.nbytes
            self.hits += 1
            return noise, True
        noise = self._generate(stream, stream.drawn)
        stream.drawn += 1
        stream.filled = stream.drawn
        self.misses += 1
        return noise, False

    def _next_refill(self) -> _MaskStream | None:
        for stream in self._streams.values():
            if len(stream.ready) >= self.stream_capacity:
                continue
            if self._pooled_bytes + stream.nbytes > self.max_bytes:
                continue
            return stream
        return None

    def pending_bytes(self) -> int:
        """Bytes of the next refill unit, or 0 when the pool is saturated."""
        stream = self._next_refill()
        return 0 if stream is None else stream.nbytes

    def refill_one(self) -> int:
        """Pregenerate one tensor; returns its byte size (0 if saturated)."""
        stream = self._next_refill()
        if stream is None:
            return 0
        stream.ready.append(self._generate(stream, stream.filled))
        stream.filled += 1
        self._pooled_bytes += stream.nbytes
        self.peak_bytes = max(self.peak_bytes, self._pooled_bytes)
        self.refills += 1
        return stream.nbytes

    @property
    def pooled_bytes(self) -> int:
        return self._pooled_bytes

    @property
    def hit_rate(self) -> float | None:
        """Pool hit rate, or ``None`` before the first draw (strict-JSON)."""
        draws = self.hits + self.misses
        return None if draws == 0 else self.hits / draws

    @property
    def occupancy(self) -> float | None:
        """Filled fraction of pool capacity, ``None`` with no streams yet."""
        if not self._streams:
            return None
        held = sum(len(s.ready) for s in self._streams.values())
        return held / (self.stream_capacity * len(self._streams))

    def snapshot(self) -> dict:
        """Strict-JSON-safe pool telemetry (no ``inf``/``NaN``)."""
        return {
            "streams": len(self._streams),
            "hits": self.hits,
            "misses": self.misses,
            "refills": self.refills,
            "hit_rate": self.hit_rate,
            "occupancy": self.occupancy,
            "pooled_bytes": self._pooled_bytes,
            "pooled_bytes_peak": self.peak_bytes,
        }
