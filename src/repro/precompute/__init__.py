"""Offline precompute: mask streams, weight-encoding reuse, scratch buffers.

The offline/online split from the paper — enclave randomness and static
encodings are produced ahead of the serving critical path, which then
runs nothing but GEMMs.  Three cooperating pieces:

- :class:`MaskStreamPool` — counter-based pregenerated noise tensors,
  bit-identical between pooled and inline generation (``pool``).
- A static weight-encoding cache lives on ``DarKnightBackend`` and is
  invalidated through ``invalidate_precompute()`` on membership change.
- :class:`ScratchPool` — per-shape reusable buffers for the encode/
  decode/limb-GEMM hot path (``scratch``).
"""

from repro.precompute.pool import (
    DEFAULT_POOL_BYTES,
    DEFAULT_STREAM_CAPACITY,
    MaskStreamPool,
)
from repro.precompute.scratch import (
    MAX_SCRATCH_ENTRIES,
    ScratchPool,
    active_scratch,
    enable_scratch,
    scratch_enabled,
)

__all__ = [
    "DEFAULT_POOL_BYTES",
    "DEFAULT_STREAM_CAPACITY",
    "MaskStreamPool",
    "MAX_SCRATCH_ENTRIES",
    "ScratchPool",
    "active_scratch",
    "enable_scratch",
    "scratch_enabled",
]
