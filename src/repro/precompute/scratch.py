"""Per-shape scratch buffers for the steady-state masking hot path.

Every flush window re-runs the same encode/decode GEMMs on the same
shapes, yet each call allocates fresh float64 limb planes, GEMM outputs,
and gather/concat staging — allocator traffic that is pure overhead once
shapes stabilise.  A :class:`ScratchPool` keeps exactly one buffer per
``(tag, shape, dtype)`` and hands it back on every request, so the limb
kernels' ``out=`` GEMM variants and the encoder/decoder staging steps
write into recycled memory instead.

Safety contract: a scratch buffer may only hold values *within* one
kernel invocation — nothing returned to a caller may alias pool memory
(the limb path's final ``astype(np.int64)`` copy is the escape hatch).
Reuse is therefore value-transparent: enabling the pool cannot change a
single output bit, only where intermediates briefly live.

The pool is process-global and off by default; the DarKnight backend
enables it when ``precompute`` mode is on.  This module imports nothing
from the rest of the package so the lowest layers (``fieldmath.kernels``)
can use it without cycles.
"""

from __future__ import annotations

import numpy as np

#: Distinct (tag, shape, dtype) buffers kept before the pool resets —
#: shape churn past this means the workload is not steady-state and
#: caching would only pin dead memory.
MAX_SCRATCH_ENTRIES = 64


class ScratchPool:
    """One reusable buffer per ``(tag, shape, dtype)`` request site."""

    def __init__(self, max_entries: int = MAX_SCRATCH_ENTRIES) -> None:
        self.max_entries = max_entries
        self._buffers: dict[tuple, np.ndarray] = {}
        self.reuses = 0
        self.allocations = 0

    def get(self, tag: str, shape: tuple, dtype) -> np.ndarray:
        """A buffer of the requested geometry (contents undefined)."""
        key = (tag, tuple(int(s) for s in shape), np.dtype(dtype).str)
        buf = self._buffers.get(key)
        if buf is None:
            if len(self._buffers) >= self.max_entries:
                self._buffers.clear()
            buf = np.empty(key[1], dtype=dtype)
            self._buffers[key] = buf
            self.allocations += 1
        else:
            self.reuses += 1
        return buf

    def cast(self, tag: str, array: np.ndarray, dtype) -> np.ndarray:
        """``array`` copied into a pooled buffer of ``dtype`` (same shape)."""
        buf = self.get(tag, array.shape, dtype)
        np.copyto(buf, array, casting="unsafe")
        return buf

    def clear(self) -> None:
        """Release every pooled buffer."""
        self._buffers.clear()

    @property
    def pooled_bytes(self) -> int:
        """Bytes currently pinned by pooled buffers."""
        return sum(int(buf.nbytes) for buf in self._buffers.values())

    def snapshot(self) -> dict:
        """Strict-JSON-safe pool telemetry."""
        return {
            "entries": len(self._buffers),
            "bytes": self.pooled_bytes,
            "reuses": self.reuses,
            "allocations": self.allocations,
        }


_POOL = ScratchPool()
_ENABLED = False


def enable_scratch(on: bool = True) -> bool:
    """Turn the global pool on/off; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(on)
    if not _ENABLED:
        _POOL.clear()
    return previous


def scratch_enabled() -> bool:
    """Whether hot paths should route intermediates through the pool."""
    return _ENABLED


def active_scratch() -> ScratchPool | None:
    """The global pool when enabled, else ``None`` (callers allocate)."""
    return _POOL if _ENABLED else None
