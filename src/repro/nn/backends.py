"""The linear-operation seam between layers and execution substrates.

DarKnight's whole design is a statement about *where* each operator runs:
bilinear ops (conv/dense forward, weight gradients) go to untrusted GPUs on
masked data, ``δ``-propagation goes to GPUs unmasked, everything non-linear
stays in the TEE.  Layers therefore never call numpy directly for these ops —
they call a :class:`LinearBackend`, and swapping the backend swaps the
execution model without touching model code:

* :class:`PlainBackend` — float numpy, used for raw training and as the
  numerical reference;
* :class:`repro.runtime.darknight.DarKnightBackend` — the masked TEE+GPU
  path;
* :class:`repro.slalom.runtime.SlalomBackend` — additive-blinding inference.

The ``key`` argument identifies the layer invocation so stateful backends
can pair a forward encoding with its backward reuse (Section 6's "Encoded
Data Storage During Forward Pass").
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.nn import functional as F


class LinearBackend(Protocol):
    """What a layer needs from its execution substrate."""

    def conv2d_forward(
        self, x: np.ndarray, w: np.ndarray, b: np.ndarray | None,
        stride: int, pad: int, key: str,
    ) -> np.ndarray:
        """Batched convolution ``(N,C,H,W) -> (N,F,OH,OW)`` plus bias."""
        ...

    def conv2d_grad_w(
        self, x: np.ndarray, delta: np.ndarray, kh: int, kw: int,
        stride: int, pad: int, key: str,
    ) -> np.ndarray:
        """Batch-aggregated conv weight gradient ``Σ_i <δ(i), x(i)>``."""
        ...

    def conv2d_grad_x(
        self, w: np.ndarray, delta: np.ndarray, x_shape: tuple,
        stride: int, pad: int, key: str,
    ) -> np.ndarray:
        """Input gradient (unmasked offload: carries no private data)."""
        ...

    def dense_forward(
        self, x: np.ndarray, w: np.ndarray, b: np.ndarray | None, key: str
    ) -> np.ndarray:
        """Batched dense layer ``(N, in) @ (in, out) + b``."""
        ...

    def dense_grad_w(self, x: np.ndarray, delta: np.ndarray, key: str) -> np.ndarray:
        """Batch-aggregated dense weight gradient ``x^T @ δ``."""
        ...

    def dense_grad_x(self, w: np.ndarray, delta: np.ndarray, key: str) -> np.ndarray:
        """Input gradient ``δ @ w^T``."""
        ...

    def end_batch(self) -> None:
        """Forget per-batch state (stored encodings); call between steps."""
        ...


class StagedLinearBackend(LinearBackend, Protocol):
    """A backend whose forward linear ops are explicitly schedulable.

    The blocking :class:`LinearBackend` calls hide DarKnight's three-phase
    structure; a staged backend exposes each phase as a first-class op so a
    pipeline scheduler (:class:`repro.pipeline.PipelineExecutor`) can
    interleave them across virtual batches — encode batch ``n+1`` in the
    enclave while batch ``n``'s shares run on the GPUs.  The blocking calls
    remain available and MUST be bit-identical to driving the stages
    back-to-back (``pipeline_depth=1``).

    The ``vb``/ticket/future types are duck-typed here to keep the layer
    package free of pipeline imports; the canonical implementations live in
    :mod:`repro.pipeline.stages`.
    """

    def stage_linear(
        self, kind: str, w: np.ndarray, b: np.ndarray | None, key: str,
        stride: int = 1, pad: int = 0,
    ):
        """Per-layer preparation: quantize + broadcast weights, pick kernel."""
        ...

    def encode(self, op, vb, vb_index: int):
        """Mask one virtual batch and scatter shares; returns a ticket."""
        ...

    def dispatch(self, ticket):
        """Run the bilinear kernel per share; returns a GPU future."""
        ...

    def decode(self, future) -> np.ndarray:
        """Gather/verify/unmask a completed future; real rows only."""
        ...


class PlainBackend:
    """Reference float backend: everything runs locally in float64."""

    def conv2d_forward(self, x, w, b, stride, pad, key):
        out = F.conv2d_via_matmul(x, w, np.matmul, stride, pad)
        if b is not None:
            out = out + b.reshape(1, -1, 1, 1)
        return out

    def conv2d_grad_w(self, x, delta, kh, kw, stride, pad, key):
        return F.conv2d_grad_w(x, delta, kh, kw, np.matmul, stride, pad)

    def conv2d_grad_x(self, w, delta, x_shape, stride, pad, key):
        return F.conv2d_grad_x(w, delta, x_shape, np.matmul, stride, pad)

    def dense_forward(self, x, w, b, key):
        out = x @ w
        if b is not None:
            out = out + b
        return out

    def dense_grad_w(self, x, delta, key):
        return x.T @ delta

    def dense_grad_x(self, w, delta, key):
        return delta @ w.T

    def end_batch(self) -> None:
        """Stateless backend: nothing to clear."""
