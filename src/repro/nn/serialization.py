"""Model checkpointing: save/load parameters and BN running statistics.

A downstream user training privately for hours needs checkpoints; this
serialises everything a :class:`~repro.nn.network.Sequential` needs to
resume — trainable parameters plus BatchNorm running statistics — into a
single ``.npz`` archive keyed consistently with ``state_dict``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers import BatchNorm2D
from repro.nn.network import Sequential

_RUNNING_PREFIX = "__running__/"


def _running_stats(network: Sequential) -> dict[str, np.ndarray]:
    stats = {}
    for layer in network._walk_layers():
        if isinstance(layer, BatchNorm2D):
            stats[f"{_RUNNING_PREFIX}{layer.name}/mean"] = layer.running_mean
            stats[f"{_RUNNING_PREFIX}{layer.name}/var"] = layer.running_var
    return stats


def save_checkpoint(network: Sequential, path: str | Path) -> Path:
    """Write parameters + BN statistics to ``path`` (``.npz`` appended if absent)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    payload = dict(network.state_dict())
    payload.update({k: v.copy() for k, v in _running_stats(network).items()})
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)
    return path


def load_checkpoint(network: Sequential, path: str | Path) -> None:
    """Restore a checkpoint written by :func:`save_checkpoint`.

    Raises
    ------
    ConfigurationError
        On missing file, missing keys, or shape mismatches — a checkpoint
        from a different architecture must fail loudly, not silently skip.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"checkpoint {path} does not exist")
    with np.load(path) as archive:
        stored = {key: archive[key] for key in archive.files}
    params = {k: v for k, v in stored.items() if not k.startswith(_RUNNING_PREFIX)}
    network.load_state_dict(params)
    running = _running_stats(network)
    for key, target in running.items():
        if key not in stored:
            raise ConfigurationError(f"checkpoint missing BN statistics {key!r}")
        if stored[key].shape != target.shape:
            raise ConfigurationError(
                f"BN statistics {key!r} shape {stored[key].shape} !="
                f" {target.shape}"
            )
        target[...] = stored[key]
