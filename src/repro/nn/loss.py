"""Loss functions (softmax cross-entropy is all the paper's models need)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn import functional as F


class SoftmaxCrossEntropy:
    """Softmax + NLL with the fused, numerically-stable gradient."""

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy of integer ``labels`` under ``logits``."""
        labels = np.asarray(labels)
        if logits.shape[0] != labels.shape[0]:
            raise ConfigurationError(
                f"batch mismatch: {logits.shape[0]} logits vs {labels.shape[0]} labels"
            )
        if labels.min() < 0 or labels.max() >= logits.shape[1]:
            raise ConfigurationError("label out of range")
        probs = F.softmax(logits)
        self._probs, self._labels = probs, labels
        return F.cross_entropy(probs, labels)

    def backward(self) -> np.ndarray:
        """Gradient w.r.t. logits: ``(softmax - onehot) / N``."""
        if self._probs is None or self._labels is None:
            raise ConfigurationError("backward before forward")
        n = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._labels] -= 1.0
        return grad / n

    @staticmethod
    def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy."""
        return float(np.mean(np.argmax(logits, axis=1) == np.asarray(labels)))
