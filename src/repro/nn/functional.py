"""Dtype-agnostic tensor kernels shared by the float and field paths.

Every linear operator DarKnight offloads (conv, dense, and their gradients)
is expressed here through an injected ``matmul`` callable so the exact same
shape logic backs:

* the float reference path (``np.matmul``) used by plain training and the
  SGX-only baseline, and
* the field path (:func:`repro.fieldmath.field_matmul`) executed by the
  simulated GPUs on masked shares.

Layout conventions: activations are ``(N, C, H, W)``, conv weights are
``(F, C, KH, KW)``, dense weights are ``(in_features, out_features)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

# ----------------------------------------------------------------------
# im2col / col2im
# ----------------------------------------------------------------------


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one axis."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out < 1:
        raise ConfigurationError(
            f"convolution collapses: input {size}, kernel {kernel}, stride"
            f" {stride}, pad {pad}"
        )
    return out


def im2col(x: np.ndarray, kh: int, kw: int, stride: int = 1, pad: int = 0) -> np.ndarray:
    """Unfold ``(N, C, H, W)`` into ``(N, C*KH*KW, OH*OW)`` patches.

    Preserves dtype, so it serves int64 field tensors and float tensors
    alike.  Padding uses zeros, which is the field's zero too.
    """
    n, c, h, w = x.shape
    oh = conv_output_size(h, kh, stride, pad)
    ow = conv_output_size(w, kw, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, oh, ow),
        strides=(
            strides[0],
            strides[1],
            strides[2],
            strides[3],
            strides[2] * stride,
            strides[3] * stride,
        ),
        writeable=False,
    )
    return windows.reshape(n, c * kh * kw, oh * ow)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Fold ``(N, C*KH*KW, OH*OW)`` patches back, summing overlaps.

    The adjoint of :func:`im2col`; used for input gradients.
    """
    n, c, h, w = x_shape
    oh = conv_output_size(h, kh, stride, pad)
    ow = conv_output_size(w, kw, stride, pad)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    reshaped = cols.reshape(n, c, kh, kw, oh, ow)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            padded[:, :, i:i_max:stride, j:j_max:stride] += reshaped[:, :, i, j]
    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


# ----------------------------------------------------------------------
# convolution through an injected matmul
# ----------------------------------------------------------------------


def conv2d_via_matmul(x, w, matmul, stride: int = 1, pad: int = 0) -> np.ndarray:
    """Forward convolution: ``(N,C,H,W) * (F,C,KH,KW) -> (N,F,OH,OW)``.

    The whole batch runs as *one* stacked GEMM: the per-sample patch
    matrices are laid side by side into ``(C*KH*KW, N*OH*OW)`` so the
    injected ``matmul`` (float BLAS or the field's limb kernels) sees a
    single large product instead of ``N`` small ones.  Each output element
    is the same patch-dot-filter contraction as the per-sample form.
    """
    n = x.shape[0]
    f, c, kh, kw = w.shape
    if x.shape[1] != c:
        raise ConfigurationError(f"channel mismatch: input {x.shape[1]}, weight {c}")
    oh = conv_output_size(x.shape[2], kh, stride, pad)
    ow = conv_output_size(x.shape[3], kw, stride, pad)
    cols = im2col(x, kh, kw, stride, pad)  # (N, C*KH*KW, OH*OW)
    w_flat = w.reshape(f, c * kh * kw)
    stacked = cols.transpose(1, 0, 2).reshape(c * kh * kw, n * oh * ow)
    out = matmul(w_flat, stacked)  # (F, N*OH*OW)
    return np.ascontiguousarray(out.reshape(f, n, oh, ow).transpose(1, 0, 2, 3))


def conv2d_grad_w(
    x, grad_out, kh: int, kw: int, matmul, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """Weight gradient ``(F, C, KH, KW)`` of conv2d, summed over the batch.

    Batched: the per-sample ``g @ cols[i].T`` products *and* the batch sum
    collapse into one ``(F, N*Q) @ (N*Q, P)`` GEMM — the contraction axis
    runs over samples and positions at once.  Over the field this is
    bit-identical (exact integer arithmetic is order-independent); on
    floats it only reorders the accumulation.
    """
    n, c = x.shape[0], x.shape[1]
    f = grad_out.shape[1]
    cols = im2col(x, kh, kw, stride, pad)  # (N, C*KH*KW, OH*OW)
    g = grad_out.reshape(n, f, -1).transpose(1, 0, 2).reshape(f, -1)  # (F, N*Q)
    stacked = cols.transpose(0, 2, 1).reshape(-1, c * kh * kw)  # (N*Q, C*KH*KW)
    total = matmul(g, stacked)  # (F, C*KH*KW), summed over batch and positions
    return total.reshape(f, c, kh, kw)


def conv2d_grad_x(
    w, grad_out, x_shape, matmul, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """Input gradient of conv2d: ``W^T``-correlation of the output gradient.

    Batched like the forward pass: one ``(P, F) @ (F, N*Q)`` GEMM produces
    every sample's patch gradients, which ``col2im`` scatters back.
    """
    n = grad_out.shape[0]
    f, c, kh, kw = w.shape
    w_flat = w.reshape(f, c * kh * kw)
    g = grad_out.reshape(n, f, -1).transpose(1, 0, 2).reshape(f, -1)  # (F, N*Q)
    cols = matmul(w_flat.T, g)  # (C*KH*KW, N*Q)
    cols = cols.reshape(c * kh * kw, n, -1).transpose(1, 0, 2)  # (N, C*KH*KW, Q)
    return col2im(np.ascontiguousarray(cols), x_shape, kh, kw, stride, pad)


def depthwise_conv2d(x, w, stride: int = 1, pad: int = 0) -> np.ndarray:
    """Depthwise convolution: ``(N,C,H,W) * (C,KH,KW) -> (N,C,OH,OW)``.

    Float-only (MobileNet's depthwise stage); kernel fan-in ``KH*KW`` is tiny
    so einsum accumulation is numerically trivial.
    """
    n, c, h, w_in = x.shape
    cw, kh, kw = w.shape
    if cw != c:
        raise ConfigurationError(f"depthwise channel mismatch: {c} vs {cw}")
    oh = conv_output_size(h, kh, stride, pad)
    ow = conv_output_size(w_in, kw, stride, pad)
    cols = im2col(x, kh, kw, stride, pad).reshape(n, c, kh * kw, oh * ow)
    out = np.einsum("nckp,ck->ncp", cols, w.reshape(c, kh * kw))
    return out.reshape(n, c, oh, ow)


def depthwise_conv2d_grad_w(x, grad_out, kh: int, kw: int, stride: int = 1, pad: int = 0):
    """Weight gradient ``(C, KH, KW)`` of depthwise conv, summed over batch."""
    n, c = x.shape[:2]
    cols = im2col(x, kh, kw, stride, pad).reshape(n, c, kh * kw, -1)
    g = grad_out.reshape(n, c, 1, -1)
    return np.einsum("nckp,ncjp->ck", cols, g).reshape(c, kh, kw)


def depthwise_conv2d_grad_x(w, grad_out, x_shape, stride: int = 1, pad: int = 0):
    """Input gradient of depthwise conv."""
    n = grad_out.shape[0]
    c, kh, kw = w.shape
    g = grad_out.reshape(n, c, 1, -1)
    cols = np.einsum("ck,ncjp->nckp", w.reshape(c, kh * kw), g)
    cols = cols.reshape(n, c * kh * kw, -1)
    return col2im(cols, x_shape, kh, kw, stride, pad)


# ----------------------------------------------------------------------
# non-linear operators (enclave-side in DarKnight)
# ----------------------------------------------------------------------


def relu(x: np.ndarray) -> np.ndarray:
    """Element-wise max(0, x)."""
    return np.maximum(x, 0)


def relu_grad(x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
    """Gradient of ReLU given the pre-activation input."""
    return grad_out * (x > 0)


def maxpool2d(x: np.ndarray, size: int = 2, stride: int | None = None):
    """Max pooling; returns ``(output, argmax_indices)`` for the backward pass."""
    stride = size if stride is None else stride
    n, c, h, w = x.shape
    oh = conv_output_size(h, size, stride, 0)
    ow = conv_output_size(w, size, stride, 0)
    cols = im2col(x.reshape(n * c, 1, h, w), size, size, stride, 0)
    cols = cols.reshape(n * c, size * size, oh * ow)
    arg = np.argmax(cols, axis=1)
    out = np.take_along_axis(cols, arg[:, None, :], axis=1)[:, 0, :]
    return out.reshape(n, c, oh, ow), arg.reshape(n, c, oh * ow)


def maxpool2d_grad(
    grad_out: np.ndarray,
    argmax: np.ndarray,
    x_shape,
    size: int = 2,
    stride: int | None = None,
) -> np.ndarray:
    """Scatter pooled gradients back to the argmax positions."""
    stride = size if stride is None else stride
    n, c, h, w = x_shape
    oh, ow = grad_out.shape[2], grad_out.shape[3]
    cols = np.zeros((n * c, size * size, oh * ow), dtype=grad_out.dtype)
    flat_grad = grad_out.reshape(n * c, 1, oh * ow)
    np.put_along_axis(cols, argmax.reshape(n * c, 1, oh * ow), flat_grad, axis=1)
    return col2im(
        cols.reshape(n * c, 1 * size * size, oh * ow),
        (n * c, 1, h, w),
        size,
        size,
        stride,
        0,
    ).reshape(n, c, h, w)


def avgpool2d(x: np.ndarray, size: int = 2, stride: int | None = None) -> np.ndarray:
    """Average pooling."""
    stride = size if stride is None else stride
    n, c, h, w = x.shape
    oh = conv_output_size(h, size, stride, 0)
    ow = conv_output_size(w, size, stride, 0)
    cols = im2col(x.reshape(n * c, 1, h, w), size, size, stride, 0)
    out = cols.reshape(n * c, size * size, oh * ow).mean(axis=1)
    return out.reshape(n, c, oh, ow)


def avgpool2d_grad(grad_out, x_shape, size: int = 2, stride: int | None = None):
    """Gradient of average pooling (uniform scatter)."""
    stride = size if stride is None else stride
    n, c, h, w = x_shape
    oh, ow = grad_out.shape[2], grad_out.shape[3]
    cols = np.repeat(
        grad_out.reshape(n * c, 1, oh * ow) / (size * size), size * size, axis=1
    )
    return col2im(
        cols, (n * c, 1, h, w), size, size, stride, 0
    ).reshape(n, c, h, w)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-shift stabilisation."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy(probs: np.ndarray, labels: np.ndarray, eps: float = 1e-12) -> float:
    """Mean negative log-likelihood of integer ``labels`` under ``probs``."""
    n = probs.shape[0]
    picked = probs[np.arange(n), labels]
    return float(-np.mean(np.log(picked + eps)))
