"""Weight initialisers for the numpy DNN substrate."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def he_normal(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal init — the right scale for ReLU stacks."""
    if fan_in < 1:
        raise ConfigurationError(f"fan_in must be >= 1, got {fan_in}")
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot uniform init — used for the final classifier layer."""
    if fan_in < 1 or fan_out < 1:
        raise ConfigurationError(f"fans must be >= 1, got ({fan_in}, {fan_out})")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """Zero init (biases, BN shifts)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """One init (BN scales)."""
    return np.ones(shape, dtype=np.float64)
