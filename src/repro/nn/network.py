"""Sequential network container with backend-parameterised execution."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.backends import LinearBackend, PlainBackend
from repro.nn.layers import BranchJoin, Conv2D, Dense, Layer, ResidualBlock

#: Dependency index denoting the network's input batch.
PLAN_INPUT = -1


@dataclass(frozen=True)
class PlanStep:
    """One step of a network's execution plan.

    ``offloaded`` marks layers whose bilinear op goes through the backend
    seam — exactly the steps a staged backend can split into
    encode/dispatch/decode and overlap across virtual batches.  All other
    steps are TEE-resident and run as one local enclave task.

    ``depends_on`` holds the plan indices whose outputs feed this step
    (:data:`PLAN_INPUT` denotes the network input), making the plan an
    explicit DAG: a flattened ``ResidualBlock`` emits its body chain, its
    shortcut chain branching from the block entry, and a two-input
    :class:`~repro.nn.layers.BranchJoin` closing both.  ``None`` means the
    conventional linear edge (the previous step) — resolved by
    :attr:`deps`.
    """

    index: int
    layer: Layer
    offloaded: bool
    depends_on: tuple[int, ...] | None = None

    @property
    def name(self) -> str:
        """The layer's identity (also its backend key)."""
        return self.layer.name

    @property
    def deps(self) -> tuple[int, ...]:
        """Resolved dependency indices (linear edge when unspecified)."""
        if self.depends_on is not None:
            return self.depends_on
        return (self.index - 1,) if self.index > 0 else (PLAN_INPUT,)


class Sequential:
    """A stack of layers sharing one linear backend per call.

    Parameters
    ----------
    layers:
        Layers applied in order.
    input_shape:
        Per-sample input shape, e.g. ``(3, 32, 32)``; used to validate the
        stack eagerly so shape bugs surface at construction.
    """

    def __init__(self, layers: list[Layer], input_shape: tuple[int, ...]) -> None:
        if not layers:
            raise ConfigurationError("network needs at least one layer")
        self.layers = layers
        self.input_shape = tuple(input_shape)
        self._plan_cache: list[PlanStep] | None = None
        shape = self.input_shape
        self._shapes = [shape]
        for layer in layers:
            shape = layer.output_shape(shape)
            self._shapes.append(shape)

    @property
    def output_shape(self) -> tuple[int, ...]:
        """Per-sample output shape."""
        return self._shapes[-1]

    @property
    def layer_shapes(self) -> list[tuple[int, ...]]:
        """Per-sample shape before each layer (and after the last)."""
        return list(self._shapes)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execution_plan(self) -> list[PlanStep]:
        """The layer walk as explicit, schedulable DAG steps.

        Backend-driven execution iterates this plan instead of an inline
        loop: :meth:`forward` replays every step in index order (a valid
        topological order — dependencies always point backwards), while
        :class:`repro.pipeline.PipelineExecutor` interleaves the offloaded
        steps' stages across in-flight virtual batches.

        Composite :class:`~repro.nn.layers.ResidualBlock` layers are
        *flattened*: the body chain, then the shortcut chain branching
        from the block's entry value, then a two-input
        :class:`~repro.nn.layers.BranchJoin` computing
        ``relu(body + shortcut)``.  Inner convolutions therefore become
        first-class offloaded steps (they pipeline and partition below
        block granularity), and the skip connection is an explicit
        ``depends_on`` edge a layer partitioner can cut across.  Replaying
        the flattened plan is bit-identical to the block's own ``forward``
        — same ops, same order.
        """
        if getattr(self, "_plan_cache", None) is None:
            steps: list[PlanStep] = []

            def emit(layer: Layer, deps: tuple[int, ...]) -> int:
                steps.append(
                    PlanStep(
                        index=len(steps),
                        layer=layer,
                        offloaded=isinstance(layer, (Conv2D, Dense)),
                        depends_on=deps,
                    )
                )
                return len(steps) - 1

            prev = PLAN_INPUT
            for layer in self.layers:
                if isinstance(layer, ResidualBlock):
                    entry = prev
                    cur = entry
                    for sub in layer.body:
                        cur = emit(sub, (cur,))
                    body_out = cur
                    cur = entry
                    for sub in layer.shortcut:
                        cur = emit(sub, (cur,))
                    prev = emit(layer.join_layer, (body_out, cur))
                else:
                    prev = emit(layer, (prev,))
            self._plan_cache = steps
        return list(self._plan_cache)

    def plan_shapes(self) -> list[tuple[int, ...]]:
        """Per-sample output shape of every flattened plan step.

        Walks the DAG with symbolic shapes (``output_shape``), so cost
        models and layer partitioners can price each step — including the
        steps inside a flattened ``ResidualBlock`` — without running data.
        """
        plan = self.execution_plan()
        shapes: dict[int, tuple[int, ...]] = {PLAN_INPUT: self.input_shape}
        for step in plan:
            shapes[step.index] = step.layer.output_shape(shapes[step.deps[0]])
        return [shapes[step.index] for step in plan]

    def forward(
        self,
        x: np.ndarray,
        backend: LinearBackend | None = None,
        training: bool = True,
    ) -> np.ndarray:
        """Run the network synchronously; ``backend`` defaults to plain float."""
        backend = backend or PlainBackend()
        if tuple(x.shape[1:]) != self.input_shape:
            raise ConfigurationError(
                f"input shape {tuple(x.shape[1:])} != expected {self.input_shape}"
            )
        plan = self.execution_plan()
        last_use: dict[int, int] = {}
        for step in plan:
            for dep in step.deps:
                last_use[dep] = step.index
        values: dict[int, np.ndarray] = {PLAN_INPUT: x}
        for step in plan:
            if isinstance(step.layer, BranchJoin):
                a, b = (values[d] for d in step.deps)
                values[step.index] = step.layer.join(a, b, training)
            else:
                values[step.index] = step.layer.forward(
                    values[step.deps[0]], backend, training
                )
            for dep in step.deps:
                if last_use.get(dep) == step.index:
                    values.pop(dep, None)
        return values[plan[-1].index]

    def backward(self, grad_out: np.ndarray, backend: LinearBackend | None = None):
        """Back-propagate, filling every layer's ``grads``."""
        backend = backend or PlainBackend()
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad, backend)
        return grad

    def predict(self, x: np.ndarray, backend: LinearBackend | None = None) -> np.ndarray:
        """Inference-mode forward (no caches, BN uses running stats)."""
        return self.forward(x, backend, training=False)

    # ------------------------------------------------------------------
    # parameters
    # ------------------------------------------------------------------
    def _walk_layers(self) -> Iterator[Layer]:
        stack = list(self.layers)
        while stack:
            layer = stack.pop(0)
            yield layer
            if isinstance(layer, ResidualBlock):
                stack = list(layer._walk()) + stack

    def parameters(self) -> Iterator[tuple[Layer, str, np.ndarray]]:
        """Yield ``(layer, param_name, array)`` for every trainable tensor."""
        for layer in self._walk_layers():
            for name, param in layer.params.items():
                yield layer, name, param

    @property
    def n_params(self) -> int:
        """Total trainable scalars."""
        return sum(p.size for _, _, p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameters keyed ``layer_name/param_name``."""
        return {
            f"{layer.name}/{name}": param.copy()
            for layer, name, param in self.parameters()
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_dict`."""
        for layer, name, param in self.parameters():
            key = f"{layer.name}/{name}"
            if key not in state:
                raise ConfigurationError(f"missing parameter {key!r} in state dict")
            if state[key].shape != param.shape:
                raise ConfigurationError(
                    f"shape mismatch for {key!r}: {state[key].shape} vs {param.shape}"
                )
            param[...] = state[key]
