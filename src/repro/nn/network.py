"""Sequential network container with backend-parameterised execution."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.backends import LinearBackend, PlainBackend
from repro.nn.layers import Conv2D, Dense, Layer, ResidualBlock


@dataclass(frozen=True)
class PlanStep:
    """One step of a network's execution plan.

    ``offloaded`` marks layers whose bilinear op goes through the backend
    seam — exactly the steps a staged backend can split into
    encode/dispatch/decode and overlap across virtual batches.  All other
    steps are TEE-resident and run as one local enclave task.
    """

    index: int
    layer: Layer
    offloaded: bool

    @property
    def name(self) -> str:
        """The layer's identity (also its backend key)."""
        return self.layer.name


class Sequential:
    """A stack of layers sharing one linear backend per call.

    Parameters
    ----------
    layers:
        Layers applied in order.
    input_shape:
        Per-sample input shape, e.g. ``(3, 32, 32)``; used to validate the
        stack eagerly so shape bugs surface at construction.
    """

    def __init__(self, layers: list[Layer], input_shape: tuple[int, ...]) -> None:
        if not layers:
            raise ConfigurationError("network needs at least one layer")
        self.layers = layers
        self.input_shape = tuple(input_shape)
        shape = self.input_shape
        self._shapes = [shape]
        for layer in layers:
            shape = layer.output_shape(shape)
            self._shapes.append(shape)

    @property
    def output_shape(self) -> tuple[int, ...]:
        """Per-sample output shape."""
        return self._shapes[-1]

    @property
    def layer_shapes(self) -> list[tuple[int, ...]]:
        """Per-sample shape before each layer (and after the last)."""
        return list(self._shapes)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execution_plan(self) -> list[PlanStep]:
        """The layer walk as explicit, schedulable steps.

        Backend-driven execution iterates this plan instead of an inline
        loop: :meth:`forward` drives every step to completion in order,
        while :class:`repro.pipeline.PipelineExecutor` interleaves the
        offloaded steps' stages across in-flight virtual batches.

        Composite layers (:class:`~repro.nn.layers.ResidualBlock`) appear
        as single non-offloaded steps: their inner convolutions still
        offload through the blocking backend path, so such models pipeline
        at block granularity only (finer-grained plans are a scheduler
        follow-on, not a numerics change).
        """
        return [
            PlanStep(index=i, layer=layer, offloaded=isinstance(layer, (Conv2D, Dense)))
            for i, layer in enumerate(self.layers)
        ]

    def forward(
        self,
        x: np.ndarray,
        backend: LinearBackend | None = None,
        training: bool = True,
    ) -> np.ndarray:
        """Run the network synchronously; ``backend`` defaults to plain float."""
        backend = backend or PlainBackend()
        if tuple(x.shape[1:]) != self.input_shape:
            raise ConfigurationError(
                f"input shape {tuple(x.shape[1:])} != expected {self.input_shape}"
            )
        out = x
        for step in self.execution_plan():
            out = step.layer.forward(out, backend, training)
        return out

    def backward(self, grad_out: np.ndarray, backend: LinearBackend | None = None):
        """Back-propagate, filling every layer's ``grads``."""
        backend = backend or PlainBackend()
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad, backend)
        return grad

    def predict(self, x: np.ndarray, backend: LinearBackend | None = None) -> np.ndarray:
        """Inference-mode forward (no caches, BN uses running stats)."""
        return self.forward(x, backend, training=False)

    # ------------------------------------------------------------------
    # parameters
    # ------------------------------------------------------------------
    def _walk_layers(self) -> Iterator[Layer]:
        stack = list(self.layers)
        while stack:
            layer = stack.pop(0)
            yield layer
            if isinstance(layer, ResidualBlock):
                stack = list(layer._walk()) + stack

    def parameters(self) -> Iterator[tuple[Layer, str, np.ndarray]]:
        """Yield ``(layer, param_name, array)`` for every trainable tensor."""
        for layer in self._walk_layers():
            for name, param in layer.params.items():
                yield layer, name, param

    @property
    def n_params(self) -> int:
        """Total trainable scalars."""
        return sum(p.size for _, _, p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameters keyed ``layer_name/param_name``."""
        return {
            f"{layer.name}/{name}": param.copy()
            for layer, name, param in self.parameters()
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_dict`."""
        for layer, name, param in self.parameters():
            key = f"{layer.name}/{name}"
            if key not in state:
                raise ConfigurationError(f"missing parameter {key!r} in state dict")
            if state[key].shape != param.shape:
                raise ConfigurationError(
                    f"shape mismatch for {key!r}: {state[key].shape} vs {param.shape}"
                )
            param[...] = state[key]
