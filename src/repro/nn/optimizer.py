"""Optimisers: plain/momentum SGD, matching the paper's training recipe."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.network import Sequential


class SGD:
    """Stochastic gradient descent with optional momentum and weight decay.

    The paper trains with "the well known SGD process" (Section 4); we add
    the standard momentum/decay knobs every practical run uses.
    """

    def __init__(
        self,
        network: Sequential,
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ConfigurationError(f"weight decay cannot be negative, got {weight_decay}")
        self.network = network
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one update from the gradients stored in the layers."""
        for layer, name, param in self.network.parameters():
            if name not in layer.grads:
                continue
            grad = layer.grads[name]
            if self.weight_decay:
                grad = grad + self.weight_decay * param
            if self.momentum:
                key = id(param)
                vel = self._velocity.get(key)
                vel = self.momentum * vel + grad if vel is not None else grad
                self._velocity[key] = vel
                grad = vel
            param -= self.lr * grad

    def zero_grad(self) -> None:
        """Clear all stored gradients."""
        for layer, name, _ in self.network.parameters():
            layer.grads.pop(name, None)


class StepDecaySchedule:
    """Multiply the learning rate by ``factor`` every ``every`` epochs."""

    def __init__(self, optimizer: SGD, every: int, factor: float = 0.5) -> None:
        if every < 1:
            raise ConfigurationError(f"'every' must be >= 1, got {every}")
        if not 0 < factor <= 1:
            raise ConfigurationError(f"factor must be in (0, 1], got {factor}")
        self.optimizer = optimizer
        self.every = every
        self.factor = factor
        self._epochs_seen = 0

    def epoch_end(self) -> None:
        """Advance one epoch, decaying when due."""
        self._epochs_seen += 1
        if self._epochs_seen % self.every == 0:
            self.optimizer.lr *= self.factor
