"""Neural-network layers over the pluggable linear backend.

Linear layers (:class:`Conv2D`, :class:`Dense`) route their bilinear ops
through the backend — that's the DarKnight offload seam.  Non-linear layers
(:class:`ReLU`, :class:`MaxPool2D`, :class:`BatchNorm2D`, ...) always compute
locally: in the real system they run inside the TEE.

Every layer follows the same contract: ``forward`` caches whatever its
``backward`` needs, ``backward`` fills ``self.grads`` for parameters and
returns the gradient with respect to its input.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn import functional as F
from repro.nn.backends import LinearBackend
from repro.nn.initializers import he_normal, xavier_uniform, zeros

_LAYER_COUNTER: dict[str, int] = {}


def _auto_name(kind: str) -> str:
    _LAYER_COUNTER[kind] = _LAYER_COUNTER.get(kind, 0) + 1
    return f"{kind}_{_LAYER_COUNTER[kind]}"


class Layer:
    """Base layer: parameter/grad dicts plus the forward/backward contract."""

    def __init__(self, name: str | None = None) -> None:
        self.name = name or _auto_name(type(self).__name__.lower())
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, backend: LinearBackend, training: bool = True):
        """Compute the layer output (caching backward state)."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray, backend: LinearBackend) -> np.ndarray:
        """Fill ``self.grads`` and return the input gradient."""
        raise NotImplementedError

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Per-sample output shape for a per-sample input shape."""
        raise NotImplementedError

    @property
    def n_params(self) -> int:
        """Total trainable scalars in this layer."""
        return sum(int(p.size) for p in self.params.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"


class Conv2D(Layer):
    """2-D convolution, bilinear ops delegated to the backend."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        pad: int = 1,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if min(in_channels, out_channels, kernel_size, stride) < 1 or pad < 0:
            raise ConfigurationError("invalid Conv2D geometry")
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.pad = pad
        fan_in = in_channels * kernel_size * kernel_size
        self.params["w"] = he_normal(
            (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng
        )
        if bias:
            self.params["b"] = zeros((out_channels,))
        self._x: np.ndarray | None = None

    def forward(self, x, backend, training=True):
        self._x = x if training else None
        return backend.conv2d_forward(
            x,
            self.params["w"],
            self.params.get("b"),
            self.stride,
            self.pad,
            key=self.name,
        )

    def backward(self, grad_out, backend):
        x = self._x
        if x is None:
            raise ConfigurationError(f"{self.name}: backward before training forward")
        k = self.kernel_size
        self.grads["w"] = backend.conv2d_grad_w(
            x, grad_out, k, k, self.stride, self.pad, key=self.name
        )
        if "b" in self.params:
            self.grads["b"] = grad_out.sum(axis=(0, 2, 3))
        return backend.conv2d_grad_x(
            self.params["w"], grad_out, x.shape, self.stride, self.pad, key=self.name
        )

    def output_shape(self, input_shape):
        c, h, w = input_shape
        if c != self.in_channels:
            raise ConfigurationError(
                f"{self.name}: expected {self.in_channels} channels, got {c}"
            )
        oh = F.conv_output_size(h, self.kernel_size, self.stride, self.pad)
        ow = F.conv_output_size(w, self.kernel_size, self.stride, self.pad)
        return (self.out_channels, oh, ow)


class DepthwiseConv2D(Layer):
    """Depthwise convolution (MobileNet's cheap spatial stage).

    Stays float-local: its fan-in is ``KH*KW`` (tiny), so the paper's
    MobileNet results treat it as part of the reduced linear workload.
    """

    def __init__(
        self,
        channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        pad: int = 1,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if min(channels, kernel_size, stride) < 1 or pad < 0:
            raise ConfigurationError("invalid DepthwiseConv2D geometry")
        rng = rng or np.random.default_rng()
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.pad = pad
        self.params["w"] = he_normal(
            (channels, kernel_size, kernel_size), kernel_size * kernel_size, rng
        )
        self._x: np.ndarray | None = None

    def forward(self, x, backend, training=True):
        self._x = x if training else None
        return F.depthwise_conv2d(x, self.params["w"], self.stride, self.pad)

    def backward(self, grad_out, backend):
        x = self._x
        if x is None:
            raise ConfigurationError(f"{self.name}: backward before training forward")
        k = self.kernel_size
        self.grads["w"] = F.depthwise_conv2d_grad_w(x, grad_out, k, k, self.stride, self.pad)
        return F.depthwise_conv2d_grad_x(
            self.params["w"], grad_out, x.shape, self.stride, self.pad
        )

    def output_shape(self, input_shape):
        c, h, w = input_shape
        if c != self.channels:
            raise ConfigurationError(
                f"{self.name}: expected {self.channels} channels, got {c}"
            )
        oh = F.conv_output_size(h, self.kernel_size, self.stride, self.pad)
        ow = F.conv_output_size(w, self.kernel_size, self.stride, self.pad)
        return (c, oh, ow)


class Dense(Layer):
    """Fully-connected layer over the backend seam."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if min(in_features, out_features) < 1:
            raise ConfigurationError("invalid Dense geometry")
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.params["w"] = xavier_uniform(
            (in_features, out_features), in_features, out_features, rng
        )
        if bias:
            self.params["b"] = zeros((out_features,))
        self._x: np.ndarray | None = None

    def forward(self, x, backend, training=True):
        self._x = x if training else None
        return backend.dense_forward(x, self.params["w"], self.params.get("b"), key=self.name)

    def backward(self, grad_out, backend):
        x = self._x
        if x is None:
            raise ConfigurationError(f"{self.name}: backward before training forward")
        self.grads["w"] = backend.dense_grad_w(x, grad_out, key=self.name)
        if "b" in self.params:
            self.grads["b"] = grad_out.sum(axis=0)
        return backend.dense_grad_x(self.params["w"], grad_out, key=self.name)

    def output_shape(self, input_shape):
        if len(input_shape) != 1:
            raise ConfigurationError(
                f"{self.name}: expected flat input, got shape {input_shape};"
                " add a Flatten layer first"
            )
        (features,) = input_shape
        if features != self.in_features:
            raise ConfigurationError(
                f"{self.name}: expected {self.in_features} features, got {features}"
            )
        return (self.out_features,)


class ReLU(Layer):
    """Rectifier — a TEE-resident non-linear op in DarKnight."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._x: np.ndarray | None = None

    def forward(self, x, backend, training=True):
        self._x = x if training else None
        return F.relu(x)

    def backward(self, grad_out, backend):
        if self._x is None:
            raise ConfigurationError(f"{self.name}: backward before training forward")
        return F.relu_grad(self._x, grad_out)

    def output_shape(self, input_shape):
        return input_shape


class MaxPool2D(Layer):
    """Max pooling — TEE-resident."""

    def __init__(self, size: int = 2, stride: int | None = None, name: str | None = None):
        super().__init__(name)
        if size < 1:
            raise ConfigurationError(f"pool size must be >= 1, got {size}")
        self.size = size
        self.stride = stride or size
        self._argmax = None
        self._x_shape = None

    def forward(self, x, backend, training=True):
        out, argmax = F.maxpool2d(x, self.size, self.stride)
        if training:
            self._argmax, self._x_shape = argmax, x.shape
        return out

    def backward(self, grad_out, backend):
        if self._argmax is None:
            raise ConfigurationError(f"{self.name}: backward before training forward")
        return F.maxpool2d_grad(grad_out, self._argmax, self._x_shape, self.size, self.stride)

    def output_shape(self, input_shape):
        c, h, w = input_shape
        oh = F.conv_output_size(h, self.size, self.stride, 0)
        ow = F.conv_output_size(w, self.size, self.stride, 0)
        return (c, oh, ow)


class AvgPool2D(Layer):
    """Average pooling — TEE-resident."""

    def __init__(self, size: int = 2, stride: int | None = None, name: str | None = None):
        super().__init__(name)
        if size < 1:
            raise ConfigurationError(f"pool size must be >= 1, got {size}")
        self.size = size
        self.stride = stride or size
        self._x_shape = None

    def forward(self, x, backend, training=True):
        if training:
            self._x_shape = x.shape
        return F.avgpool2d(x, self.size, self.stride)

    def backward(self, grad_out, backend):
        if self._x_shape is None:
            raise ConfigurationError(f"{self.name}: backward before training forward")
        return F.avgpool2d_grad(grad_out, self._x_shape, self.size, self.stride)

    def output_shape(self, input_shape):
        c, h, w = input_shape
        oh = F.conv_output_size(h, self.size, self.stride, 0)
        ow = F.conv_output_size(w, self.size, self.stride, 0)
        return (c, oh, ow)


class GlobalAvgPool(Layer):
    """Spatial mean over each channel — TEE-resident."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._x_shape = None

    def forward(self, x, backend, training=True):
        if training:
            self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out, backend):
        if self._x_shape is None:
            raise ConfigurationError(f"{self.name}: backward before training forward")
        n, c, h, w = self._x_shape
        return np.broadcast_to(
            grad_out.reshape(n, c, 1, 1) / (h * w), self._x_shape
        ).copy()

    def output_shape(self, input_shape):
        c, _, _ = input_shape
        return (c,)


class Flatten(Layer):
    """Reshape ``(N, C, H, W)`` to ``(N, C*H*W)``."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._x_shape = None

    def forward(self, x, backend, training=True):
        if training:
            self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out, backend):
        if self._x_shape is None:
            raise ConfigurationError(f"{self.name}: backward before training forward")
        return grad_out.reshape(self._x_shape)

    def output_shape(self, input_shape):
        return (int(np.prod(input_shape)),)


class BatchNorm2D(Layer):
    """Per-channel batch normalisation — the compute-heavy TEE op.

    The paper singles BN out as the non-linear operation that keeps
    ResNet/MobileNet from enjoying VGG-sized speedups (Table 3), because it
    must run inside the enclave.
    """

    def __init__(
        self,
        channels: int,
        momentum: float = 0.9,
        eps: float = 1e-5,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if channels < 1:
            raise ConfigurationError(f"channels must be >= 1, got {channels}")
        if not 0.0 < momentum < 1.0:
            raise ConfigurationError(f"momentum must be in (0, 1), got {momentum}")
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.params["gamma"] = np.ones((channels,))
        self.params["beta"] = np.zeros((channels,))
        self.running_mean = np.zeros((channels,))
        self.running_var = np.ones((channels,))
        self._cache = None

    def forward(self, x, backend, training=True):
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
        std = np.sqrt(var + self.eps)
        x_hat = (x - mean.reshape(1, -1, 1, 1)) / std.reshape(1, -1, 1, 1)
        if training:
            self._cache = (x_hat, std)
        return self.params["gamma"].reshape(1, -1, 1, 1) * x_hat + self.params[
            "beta"
        ].reshape(1, -1, 1, 1)

    def backward(self, grad_out, backend):
        if self._cache is None:
            raise ConfigurationError(f"{self.name}: backward before training forward")
        x_hat, std = self._cache
        n = grad_out.shape[0] * grad_out.shape[2] * grad_out.shape[3]
        self.grads["gamma"] = (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.grads["beta"] = grad_out.sum(axis=(0, 2, 3))
        gamma = self.params["gamma"].reshape(1, -1, 1, 1)
        grad_xhat = grad_out * gamma
        mean_grad = grad_xhat.mean(axis=(0, 2, 3), keepdims=True)
        mean_grad_xhat = (grad_xhat * x_hat).mean(axis=(0, 2, 3), keepdims=True)
        del n
        return (grad_xhat - mean_grad - x_hat * mean_grad_xhat) / std.reshape(1, -1, 1, 1)

    def output_shape(self, input_shape):
        c = input_shape[0]
        if c != self.channels:
            raise ConfigurationError(
                f"{self.name}: expected {self.channels} channels, got {c}"
            )
        return input_shape


class ResidualBlock(Layer):
    """``relu(body(x) + shortcut(x))`` — the ResNet family's building block.

    ``shortcut`` defaults to identity; pass a projection (1x1 conv + BN)
    when the body changes shape.
    """

    def __init__(
        self,
        body: list[Layer],
        shortcut: list[Layer] | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if not body:
            raise ConfigurationError("residual body cannot be empty")
        self.body = body
        self.shortcut = shortcut or []
        self._pre_relu: np.ndarray | None = None

    def forward(self, x, backend, training=True):
        out = x
        for layer in self.body:
            out = layer.forward(out, backend, training)
        skip = x
        for layer in self.shortcut:
            skip = layer.forward(skip, backend, training)
        if out.shape != skip.shape:
            raise ConfigurationError(
                f"{self.name}: body {out.shape} and shortcut {skip.shape} disagree"
            )
        pre = out + skip
        if training:
            self._pre_relu = pre
        return F.relu(pre)

    def backward(self, grad_out, backend):
        if self._pre_relu is None:
            raise ConfigurationError(f"{self.name}: backward before training forward")
        grad = F.relu_grad(self._pre_relu, grad_out)
        grad_body = grad
        for layer in reversed(self.body):
            grad_body = layer.backward(grad_body, backend)
        grad_skip = grad
        for layer in reversed(self.shortcut):
            grad_skip = layer.backward(grad_skip, backend)
        return grad_body + grad_skip

    def output_shape(self, input_shape):
        shape = input_shape
        for layer in self.body:
            shape = layer.output_shape(shape)
        skip_shape = input_shape
        for layer in self.shortcut:
            skip_shape = layer.output_shape(skip_shape)
        if shape != skip_shape:
            raise ConfigurationError(
                f"{self.name}: body {shape} and shortcut {skip_shape} disagree"
            )
        return shape

    def _walk(self):
        yield from self.body
        yield from self.shortcut

    @property
    def n_params(self) -> int:
        return sum(layer.n_params for layer in self._walk())

    @property
    def join_layer(self) -> "BranchJoin":
        """The block's DAG join step, created once so its name is stable."""
        if getattr(self, "_join_layer", None) is None:
            self._join_layer = BranchJoin(self)
        return self._join_layer


class BranchJoin(Layer):
    """Explicit DAG join closing a :class:`ResidualBlock`'s two branches.

    A flattened execution plan replaces the block's implicit
    ``relu(body(x) + shortcut(x))`` with body steps, shortcut steps, and
    this two-input step computing ``relu(a + b)`` — the skip connection
    becomes an explicit edge (``PlanStep.depends_on``) a scheduler or a
    layer partitioner can cut across.  The join writes the pre-activation
    back onto its parent block so the block's unflattened ``backward``
    keeps working after a training forward replayed through the plan.
    """

    def __init__(self, block: ResidualBlock, name: str | None = None) -> None:
        super().__init__(name or f"{block.name}/join")
        self.block = block

    def join(self, body_out, skip, training: bool = False):
        """``relu(body_out + skip)`` — the block's merge, bit-identical."""
        if body_out.shape != skip.shape:
            raise ConfigurationError(
                f"{self.name}: body {body_out.shape} and shortcut"
                f" {skip.shape} disagree"
            )
        pre = body_out + skip
        if training:
            self.block._pre_relu = pre
        return F.relu(pre)

    def forward(self, x, backend, training=True):
        raise ConfigurationError(
            f"{self.name}: BranchJoin takes two inputs; drive it via join()"
            " from a DAG plan replay"
        )

    def backward(self, grad_out, backend):
        raise ConfigurationError(
            f"{self.name}: backward runs through the owning ResidualBlock"
        )

    def output_shape(self, input_shape):
        return input_shape
