"""From-scratch numpy DNN substrate with a pluggable linear backend."""

from repro.nn import functional
from repro.nn.backends import LinearBackend, PlainBackend
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm2D,
    BranchJoin,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Flatten,
    GlobalAvgPool,
    Layer,
    MaxPool2D,
    ReLU,
    ResidualBlock,
)
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.network import PLAN_INPUT, PlanStep, Sequential
from repro.nn.optimizer import SGD, StepDecaySchedule
from repro.nn.serialization import load_checkpoint, save_checkpoint

__all__ = [
    "functional",
    "LinearBackend",
    "PlainBackend",
    "Layer",
    "Conv2D",
    "DepthwiseConv2D",
    "Dense",
    "ReLU",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool",
    "Flatten",
    "BatchNorm2D",
    "ResidualBlock",
    "BranchJoin",
    "PlanStep",
    "PLAN_INPUT",
    "Sequential",
    "SoftmaxCrossEntropy",
    "SGD",
    "StepDecaySchedule",
    "save_checkpoint",
    "load_checkpoint",
]
