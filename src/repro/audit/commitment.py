"""Per-window commitments: canonical digests of what the server served.

A :class:`WindowCommitment` is built once per dispatched flush window and
freezes three facts per request into one Merkle leaf:

* the request's **input** exactly as admitted (the decrypted sample the
  enclave masked), stored canonically so a disputed window can be
  re-executed from the log alone;
* the window's **integrity posture** (was Freivalds-style redundant-share
  verification on, and did the window pass or abort);
* the **decoded-output digest** — the logits the tenant was sent.

Digests must be platform-stable: the same served trace has to commit to
the same bytes on any host, or an auditor's recomputation would "detect
tampering" that is really an endianness or dtype quirk.  Canonical array
serialization therefore widens every array to a fixed-width little-endian
dtype (``<f8`` for floats, ``<i8`` for integers — both exact for the
fixed-point field values and the float64 logits this stack produces),
prefixes the dtype/shape header, and hashes the C-order bytes.  JSON
payloads are canonicalized with sorted keys and no whitespace.
"""

from __future__ import annotations

import base64
import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro.audit.merkle import MerkleTree, leaf_digest
from repro.errors import AuditError

#: Leaf status marking requests whose shared window aborted and was
#: re-dispatched — their terminal leaf lives in a later window.
STATUS_RETRIED = "retried"

#: Window-status prefix marking a membership-change event (provision /
#: drain / retire) committed as a first-class chained entry on the
#: affected shard's log.
MEMBERSHIP_STATUS_PREFIX = "membership:"

#: The membership-event kinds the chain accepts.
MEMBERSHIP_KINDS = ("provision", "drain", "retire")


# ----------------------------------------------------------------------
# canonical serialization
# ----------------------------------------------------------------------
def _widen(arr: np.ndarray) -> np.ndarray:
    """Widen to the canonical platform-stable dtype (<f8 or <i8)."""
    a = np.asarray(arr)
    if a.dtype.kind == "f":
        return a.astype("<f8")
    if a.dtype.kind in "iub":
        return a.astype("<i8")
    raise AuditError(f"cannot canonically serialize dtype {a.dtype}")


#: Digest-header cache: every request in a deployment shares one input
#: shape (and outputs one logits width), so the header is almost always
#: a dictionary hit on the serving hot path.
_HEADER_CACHE: dict[tuple, bytes] = {}


def _header_bytes(a: np.ndarray) -> bytes:
    """The digest header: canonical JSON of ``{"dtype", "shape"}``.

    Built by hand (dtype strings and shapes are plain ASCII) so the
    per-array digest skips a ``json.dumps`` on the serving hot path; the
    format is byte-identical to ``canonical_json_bytes`` of the dict.
    """
    key = (a.dtype.str, a.shape)
    header = _HEADER_CACHE.get(key)
    if header is None:
        shape = ",".join(str(int(s)) for s in a.shape)
        header = f'{{"dtype":"{a.dtype.str}","shape":[{shape}]}}'.encode("ascii")
        if len(_HEADER_CACHE) < 1024:
            _HEADER_CACHE[key] = header
    return header


def canonical_array(arr: np.ndarray) -> dict:
    """Serialize an array as a platform-stable JSON-safe record."""
    a = _widen(arr)
    return {
        "dtype": a.dtype.str,
        "shape": [int(s) for s in a.shape],
        "data": base64.b64encode(a.tobytes(order="C")).decode("ascii"),
    }


def array_from_canonical(record: dict) -> np.ndarray:
    """Reconstruct the exact array a :func:`canonical_array` record froze."""
    raw = base64.b64decode(record["data"])
    return np.frombuffer(raw, dtype=np.dtype(record["dtype"])).reshape(
        tuple(record["shape"])
    )


def canonical_json_bytes(obj) -> bytes:
    """Canonical JSON encoding: sorted keys, no whitespace, ASCII only."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def digest_json(obj) -> str:
    """SHA-256 of an object's canonical JSON encoding, as hex."""
    return hashlib.sha256(canonical_json_bytes(obj)).hexdigest()


def array_digest(arr: np.ndarray) -> str:
    """Platform-stable digest of an array (header + canonical bytes)."""
    a = _widen(arr)
    raw = a.tobytes(order="C")
    return hashlib.sha256(_header_bytes(a) + b"\x00" + raw).hexdigest()


def _canonical_with_digest(arr: np.ndarray) -> tuple[dict, str]:
    """One-pass :func:`canonical_array` + :func:`array_digest`.

    The commit hot path needs both; widening and ``tobytes`` happen once
    here instead of twice.
    """
    a = _widen(arr)
    raw = a.tobytes(order="C")
    record = {
        "dtype": a.dtype.str,
        "shape": [int(s) for s in a.shape],
        "data": base64.b64encode(raw).decode("ascii"),
    }
    digest = hashlib.sha256(_header_bytes(a) + b"\x00" + raw).hexdigest()
    return record, digest


#: JSON-escaped string cache (tenant names and status identifiers recur
#: on every leaf of a serving run).
_STR_CACHE: dict[str, bytes] = {}


def _json_str(s: str) -> bytes:
    blob = _STR_CACHE.get(s)
    if blob is None:
        blob = json.dumps(s, ensure_ascii=True).encode("ascii")
        if len(_STR_CACHE) < 4096:
            _STR_CACHE[s] = blob
    return blob


def _leaf_blob(leaf: dict) -> bytes:
    """Canonical bytes of one leaf, spliced by hand.

    Byte-identical to :func:`canonical_json_bytes` of the dict (keys in
    sorted order, compact separators; ``repr`` of a finite float is
    exactly json's float format) — asserted against the generic encoder
    in the test suite.  The splice exists because the generic encoder is
    the single largest cost of committing a window on the serving path.
    """
    record = leaf["input"]
    output_digest = leaf["output_digest"]
    return b"".join(
        (
            b'{"arrival_time":', repr(leaf["arrival_time"]).encode("ascii"),
            b',"batch_id":', str(leaf["batch_id"]).encode("ascii"),
            b',"input":{"data":"', record["data"].encode("ascii"),
            b'","dtype":"', record["dtype"].encode("ascii"),
            b'","shape":[', ",".join(map(str, record["shape"])).encode("ascii"),
            b']},"input_digest":"', leaf["input_digest"].encode("ascii"),
            b'","output_digest":',
            b"null" if output_digest is None else b'"%s"' % output_digest.encode("ascii"),
            b',"request_id":', str(leaf["request_id"]).encode("ascii"),
            b',"retries":', str(leaf["retries"]).encode("ascii"),
            b',"status":', _json_str(leaf["status"]),
            b',"tenant":', _json_str(leaf["tenant"]),
            b"}",
        )
    )


# ----------------------------------------------------------------------
# the per-window commitment
# ----------------------------------------------------------------------
@dataclass
class WindowCommitment:
    """Everything one flush window commits to the audit log.

    ``leaves`` are the per-request records (canonical dicts) in dispatch
    order; ``merkle_root`` is the tree over their canonical digests.  The
    window's *metadata* — ids, timing, integrity posture, abort/retry
    marks, the effective-config digest — is chained separately by the
    log, so tampering with either the leaves or the meta breaks
    verification.  ``window_id`` is assigned by the log at append time
    (it is a position in the shard's chain, not a property of the window
    itself).
    """

    shard_id: int
    batch_ids: list[int]
    flush_time: float
    status: str
    leaves: list[dict] = field(default_factory=list)
    aborted: bool = False
    retries: int = 0
    integrity_enabled: bool = False
    error: str | None = None
    config_digest: str | None = None
    seed: int | None = None
    window_id: int | None = None
    #: Canonical bytes per leaf, precomputed by :meth:`build` so the log
    #: digests and persists each leaf without re-encoding it.  Derived
    #: from ``leaves`` — stale if they are mutated afterwards.  Empty on
    #: hand-constructed commitments; consumers fall back to the generic
    #: encoder.
    leaf_blobs: list[bytes] = field(default_factory=list, repr=False, compare=False)

    @classmethod
    def build(
        cls,
        shard_id: int,
        batches: list,
        outputs_by_batch: list,
        status: str,
        aborted: bool = False,
        error: str | None = None,
        integrity_enabled: bool = False,
        config_digest: str | None = None,
        seed: int | None = None,
    ) -> "WindowCommitment":
        """Commit one dispatched window.

        ``outputs_by_batch`` carries, per scheduled batch, the decoded
        logits array (rows aligned with ``batch.requests``) — or ``None``
        for a window that aborted before decoding, whose leaves then
        commit inputs only.
        """
        if len(batches) != len(outputs_by_batch):
            raise AuditError(
                f"window commit needs one output group per batch:"
                f" {len(batches)} batches, {len(outputs_by_batch)} groups"
            )
        leaves: list[dict] = []
        blobs: list[bytes] = []
        for batch, rows in zip(batches, outputs_by_batch):
            if rows is not None and len(rows) != len(batch.requests):
                raise AuditError(
                    f"batch {batch.batch_id}: {len(rows)} output rows for"
                    f" {len(batch.requests)} requests"
                )
            for i, request in enumerate(batch.requests):
                record, input_digest = _canonical_with_digest(request.x)
                leaf = {
                    "request_id": int(request.request_id),
                    "tenant": request.tenant,
                    "batch_id": int(batch.batch_id),
                    "arrival_time": float(request.arrival_time),
                    "status": status,
                    "retries": int(batch.retries),
                    "input": record,
                    "input_digest": input_digest,
                    "output_digest": (
                        array_digest(rows[i]) if rows is not None else None
                    ),
                }
                leaves.append(leaf)
                blobs.append(_leaf_blob(leaf))
        return cls(
            shard_id=shard_id,
            batch_ids=[int(b.batch_id) for b in batches],
            flush_time=min((float(b.flush_time) for b in batches), default=0.0),
            status=status,
            leaves=leaves,
            aborted=aborted,
            retries=max((int(b.retries) for b in batches), default=0),
            integrity_enabled=integrity_enabled,
            error=error,
            config_digest=config_digest,
            seed=seed,
            leaf_blobs=blobs,
        )

    @classmethod
    def build_membership(
        cls,
        shard_id: int,
        kind: str,
        time: float,
        details: dict | None = None,
        config_digest: str | None = None,
        seed: int | None = None,
    ) -> "WindowCommitment":
        """Commit one membership-change event to a shard's chain.

        Elastic membership is audit-visible: a shard that joins
        (``provision``), winds down (``drain``), or leaves (``retire``)
        the deployment gets a first-class chained entry on its *own* log
        with status ``membership:<kind>`` and a single event leaf, so an
        auditor walking the chain sees exactly when the shard served —
        and an operator cannot silently splice a shard's service life out
        of the record.
        """
        if kind not in MEMBERSHIP_KINDS:
            raise AuditError(
                f"unknown membership event kind {kind!r}"
                f" (expected one of {list(MEMBERSHIP_KINDS)})"
            )
        leaf = {
            "event": kind,
            "shard_id": int(shard_id),
            "time": float(time),
            "status": MEMBERSHIP_STATUS_PREFIX + kind,
            "details": dict(details or {}),
        }
        return cls(
            shard_id=int(shard_id),
            batch_ids=[],
            flush_time=float(time),
            status=MEMBERSHIP_STATUS_PREFIX + kind,
            leaves=[leaf],
            config_digest=config_digest,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # digests
    # ------------------------------------------------------------------
    def canonical_leaf_blobs(self) -> list[bytes]:
        """Canonical bytes per leaf (precomputed by :meth:`build`)."""
        if len(self.leaf_blobs) == len(self.leaves):
            return self.leaf_blobs
        return [canonical_json_bytes(leaf) for leaf in self.leaves]

    @property
    def leaf_digests(self) -> list[str]:
        """Canonical digest per leaf, in dispatch order."""
        return [leaf_digest(blob) for blob in self.canonical_leaf_blobs()]

    @property
    def merkle_root(self) -> str:
        """Root of the tree over :attr:`leaf_digests`."""
        return MerkleTree(self.leaf_digests).root

    def meta(self, window_id: int | None = None) -> dict:
        """The chained window metadata (everything but the leaves)."""
        wid = self.window_id if window_id is None else window_id
        return {
            "window_id": wid,
            "shard_id": int(self.shard_id),
            "batch_ids": list(self.batch_ids),
            "flush_time": float(self.flush_time),
            "status": self.status,
            "aborted": bool(self.aborted),
            "retries": int(self.retries),
            "n_requests": len(self.leaves),
            "integrity": bool(self.integrity_enabled),
            "error": self.error,
            "config_digest": self.config_digest,
            "seed": self.seed,
        }
