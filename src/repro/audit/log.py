"""The per-shard audit log: chained window roots with JSONL persistence.

Each appended :class:`~repro.audit.commitment.WindowCommitment` extends a
hash chain::

    chain_i = H(0x02 || chain_{i-1} || merkle_root_i || meta_digest_i)

anchored at a shard-specific genesis value, so the log's *head*
(:attr:`AuditLog.chain_root`) commits to every window ever served in
order: flipping one leaf changes its window's Merkle root, which changes
that window's chain value, which changes every later chain value and the
head.  Publishing (or just remembering) the head is enough for a tenant
to verify any inclusion proof offline.

Persistence is one JSON line per window — append-only, human-greppable,
and recoverable: :meth:`AuditLog.recover` keeps the longest valid prefix
of a truncated or corrupted file (a crash mid-append loses at most the
final window, never the chain before it).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.audit.commitment import (
    MEMBERSHIP_KINDS,
    MEMBERSHIP_STATUS_PREFIX,
    WindowCommitment,
    canonical_json_bytes,
    digest_json,
)
from repro.audit.merkle import MerkleTree, leaf_digest
from repro.errors import AuditError

_CHAIN_PREFIX = b"\x02"


def genesis_root(shard_id: int) -> str:
    """The chain anchor for one shard's log (distinct per shard)."""
    return hashlib.sha256(
        b"darknight-audit-genesis/" + str(int(shard_id)).encode("ascii")
    ).hexdigest()


def chain_hash(prev_root: str, merkle_root: str, meta_digest: str) -> str:
    """One chain link: ``H(0x02 || prev || merkle_root || meta_digest)``."""
    return hashlib.sha256(
        _CHAIN_PREFIX
        + bytes.fromhex(prev_root)
        + bytes.fromhex(merkle_root)
        + bytes.fromhex(meta_digest)
    ).hexdigest()


def _entry_from_commitment(
    commitment: WindowCommitment, window_id: int, prev_root: str
) -> tuple[dict, bytes]:
    """Build one chained entry plus its serialized JSONL line.

    Each leaf (and the meta block) is canonically serialized exactly
    once: the per-leaf blobs feed the Merkle digests *and* are spliced
    verbatim into the line — ``canonical_json_bytes`` and a sorted-keys
    compact ``json.dumps`` of the whole entry are byte-identical, and
    the commit happens on the serving hot path, so the second full
    serialization pass is pure waste.  Entry keys are spliced in sorted
    order (chain_root < leaves < merkle_root < meta < prev_root).
    """
    leaf_blobs = commitment.canonical_leaf_blobs()
    merkle_root = MerkleTree([leaf_digest(blob) for blob in leaf_blobs]).root
    meta = commitment.meta(window_id)
    meta_blob = canonical_json_bytes(meta)
    chain_root = chain_hash(
        prev_root, merkle_root, hashlib.sha256(meta_blob).hexdigest()
    )
    entry = {
        "meta": meta,
        "leaves": list(commitment.leaves),
        "merkle_root": merkle_root,
        "prev_root": prev_root,
        "chain_root": chain_root,
    }
    line = b"".join(
        (
            b'{"chain_root":"', chain_root.encode("ascii"),
            b'","leaves":[', b",".join(leaf_blobs),
            b'],"merkle_root":"', merkle_root.encode("ascii"),
            b'","meta":', meta_blob,
            b',"prev_root":"', prev_root.encode("ascii"),
            b'"}\n',
        )
    )
    return entry, line


class AuditLog:
    """One shard's append-only chained window log.

    Parameters
    ----------
    shard_id:
        The enclave shard whose windows this log records (fixes the
        genesis anchor, so shard A's proofs can never verify against
        shard B's head).
    path:
        JSONL file to persist to; ``None`` keeps the log in memory only
        (tests, or deployments that export the chain elsewhere).
    """

    def __init__(self, shard_id: int, path: str | Path | None = None) -> None:
        self.shard_id = int(shard_id)
        self.path = Path(path) if path is not None else None
        self.entries: list[dict] = []
        #: Bytes appended to the JSONL file (or that would have been).
        self.bytes_written = 0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # A server run starts a fresh chain; use load()/recover() to
            # read an existing log back.
            self.path.write_text("")

    # ------------------------------------------------------------------
    # the chain
    # ------------------------------------------------------------------
    @property
    def chain_root(self) -> str:
        """The chain head (genesis when no window was committed yet)."""
        if not self.entries:
            return genesis_root(self.shard_id)
        return self.entries[-1]["chain_root"]

    @property
    def n_windows(self) -> int:
        return len(self.entries)

    def append(self, commitment: WindowCommitment) -> dict:
        """Chain and persist one window commitment; returns the entry."""
        if commitment.shard_id != self.shard_id:
            raise AuditError(
                f"shard {self.shard_id} log cannot commit shard"
                f" {commitment.shard_id}'s window"
            )
        entry, line = _entry_from_commitment(
            commitment, window_id=len(self.entries), prev_root=self.chain_root
        )
        self.bytes_written += len(line)
        if self.path is not None:
            with self.path.open("ab") as fh:
                fh.write(line)
        self.entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify_chain(self) -> int:
        """Recompute every Merkle root and chain link; returns windows checked.

        Raises
        ------
        AuditError
            On the first window whose leaves no longer hash to its
            committed Merkle root, or whose chain link does not extend
            its predecessor — i.e. on any tamper or truncation-splice.
        """
        prev = genesis_root(self.shard_id)
        for i, entry in enumerate(self.entries):
            meta = entry["meta"]
            if meta.get("window_id") != i or meta.get("shard_id") != self.shard_id:
                raise AuditError(
                    f"window {i}: metadata claims window"
                    f" {meta.get('window_id')} of shard {meta.get('shard_id')}"
                )
            status = meta.get("status")
            if isinstance(status, str) and status.startswith(
                MEMBERSHIP_STATUS_PREFIX
            ):
                kind = status[len(MEMBERSHIP_STATUS_PREFIX) :]
                leaves = entry["leaves"]
                if kind not in MEMBERSHIP_KINDS:
                    raise AuditError(
                        f"window {i}: unknown membership event kind {kind!r}"
                    )
                if len(leaves) != 1 or leaves[0].get("event") != kind:
                    raise AuditError(
                        f"window {i}: membership window must hold exactly one"
                        f" {kind!r} event leaf"
                    )
                if leaves[0].get("shard_id") != self.shard_id:
                    raise AuditError(
                        f"window {i}: membership event names shard"
                        f" {leaves[0].get('shard_id')}, not {self.shard_id}"
                    )
            recomputed = MerkleTree(
                [leaf_digest(canonical_json_bytes(leaf)) for leaf in entry["leaves"]]
            ).root
            if recomputed != entry["merkle_root"]:
                raise AuditError(
                    f"window {i}: leaves do not hash to the committed Merkle"
                    f" root (committed {entry['merkle_root'][:12]}…,"
                    f" recomputed {recomputed[:12]}…)"
                )
            if entry["prev_root"] != prev:
                raise AuditError(
                    f"window {i}: chain does not extend window {i - 1}"
                )
            expected = chain_hash(prev, recomputed, digest_json(meta))
            if expected != entry["chain_root"]:
                raise AuditError(
                    f"window {i}: chain root mismatch (committed"
                    f" {entry['chain_root'][:12]}…, recomputed {expected[:12]}…)"
                )
            prev = entry["chain_root"]
        return len(self.entries)

    def membership_events(self) -> list[dict]:
        """The chain's membership-change events, oldest first.

        Each record is ``{"window_id", "kind", "shard_id", "time",
        "details"}`` taken from the event leaf of every
        ``membership:<kind>`` window.
        """
        events = []
        for entry in self.entries:
            status = entry["meta"].get("status", "")
            if not (
                isinstance(status, str)
                and status.startswith(MEMBERSHIP_STATUS_PREFIX)
            ):
                continue
            leaf = entry["leaves"][0]
            events.append(
                {
                    "window_id": entry["meta"]["window_id"],
                    "kind": leaf.get("event"),
                    "shard_id": leaf.get("shard_id"),
                    "time": leaf.get("time"),
                    "details": leaf.get("details", {}),
                }
            )
        return events

    # ------------------------------------------------------------------
    # reading logs back
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path, shard_id: int | None = None) -> "AuditLog":
        """Read a persisted log strictly (any malformed line raises)."""
        log, dropped = cls._read(Path(path), shard_id=shard_id, strict=True)
        assert dropped == 0
        return log

    @classmethod
    def recover(
        cls, path: str | Path, shard_id: int | None = None
    ) -> tuple["AuditLog", int]:
        """Read the longest valid prefix of a possibly damaged log.

        Returns ``(log, dropped_lines)``: parsing stops at the first
        malformed or chain-breaking line (a torn tail cannot silently
        resurrect as a *different* history — everything after the first
        damage is dropped, and the surviving prefix still passes
        :meth:`verify_chain`).
        """
        return cls._read(Path(path), shard_id=shard_id, strict=False)

    @classmethod
    def _read(
        cls, path: Path, shard_id: int | None, strict: bool
    ) -> tuple["AuditLog", int]:
        if not path.exists():
            raise AuditError(f"no audit log at {path}")
        lines = path.read_text().splitlines()
        log = cls.__new__(cls)
        log.path = path
        log.entries = []
        log.bytes_written = 0
        log.shard_id = -1 if shard_id is None else int(shard_id)
        for i, line in enumerate(lines):
            try:
                entry = json.loads(line)
                meta = entry["meta"]
                if log.shard_id < 0:
                    log.shard_id = int(meta["shard_id"])
                probe = cls.__new__(cls)
                probe.shard_id = log.shard_id
                probe.entries = log.entries + [entry]
                probe.path = None
                probe.bytes_written = 0
                probe.verify_chain()
            except (AuditError, KeyError, TypeError, ValueError) as exc:
                if strict:
                    raise AuditError(f"{path}:{i + 1}: invalid entry ({exc})") from exc
                return log, len(lines) - i
            log.entries.append(entry)
        if log.shard_id < 0:
            # An empty file: shard unknown, chain at genesis of shard 0
            # unless the caller said otherwise.
            log.shard_id = 0
        return log, 0
