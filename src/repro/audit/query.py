"""Tenant-facing audit queries: inclusion proofs verifiable offline.

``prove(request_id)`` extracts, from one shard's chained log, everything
a tenant needs to convince a third party that their request was served in
a committed window — without revealing any other tenant's records:

* the tenant's own leaf record (their input/output digests and status);
* the O(log n) Merkle path from that leaf to the window's root;
* the window metadata and the chain value *before* the window;
* the ``(merkle_root, meta_digest)`` pair of every *later* window, so the
  verifier can fold the chain forward to the shard's published head.

``verify_proof`` is a pure function over the proof record and the shard
root — it imports nothing from the serving stack and touches no files,
so it can run on the tenant's side against a head the operator published
out-of-band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.commitment import STATUS_RETRIED, canonical_json_bytes, digest_json
from repro.audit.log import AuditLog, chain_hash
from repro.audit.merkle import MerkleProof, MerkleTree, leaf_digest
from repro.errors import AuditError


@dataclass(frozen=True)
class InclusionProof:
    """One request's offline-verifiable membership proof.

    ``chain_suffix`` lists ``{"merkle_root", "meta_digest"}`` for every
    window after the proven one, oldest first; folding them onto the
    proven window's chain value must land exactly on the shard head.
    """

    shard_id: int
    window_id: int
    leaf: dict
    merkle: MerkleProof
    window_meta: dict
    prev_root: str
    chain_suffix: tuple[dict, ...]

    def to_record(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "window_id": self.window_id,
            "leaf": self.leaf,
            "merkle": self.merkle.to_record(),
            "window_meta": self.window_meta,
            "prev_root": self.prev_root,
            "chain_suffix": list(self.chain_suffix),
        }

    @classmethod
    def from_record(cls, record: dict) -> "InclusionProof":
        return cls(
            shard_id=int(record["shard_id"]),
            window_id=int(record["window_id"]),
            leaf=dict(record["leaf"]),
            merkle=MerkleProof.from_record(record["merkle"]),
            window_meta=dict(record["window_meta"]),
            prev_root=str(record["prev_root"]),
            chain_suffix=tuple(dict(s) for s in record["chain_suffix"]),
        )


def prove(log: AuditLog, request_id: int) -> InclusionProof:
    """Build the inclusion proof for a request's terminal leaf.

    A request that aborted with its shared window and was re-dispatched
    appears in several windows; the *terminal* occurrence (the newest
    leaf whose status is not ``"retried"``) is the one proved.  If every
    occurrence is a retry marker the newest marker is proved — the
    tenant can still show the request entered the log.
    """
    request_id = int(request_id)
    best: tuple[int, int] | None = None
    fallback: tuple[int, int] | None = None
    for w in range(len(log.entries) - 1, -1, -1):
        for i, leaf in enumerate(log.entries[w]["leaves"]):
            # Membership-event leaves carry no request id; skip them.
            if leaf.get("request_id") != request_id:
                continue
            if leaf["status"] != STATUS_RETRIED:
                best = (w, i)
                break
            if fallback is None:
                fallback = (w, i)
        if best is not None:
            break
    found = best if best is not None else fallback
    if found is None:
        raise AuditError(
            f"request {request_id} does not appear in shard"
            f" {log.shard_id}'s audit log"
        )
    w, i = found
    entry = log.entries[w]
    tree = MerkleTree(
        [leaf_digest(canonical_json_bytes(leaf)) for leaf in entry["leaves"]]
    )
    return InclusionProof(
        shard_id=log.shard_id,
        window_id=w,
        leaf=entry["leaves"][i],
        merkle=tree.prove(i),
        window_meta=entry["meta"],
        prev_root=entry["prev_root"],
        chain_suffix=tuple(
            {
                "merkle_root": later["merkle_root"],
                "meta_digest": digest_json(later["meta"]),
            }
            for later in log.entries[w + 1 :]
        ),
    )


def verify_proof(proof: InclusionProof, shard_root: str) -> bool:
    """True when ``proof`` authenticates against a shard's chain head.

    Checks, in order: the leaf record hashes to the proof's Merkle leaf;
    the Merkle path folds to a window root; that root chains onto
    ``prev_root`` under the window metadata; and the chain suffix folds
    from there exactly onto ``shard_root``.  Any flipped bit anywhere in
    that pipeline returns ``False``.
    """
    try:
        if leaf_digest(canonical_json_bytes(proof.leaf)) != proof.merkle.leaf:
            return False
        chain = chain_hash(
            proof.prev_root, proof.merkle.root(), digest_json(proof.window_meta)
        )
        for later in proof.chain_suffix:
            chain = chain_hash(chain, later["merkle_root"], later["meta_digest"])
        return chain == shard_root
    except (AuditError, KeyError, TypeError, ValueError):
        return False
