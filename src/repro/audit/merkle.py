"""Merkle trees over canonical leaf digests, with O(log n) inclusion proofs.

The audit trail commits each flush window's request records into one
Merkle tree so a tenant can later prove "my request was in this window"
by revealing only the sibling digests along one root-to-leaf path —
``ceil(log2(n))`` hashes for an ``n``-leaf window, never the other
tenants' records.

Hashing is domain-separated SHA-256: leaves are ``H(0x00 || payload)``
and interior nodes ``H(0x01 || left || right)``, so a leaf payload can
never be confused with a concatenation of child digests (the classic
second-preimage splice).  An odd node at any level is *promoted*
unchanged rather than paired with a copy of itself, which closes the
duplicate-last-leaf malleability of the naive construction.  All digests
cross API boundaries as lowercase hex strings — the JSONL audit log and
proof files stay human-inspectable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import AuditError

#: Domain-separation prefixes (leaf vs interior node vs chain link).
_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"

#: Root of a zero-leaf tree (a committed-but-empty flush window).
EMPTY_ROOT = hashlib.sha256(b"\x02darknight-audit-empty-window").hexdigest()


def leaf_digest(payload: bytes) -> str:
    """Digest one canonical leaf payload (domain-separated from nodes)."""
    return hashlib.sha256(_LEAF_PREFIX + payload).hexdigest()


def _node(left: str, right: str) -> str:
    return hashlib.sha256(
        _NODE_PREFIX + bytes.fromhex(left) + bytes.fromhex(right)
    ).hexdigest()


@dataclass(frozen=True)
class ProofStep:
    """One level of an inclusion path: the sibling digest and its side."""

    sibling: str
    #: ``"left"`` when the sibling precedes the running digest.
    side: str

    def to_record(self) -> dict:
        return {"sibling": self.sibling, "side": self.side}

    @classmethod
    def from_record(cls, record: dict) -> "ProofStep":
        return cls(sibling=str(record["sibling"]), side=str(record["side"]))


@dataclass(frozen=True)
class MerkleProof:
    """A leaf's root-to-leaf authentication path within one tree.

    ``path`` holds at most ``ceil(log2(n_leaves))`` steps: levels where
    the running node was promoted unpaired contribute no step.
    """

    leaf: str
    index: int
    n_leaves: int
    path: tuple[ProofStep, ...]

    def root(self) -> str:
        """Fold the path back up to the root this proof claims."""
        digest = self.leaf
        for step in self.path:
            if step.side == "left":
                digest = _node(step.sibling, digest)
            elif step.side == "right":
                digest = _node(digest, step.sibling)
            else:
                raise AuditError(f"malformed proof step side {step.side!r}")
        return digest

    def to_record(self) -> dict:
        return {
            "leaf": self.leaf,
            "index": self.index,
            "n_leaves": self.n_leaves,
            "path": [step.to_record() for step in self.path],
        }

    @classmethod
    def from_record(cls, record: dict) -> "MerkleProof":
        return cls(
            leaf=str(record["leaf"]),
            index=int(record["index"]),
            n_leaves=int(record["n_leaves"]),
            path=tuple(ProofStep.from_record(s) for s in record["path"]),
        )


class MerkleTree:
    """A Merkle tree over an ordered list of hex leaf digests.

    The full level structure is kept (windows are small — one flush
    window's requests), so building every inclusion proof is an O(log n)
    walk with no re-hashing.
    """

    def __init__(self, leaves: list[str]) -> None:
        self.leaves = [str(leaf) for leaf in leaves]
        self._levels: list[list[str]] = [list(self.leaves)]
        level = self._levels[0]
        while len(level) > 1:
            parents = []
            for i in range(0, len(level) - 1, 2):
                parents.append(_node(level[i], level[i + 1]))
            if len(level) % 2:
                parents.append(level[-1])  # promoted, not duplicated
            self._levels.append(parents)
            level = parents

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    @property
    def root(self) -> str:
        """The tree root (:data:`EMPTY_ROOT` for a zero-leaf window)."""
        if not self.leaves:
            return EMPTY_ROOT
        return self._levels[-1][0]

    def prove(self, index: int) -> MerkleProof:
        """Build the inclusion proof for the leaf at ``index``."""
        if not 0 <= index < len(self.leaves):
            raise AuditError(
                f"leaf index {index} out of range for {len(self.leaves)} leaves"
            )
        path: list[ProofStep] = []
        i = index
        for level in self._levels[:-1]:
            sibling = i ^ 1
            if sibling < len(level):
                side = "left" if sibling < i else "right"
                path.append(ProofStep(sibling=level[sibling], side=side))
            i //= 2
        return MerkleProof(
            leaf=self.leaves[index],
            index=index,
            n_leaves=len(self.leaves),
            path=tuple(path),
        )


def verify_inclusion(proof: MerkleProof, root: str) -> bool:
    """True when ``proof`` authenticates its leaf against ``root``."""
    try:
        return proof.root() == root
    except (AuditError, ValueError):
        return False
