"""The serving-side audit trail: per-shard logs behind one commit API.

:class:`AuditTrail` is what the worker pool talks to — it owns one
chained :class:`~repro.audit.log.AuditLog` per shard, stamps every
commitment with the deployment's effective-config digest (so a proof
also pins *which* integrity posture served the request), tracks commit
cost (windows, leaves, bytes, wall seconds), and writes a
``manifest.json`` recording everything replay needs to reprovision the
deployment: model name, seed, shard count, and the full effective
DarKnight config.

The trail is deliberately passive: it never raises into the serving hot
path on commit (malformed windows are an :class:`AuditError` bug, not a
tenant-visible failure) and costs nothing when :class:`AuditConfig` is
absent — the worker pool holds ``None`` and skips the call sites.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.audit.commitment import WindowCommitment, digest_json
from repro.audit.log import AuditLog
from repro.errors import AuditError
from repro.runtime.config import DarKnightConfig

MANIFEST_NAME = "manifest.json"


def log_filename(shard_id: int) -> str:
    """The JSONL filename one shard's chained log persists to."""
    return f"shard{int(shard_id)}.audit.jsonl"


@dataclass(frozen=True)
class AuditConfig:
    """Serving-level audit switches (attach to ``ServingConfig.audit``).

    Parameters
    ----------
    log_dir:
        Directory for per-shard JSONL logs plus ``manifest.json``;
        ``None`` keeps the trail in memory (chain heads and proofs still
        work, nothing survives the process).
    model:
        Name of the served model, recorded in the manifest so
        ``python -m repro audit replay`` can rebuild the same network.
    """

    log_dir: str | None = None
    model: str | None = None


class AuditTrail:
    """Chained per-shard window logs for one serving deployment."""

    def __init__(
        self,
        config: AuditConfig,
        darknight: DarKnightConfig,
        num_shards: int,
        on_commit: Callable[[int, int, float], None] | None = None,
    ) -> None:
        self.config = config
        self.darknight = darknight
        self.num_shards = int(num_shards)
        self.on_commit = on_commit
        self.config_digest = digest_json(dataclasses.asdict(darknight))
        self.log_dir = Path(config.log_dir) if config.log_dir else None
        self.logs: dict[int, AuditLog] = {
            sid: AuditLog(
                sid,
                None if self.log_dir is None else self.log_dir / log_filename(sid),
            )
            for sid in range(self.num_shards)
        }
        self.windows_committed = 0
        self.leaves_committed = 0
        self.bytes_written = 0
        self.commit_seconds = 0.0
        #: Membership-change windows chained via :meth:`record_membership`.
        self.membership_events = 0
        if self.log_dir is not None:
            self._write_manifest()

    def _write_manifest(self) -> None:
        manifest = {
            "model": self.config.model,
            "seed": self.darknight.seed,
            "num_shards": self.num_shards,
            "darknight": dataclasses.asdict(self.darknight),
            "config_digest": self.config_digest,
        }
        (self.log_dir / MANIFEST_NAME).write_text(
            json.dumps(manifest, sort_keys=True, indent=2) + "\n"
        )

    # ------------------------------------------------------------------
    # dynamic membership
    # ------------------------------------------------------------------
    def add_shard(self, shard_id: int) -> None:
        """Open a chained log for a shard provisioned after startup.

        Logs are only ever *added*, never removed: a retired shard's
        chain head stays published (and its JSONL stays on disk), so
        inclusion proofs issued while the shard was live verify forever.
        The manifest is rewritten so replay knows the final shard count.
        """
        shard_id = int(shard_id)
        if shard_id in self.logs:
            raise AuditError(f"audit trail already has a log for shard {shard_id}")
        self.logs[shard_id] = AuditLog(
            shard_id,
            None if self.log_dir is None else self.log_dir / log_filename(shard_id),
        )
        self.num_shards = max(self.num_shards, shard_id + 1)
        if self.log_dir is not None:
            self._write_manifest()

    def record_membership(
        self,
        kind: str,
        shard_id: int,
        now: float = 0.0,
        details: dict | None = None,
    ) -> dict:
        """Chain one membership-change event on the affected shard's log.

        Called by the server's elastic-membership paths: ``provision``
        opens a shard's service life, ``drain`` marks the wind-down, and
        ``retire`` closes it — all as first-class chained windows, so
        ``verify`` / ``check-chain`` attest the membership history along
        with the served work.
        """
        shard_id = int(shard_id)
        if shard_id not in self.logs:
            raise AuditError(
                f"audit trail has no log for shard {shard_id}"
                f" ({self.num_shards} provisioned)"
            )
        commitment = WindowCommitment.build_membership(
            shard_id=shard_id,
            kind=kind,
            time=now,
            details=details,
            config_digest=self.config_digest,
            seed=self.darknight.seed,
        )
        entry = self._append(shard_id, commitment)
        self.membership_events += 1
        return entry

    def _append(
        self, shard_id: int, commitment: WindowCommitment, extra_seconds: float = 0.0
    ) -> dict:
        """Chain one commitment with full cost accounting.

        ``extra_seconds`` folds in time the caller already spent building
        the commitment, so commit-cost telemetry covers the whole path.
        """
        start = time.perf_counter()
        log = self.logs[shard_id]
        before = log.bytes_written
        entry = log.append(commitment)
        elapsed = time.perf_counter() - start + extra_seconds
        nbytes = log.bytes_written - before
        self.windows_committed += 1
        self.leaves_committed += len(commitment.leaves)
        self.bytes_written += nbytes
        self.commit_seconds += elapsed
        if self.on_commit is not None:
            self.on_commit(len(commitment.leaves), nbytes, elapsed)
        return entry

    # ------------------------------------------------------------------
    # the commit path (called by the worker pool per flushed window)
    # ------------------------------------------------------------------
    def commit_window(
        self,
        shard_id: int,
        batches: list,
        outputs_by_batch: list,
        status: str,
        aborted: bool = False,
        error: str | None = None,
    ) -> dict:
        """Build, chain, and persist one window's commitment."""
        if shard_id not in self.logs:
            raise AuditError(
                f"audit trail has no log for shard {shard_id}"
                f" ({self.num_shards} provisioned)"
            )
        start = time.perf_counter()
        commitment = WindowCommitment.build(
            shard_id=shard_id,
            batches=batches,
            outputs_by_batch=outputs_by_batch,
            status=status,
            aborted=aborted,
            error=error,
            integrity_enabled=self.darknight.integrity,
            config_digest=self.config_digest,
            seed=self.darknight.seed,
        )
        return self._append(
            shard_id, commitment, extra_seconds=time.perf_counter() - start
        )

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def chain_roots(self) -> dict[int, str]:
        """Every shard's current chain head (publish these)."""
        return {sid: log.chain_root for sid, log in sorted(self.logs.items())}

    def verify(self) -> int:
        """Walk every shard's chain; returns total windows verified."""
        return sum(log.verify_chain() for log in self.logs.values())


def load_manifest(log_dir: str | Path) -> dict:
    """Read an audit directory's manifest (model/seed/effective config)."""
    path = Path(log_dir) / MANIFEST_NAME
    if not path.exists():
        raise AuditError(f"no audit manifest at {path}")
    return json.loads(path.read_text())


def manifest_config(manifest: dict) -> DarKnightConfig:
    """Rebuild the effective DarKnight config a manifest recorded."""
    try:
        return DarKnightConfig(**manifest["darknight"])
    except (KeyError, TypeError) as exc:
        raise AuditError(f"audit manifest has no usable config ({exc})") from exc
