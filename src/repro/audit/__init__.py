"""Verifiable serving audit trail.

Turns each flush window's integrity evidence into a durable,
tamper-evident commitment: Merkle trees over canonical per-request
digests (:mod:`repro.audit.merkle`, :mod:`repro.audit.commitment`),
per-shard hash-chained JSONL logs (:mod:`repro.audit.log`), tenant
inclusion proofs verifiable offline (:mod:`repro.audit.query`),
deterministic window replay (:mod:`repro.audit.replay`), and the
serving-side trail that ties them together (:mod:`repro.audit.trail`).
"""

from repro.audit.commitment import (
    MEMBERSHIP_KINDS,
    MEMBERSHIP_STATUS_PREFIX,
    STATUS_RETRIED,
    WindowCommitment,
    array_digest,
    array_from_canonical,
    canonical_array,
    canonical_json_bytes,
    digest_json,
)
from repro.audit.log import AuditLog, chain_hash, genesis_root
from repro.audit.merkle import (
    EMPTY_ROOT,
    MerkleProof,
    MerkleTree,
    ProofStep,
    leaf_digest,
    verify_inclusion,
)
from repro.audit.query import InclusionProof, prove, verify_proof
from repro.audit.replay import ReplayResult, replay_window
from repro.audit.trail import (
    AuditConfig,
    AuditTrail,
    load_manifest,
    log_filename,
    manifest_config,
)

__all__ = [
    "EMPTY_ROOT",
    "MEMBERSHIP_KINDS",
    "MEMBERSHIP_STATUS_PREFIX",
    "STATUS_RETRIED",
    "AuditConfig",
    "AuditLog",
    "AuditTrail",
    "InclusionProof",
    "MerkleProof",
    "MerkleTree",
    "ProofStep",
    "ReplayResult",
    "WindowCommitment",
    "array_digest",
    "array_from_canonical",
    "canonical_array",
    "canonical_json_bytes",
    "chain_hash",
    "digest_json",
    "genesis_root",
    "leaf_digest",
    "load_manifest",
    "log_filename",
    "manifest_config",
    "prove",
    "replay_window",
    "verify_inclusion",
    "verify_proof",
]
