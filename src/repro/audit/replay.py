"""Deterministic re-execution of a disputed window from its commitments.

A window's leaves store each request's admitted input verbatim (in
canonical form), and the serving stack pins ``per_sample_normalization``
on and ``fresh_coefficients`` off — decoded logits depend only on the
sample and the network, never on batch composition, coalescing depth, or
which shard ran the window.  Replay therefore provisions a fresh
:class:`~repro.sharding.shard.EnclaveShard` from the audited deployment's
effective config (same seed derivation, same integrity posture, same K —
even a window the adaptive governor resized replays exactly), re-runs
each committed batch through :class:`PrivateInferenceEngine`, and
compares recomputed output digests leaf by leaf.

A match proves the committed outputs are what this network really
produces for the committed inputs; a mismatch names the first leaf whose
history was forged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.audit.commitment import (
    MEMBERSHIP_STATUS_PREFIX,
    array_digest,
    array_from_canonical,
)
from repro.errors import AuditError
from repro.runtime.config import DarKnightConfig
from repro.sharding.shard import EnclaveShard


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of re-executing one committed window."""

    window_id: int
    shard_id: int
    n_requests: int
    n_batches: int
    matched: bool
    #: ``(request_id, committed_digest, recomputed_digest)`` per mismatch.
    mismatches: tuple[tuple[int, str, str], ...]


def _batches_in_order(leaves: list[dict]) -> list[tuple[int, list[dict]]]:
    """Group leaves by batch id, preserving dispatch order."""
    order: list[int] = []
    groups: dict[int, list[dict]] = {}
    for leaf in leaves:
        bid = int(leaf["batch_id"])
        if bid not in groups:
            order.append(bid)
            groups[bid] = []
        groups[bid].append(leaf)
    return [(bid, groups[bid]) for bid in order]


def replay_window(
    entry: dict, network, config: DarKnightConfig, strict: bool = True
) -> ReplayResult:
    """Re-execute one audit-log entry and compare output digests.

    Parameters
    ----------
    entry:
        A log entry dict (one line of the shard's JSONL log): its leaves
        carry the committed inputs and output digests.
    network:
        The served model (rebuild it from the audit manifest's model
        name + seed).
    config:
        The deployment's *effective* DarKnight config (the manifest
        records it; serving's normalization/coefficient pinning must be
        part of it for replay to be composition-independent).
    strict:
        When true (the default), raise :class:`AuditError` on the first
        digest divergence instead of returning a mismatch report.
    """
    meta = entry["meta"]
    leaves = entry["leaves"]
    status = meta.get("status", "")
    if isinstance(status, str) and status.startswith(MEMBERSHIP_STATUS_PREFIX):
        raise AuditError(
            f"window {meta.get('window_id')} is a membership event"
            f" ({status}); there is no computation to replay"
        )
    if not leaves:
        raise AuditError(
            f"window {meta.get('window_id')} is empty: nothing to replay"
        )
    if any(leaf["output_digest"] is None for leaf in leaves):
        raise AuditError(
            f"window {meta.get('window_id')} committed no decoded outputs"
            f" (status {meta.get('status')!r}); replay needs a completed"
            " window — prove inclusion instead"
        )
    shard = EnclaveShard.provision(int(meta["shard_id"]), network, config)
    mismatches: list[tuple[int, str, str]] = []
    batches = _batches_in_order(leaves)
    for _, batch_leaves in batches:
        x = np.stack(
            [array_from_canonical(leaf["input"]) for leaf in batch_leaves]
        )
        out = shard.engine.run_batch(x)
        for i, leaf in enumerate(batch_leaves):
            recomputed = array_digest(out[i])
            if recomputed != leaf["output_digest"]:
                if strict:
                    raise AuditError(
                        f"window {meta.get('window_id')}: request"
                        f" {leaf['request_id']} replayed to digest"
                        f" {recomputed[:12]}… but the log committed"
                        f" {leaf['output_digest'][:12]}…"
                    )
                mismatches.append(
                    (int(leaf["request_id"]), leaf["output_digest"], recomputed)
                )
    return ReplayResult(
        window_id=int(meta["window_id"]),
        shard_id=int(meta["shard_id"]),
        n_requests=len(leaves),
        n_batches=len(batches),
        matched=not mismatches,
        mismatches=tuple(mismatches),
    )
