"""Elastic shard autoscaling: hysteresis-gated scale decisions.

The serving stack already records every signal an autoscaler needs —
per-shard queue depth (the admission queues), per-shard enclave occupancy
(:attr:`~repro.sharding.EnclaveShard.busy_time`), and SLO attainment
(:meth:`~repro.serving.metrics.ServerMetrics.slo_attainment`).  The
:class:`ShardAutoscaler` folds those into two smoothed pressure signals —
a queue-depth EWMA and a busy-time utilization over the evaluation wall —
and turns them into *rare, deliberate* membership changes:

* **Hysteresis**: scale-out and scale-in trigger on *different*
  thresholds (``queue_high``/``utilization_high`` vs ``queue_low``/
  ``utilization_low``) and only after the pressure persists for
  ``breaches_to_scale_out`` / ``breaches_to_scale_in`` consecutive
  evaluations, so a single bursty window never flaps the membership.
* **Cooldown**: after any action the loop holds for
  ``scale_out_cooldown`` / ``scale_in_cooldown`` simulated seconds —
  scale-in waits longer by default because killing a shard is the more
  expensive mistake (drain, migration, and a likely re-provision).

The autoscaler is pure decision logic on the simulated clock: it never
touches shards itself.  The server executes decisions through its
dynamic-membership APIs (``provision_shard`` / ``decommission_shard``)
and reports them back via :meth:`ShardAutoscaler.note_provisioned` /
:meth:`ShardAutoscaler.note_retired`, which also power the shard-seconds
accounting the autoscale benchmark gates on (provisioned capacity
integrated over simulated time — the cost axis static max provisioning
loses on).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Decision labels recorded in :class:`AutoscaleEvent`.
ACTION_SCALE_OUT = "scale_out"
ACTION_SCALE_IN = "scale_in"


@dataclass(frozen=True)
class AutoscaleConfig:
    """Knobs for the elastic control loop.

    Parameters
    ----------
    min_shards / max_shards:
        Hard membership bounds; the loop never decommissions below
        ``min_shards`` nor provisions above ``max_shards``.
    eval_interval:
        Simulated seconds between control-loop evaluations; pressure
        signals are folded once per interval.
    scale_out_cooldown / scale_in_cooldown:
        Minimum simulated seconds after *any* membership change before
        the next scale-out / scale-in may fire.
    queue_high / queue_low:
        Mean per-shard queue-depth EWMA above which the deployment is
        considered overloaded / below which it is considered idle.
    utilization_high / utilization_low:
        Busy-time utilization (enclave-busy seconds per live-shard
        second) bounds, same roles as the queue thresholds.
    breaches_to_scale_out / breaches_to_scale_in:
        Consecutive overloaded / idle evaluations required before the
        corresponding action fires (the hysteresis streak).
    ewma_alpha:
        Smoothing factor for the per-shard queue-depth EWMA.
    attainment_floor:
        Optional SLO-attainment fraction; dropping below it counts as
        overload pressure even when the queues look healthy.
    max_session_migrations:
        Optional cap forwarded to
        :meth:`~repro.sharding.ShardRouter.add_shard` bounding how many
        pinned tenants one scale-out may move.
    epc_pool_bytes:
        Optional total EPC budget shared by the deployment; when set,
        each membership change re-fits the virtual-batch size ``K``
        against ``epc_pool_bytes / n_live`` between windows.
    """

    min_shards: int = 1
    max_shards: int = 4
    eval_interval: float = 1e-3
    scale_out_cooldown: float = 2e-3
    scale_in_cooldown: float = 2e-2
    queue_high: float = 4.0
    queue_low: float = 0.5
    utilization_high: float = 0.85
    utilization_low: float = 0.25
    breaches_to_scale_out: int = 2
    breaches_to_scale_in: int = 4
    ewma_alpha: float = 0.5
    attainment_floor: float | None = None
    max_session_migrations: int | None = None
    epc_pool_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ConfigurationError(
                f"min_shards must be >= 1, got {self.min_shards}"
            )
        if self.max_shards < self.min_shards:
            raise ConfigurationError(
                f"max_shards ({self.max_shards}) must be >="
                f" min_shards ({self.min_shards})"
            )
        if self.eval_interval <= 0:
            raise ConfigurationError(
                f"eval_interval must be > 0, got {self.eval_interval}"
            )
        if self.scale_out_cooldown < 0 or self.scale_in_cooldown < 0:
            raise ConfigurationError("cooldowns must be >= 0")
        if self.queue_low > self.queue_high:
            raise ConfigurationError(
                f"queue_low ({self.queue_low}) must be <="
                f" queue_high ({self.queue_high})"
            )
        if self.utilization_low > self.utilization_high:
            raise ConfigurationError(
                f"utilization_low ({self.utilization_low}) must be <="
                f" utilization_high ({self.utilization_high})"
            )
        if self.breaches_to_scale_out < 1 or self.breaches_to_scale_in < 1:
            raise ConfigurationError("breach streaks must be >= 1")
        if not 0 < self.ewma_alpha <= 1:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.attainment_floor is not None and not 0 < self.attainment_floor <= 1:
            raise ConfigurationError(
                f"attainment_floor must be in (0, 1], got {self.attainment_floor}"
            )


@dataclass(frozen=True)
class AutoscaleEvent:
    """One executed membership change, for the report and tests."""

    time: float
    action: str
    shard_id: int
    n_live: int
    reason: str


@dataclass
class _ShardSpan:
    """One shard's provisioned interval on the simulated clock."""

    provisioned_at: float
    retired_at: float | None = None


class ShardAutoscaler:
    """Decides when the deployment should grow or shrink.

    The server drives :meth:`evaluate` from its event loop; a returned
    action is *advice* — the server executes it (provision + attest +
    re-ring, or drain + migrate + kill) and confirms with
    :meth:`note_provisioned` / :meth:`note_retired` so the shard-seconds
    ledger matches what actually happened.
    """

    def __init__(self, config: AutoscaleConfig | None = None) -> None:
        self.config = config or AutoscaleConfig()
        self._depth_ewma: dict[int, float] = {}
        self._busy_seen: dict[int, float] = {}
        self._last_eval: float | None = None
        self._last_action_time: float | None = None
        self._high_streak = 0
        self._low_streak = 0
        self.evaluations = 0
        self.events: list[AutoscaleEvent] = []
        self._spans: dict[int, list[_ShardSpan]] = {}

    # ------------------------------------------------------------------
    # decision logic
    # ------------------------------------------------------------------
    def evaluate(
        self,
        now: float,
        depths: dict[int, int],
        busy: dict[int, float],
        attainment: float | None = None,
    ) -> tuple[str | None, str]:
        """Fold one snapshot of the pressure signals into a decision.

        Parameters
        ----------
        now:
            Simulated clock.
        depths:
            Per-live-shard queue depth right now.
        busy:
            Per-live-shard *cumulative* enclave-busy seconds; utilization
            is the delta since the previous evaluation divided by the
            live-shard wall.
        attainment:
            Optional overall SLO attainment in ``[0, 1]``.

        Returns ``(action, reason)`` where action is ``"scale_out"``,
        ``"scale_in"``, or ``None``.
        """
        cfg = self.config
        if self._last_eval is not None and now - self._last_eval < cfg.eval_interval:
            return None, "between evaluations"
        wall = 0.0 if self._last_eval is None else now - self._last_eval
        self._last_eval = now
        self.evaluations += 1
        n_live = max(1, len(depths))

        # Per-shard queue-depth EWMA; shards that left take their state.
        for shard_id in list(self._depth_ewma):
            if shard_id not in depths:
                del self._depth_ewma[shard_id]
        for shard_id, depth in depths.items():
            prev = self._depth_ewma.get(shard_id, float(depth))
            self._depth_ewma[shard_id] = (
                cfg.ewma_alpha * depth + (1 - cfg.ewma_alpha) * prev
            )
        mean_depth = sum(self._depth_ewma.values()) / n_live

        # Utilization: enclave-busy seconds gained per live-shard second.
        busy_delta = sum(
            max(0.0, b - self._busy_seen.get(shard_id, 0.0))
            for shard_id, b in busy.items()
        )
        self._busy_seen = dict(busy)
        utilization = busy_delta / (wall * n_live) if wall > 0 else 0.0

        attain_low = (
            cfg.attainment_floor is not None
            and attainment is not None
            and attainment < cfg.attainment_floor
        )
        high = (
            mean_depth >= cfg.queue_high
            or utilization >= cfg.utilization_high
            or attain_low
        )
        low = (
            mean_depth <= cfg.queue_low
            and utilization <= cfg.utilization_low
            and not attain_low
        )
        self._high_streak = self._high_streak + 1 if high else 0
        self._low_streak = self._low_streak + 1 if low else 0

        since_action = (
            None
            if self._last_action_time is None
            else now - self._last_action_time
        )
        if (
            self._high_streak >= cfg.breaches_to_scale_out
            and len(depths) < cfg.max_shards
            and (since_action is None or since_action >= cfg.scale_out_cooldown)
        ):
            reason = (
                f"overloaded: mean depth EWMA {mean_depth:.2f}"
                f" (high {cfg.queue_high}), utilization {utilization:.2f}"
                f" (high {cfg.utilization_high})"
                + (", SLO attainment below floor" if attain_low else "")
            )
            return ACTION_SCALE_OUT, reason
        if (
            self._low_streak >= cfg.breaches_to_scale_in
            and len(depths) > cfg.min_shards
            and (since_action is None or since_action >= cfg.scale_in_cooldown)
        ):
            reason = (
                f"idle: mean depth EWMA {mean_depth:.2f}"
                f" (low {cfg.queue_low}), utilization {utilization:.2f}"
                f" (low {cfg.utilization_low})"
            )
            return ACTION_SCALE_IN, reason
        return None, "steady"

    # ------------------------------------------------------------------
    # executed-change ledger
    # ------------------------------------------------------------------
    def note_provisioned(self, shard_id: int, now: float) -> None:
        """Record that a shard went live at ``now``."""
        self._spans.setdefault(shard_id, []).append(_ShardSpan(now))

    def note_retired(self, shard_id: int, now: float) -> None:
        """Record that a shard left the deployment at ``now``."""
        spans = self._spans.get(shard_id)
        if spans and spans[-1].retired_at is None:
            spans[-1].retired_at = now

    def record(self, action: str, shard_id: int, n_live: int, now: float, reason: str) -> None:
        """Log one executed membership change and start its cooldown."""
        self._last_action_time = now
        self._high_streak = 0
        self._low_streak = 0
        self.events.append(
            AutoscaleEvent(
                time=now,
                action=action,
                shard_id=shard_id,
                n_live=n_live,
                reason=reason,
            )
        )

    def shard_seconds(self, end: float) -> float:
        """Provisioned capacity integrated over simulated time.

        Each shard contributes its live interval ``[provisioned_at,
        retired_at or end]`` — the "shard-hours" cost axis on which
        autoscaling beats static max provisioning.
        """
        total = 0.0
        for spans in self._spans.values():
            for span in spans:
                closed = span.retired_at if span.retired_at is not None else end
                total += max(0.0, closed - span.provisioned_at)
        return total

    @property
    def scale_outs(self) -> int:
        """Executed scale-out events."""
        return sum(1 for e in self.events if e.action == ACTION_SCALE_OUT)

    @property
    def scale_ins(self) -> int:
        """Executed scale-in events."""
        return sum(1 for e in self.events if e.action == ACTION_SCALE_IN)

    def live_shards(self) -> list[int]:
        """Shard ids currently inside an open provisioned span."""
        return sorted(
            shard_id
            for shard_id, spans in self._spans.items()
            if spans and spans[-1].retired_at is None
        )

    def peak_shards(self) -> int:
        """Largest simultaneous live-shard count over the run."""
        edges: list[tuple[float, int]] = []
        for spans in self._spans.values():
            for span in spans:
                edges.append((span.provisioned_at, 1))
                if span.retired_at is not None:
                    edges.append((span.retired_at, -1))
        peak = live = 0
        for _, delta in sorted(edges, key=lambda e: (e[0], -e[1])):
            live += delta
            peak = max(peak, live)
        return peak

    def snapshot(self, end: float) -> dict:
        """Strict-JSON-safe telemetry for the serving report."""
        return {
            "evaluations": self.evaluations,
            "scale_outs": self.scale_outs,
            "scale_ins": self.scale_ins,
            "live_shards": self.live_shards(),
            "peak_shards": self.peak_shards(),
            "shard_seconds": self.shard_seconds(end),
            "events": [
                {
                    "time": e.time,
                    "action": e.action,
                    "shard_id": e.shard_id,
                    "n_live": e.n_live,
                    "reason": e.reason,
                }
                for e in self.events
            ],
        }
