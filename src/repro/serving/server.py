"""The multi-tenant private-inference server (offline trace driver).

Composes the serving subsystem end to end::

    trace -> ShardRouter (pin tenant -> enclave shard)
          -> ShardedSessionManager (attest once / tenant on its shard)
          -> per-shard RequestQueue (bounded, shed-load globally)
          -> ShardedBatchScheduler (coalesce per shard, size-or-deadline)
          -> InferenceWorkerPool (per-shard staged pipelines on parallel
             enclave timelines; mesh-verified session failover when a
             shard dies)
          -> ServerMetrics / ServingReport

The deployment runs ``darknight.num_shards`` :class:`EnclaveShard` s —
each its own enclave + GPU cluster + serialized timeline — behind one
scheduler; an :class:`AttestationMesh` pairwise-verifies every shard at
startup so sessions can migrate on failure.  Serving always uses
per-sample normalization, so a request's logits are bit-identical at
every shard count, pipeline depth, and coalescing mix.

There is no network dependency: :meth:`PrivateInferenceServer.serve_trace`
replays a time-stamped request trace against a simulated clock, firing
deadline flushes exactly when a live server's timer would have.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.audit import AuditConfig, AuditTrail
from repro.comm import LinkModel
from repro.enclave import EPC_USABLE_BYTES, Enclave
from repro.errors import (
    AttestationError,
    BackpressureError,
    ConfigurationError,
    QuotaExceededError,
    ShardError,
)
from repro.gpu import GpuCluster
from repro.nn import Sequential
from repro.pipeline.timing import StageCostModel
from repro.precompute import active_scratch
from repro.runtime.client import DEFAULT_CODE_IDENTITY
from repro.runtime.config import DarKnightConfig
from repro.serving.adaptive import (
    AdaptiveBatchingConfig,
    build_policies,
    epc_fitting_batch_size,
    estimate_slot_bytes,
)
from repro.serving.autoscale import (
    ACTION_SCALE_IN,
    ACTION_SCALE_OUT,
    AutoscaleConfig,
    ShardAutoscaler,
)
from repro.serving.metrics import (
    SHED_ADMISSION,
    SHED_EVICTED,
    SHED_QUOTA,
    ServerMetrics,
)
from repro.serving.queue import RequestQueue
from repro.serving.requests import (
    STATUS_SHARD_FAILED,
    STATUS_SHED,
    PendingRequest,
    RequestOutcome,
)
from repro.serving.scheduler import ShardedBatchScheduler
from repro.serving.session import ShardedSessionManager
from repro.serving.slo import SloClass, SloPolicy
from repro.serving.trace import TraceRequest
from repro.serving.worker import InferenceWorkerPool
from repro.sharding import (
    AttestationMesh,
    EnclaveShard,
    LayerPartitionPlanner,
    PartitionSpec,
    PipelineGroup,
    ShardRouter,
)

#: Sentinel meaning "run until every queued request has drained".
_DRAIN = float("inf")


@dataclass(frozen=True)
class ServingConfig:
    """Everything that parameterises a serving deployment.

    Parameters
    ----------
    darknight:
        The masking/session parameters shared by all tenants (the
        virtual-batch size ``K`` doubles as the coalescing target, and
        ``num_shards`` sets how many enclave shards the deployment runs).
    max_batch_wait:
        Deadline (simulated seconds) before a partial batch is forced out.
    queue_capacity:
        Bound on *admitted-but-incomplete* requests — queued plus in
        flight behind busy workers, summed over every shard; beyond it
        the server sheds load, so sustained overload surfaces as shed
        requests instead of unbounded latency.
    n_workers:
        Accepted for compatibility; concurrency comes from the staged
        pipeline (``darknight.pipeline_depth``) and from parallel shard
        timelines (``darknight.num_shards``).
    coalesce:
        ``False`` dispatches every request alone (the naive baseline the
        serving benchmark measures against); the enclave still pads each
        lone sample to ``K`` slots, which is exactly the waste coalescing
        recovers.
    reuse_coefficients:
        Serve from the backend's coefficient cache (inference never needs
        the training escape hatch of fresh per-step coefficients).
    encrypt_requests:
        Run every sample and response through the tenant's AEAD channel.
    stage_costs:
        Simulated-time pricing for the pipeline stages.  Batch service
        times come from each shard's staged executor's real per-stage
        timings (bytes masked, MACs run) on that shard's persistent
        enclave/GPU timeline.
    adaptive:
        When set, each shard's flush deadline is *learned* (EWMA of
        inter-arrival gaps, steered by fill-ratio feedback, floored by
        the measured per-batch enclave occupancy) and the virtual-batch
        size is clamped to what fits the enclave's EPC budget
        (:mod:`repro.serving.adaptive`).  ``None`` — the default — keeps
        the static ``max_batch_wait``/``virtual_batch_size`` knobs and a
        flush path bit-identical to previous releases.
    slo:
        Optional :class:`~repro.serving.slo.SloPolicy` threading
        per-tenant service classes through the whole request path:
        class-aware eviction at admission, minimum-remaining-budget
        flush deadlines, deadline-carrying dispatch windows (pair with
        ``darknight.stage_ranker="deadline"`` to rank on them),
        SLO-aware shard placement, and per-class latency metrics.
        ``None`` — or a policy whose every class is the default — keeps
        the server bit-identical to previous releases.
    shard_weights:
        Optional per-shard capacity weights for heterogeneous
        deployments (forwarded to the
        :class:`~repro.sharding.ShardRouter`'s hash ring); ``None``
        weighs every shard equally.
    audit:
        Optional :class:`~repro.audit.AuditConfig` enabling the
        verifiable serving audit trail: every flush window's requests,
        integrity posture, and decoded-output digests are committed to a
        per-shard hash-chained Merkle log
        (:attr:`PrivateInferenceServer.audit`), from which tenants can
        extract offline-verifiable inclusion proofs and auditors can
        deterministically replay disputed windows.  ``None`` — the
        default — commits nothing and leaves dispatch bit-identical.
    autoscale:
        Optional :class:`~repro.serving.autoscale.AutoscaleConfig`
        enabling elastic shard membership: the server provisions and
        decommissions enclave shards at runtime from queue-depth,
        utilization, and SLO-attainment pressure, between
        ``min_shards`` and ``max_shards``.  ``darknight.num_shards``
        becomes the *initial* count (clamped into the bounds).  ``None``
        — the default — keeps the static deployment.
    precompute:
        Enable the offline/online split on every shard's backend:
        pregenerated mask streams (drawn from counter-based per-shard
        RNG streams, so pooled and inline generation are bit-identical),
        a static per-``(shard, layer)`` weight-encoding cache reused
        across flush windows, and recycled hot-path scratch buffers.
        Refills run only in enclave-timeline idle gaps.  ``False`` — the
        default — keeps the serving path bit-identical to previous
        releases; ``True`` changes *when* work happens, never the bits
        of any response.
    partition:
        How the model maps onto the deployment's shards.
        ``"replicated"`` (the default) gives every shard the full model;
        ``"layered:N"`` cuts the execution plan into ``N`` balanced
        stage ranges and chains every ``N`` consecutive shards into one
        :class:`~repro.sharding.partition.PipelineGroup`
        (``num_shards`` must be a multiple of ``N``), with activations
        handed between members as sealed, mesh-verified envelopes.
        Logits are bit-identical in every mode — per-sample
        normalization and exact masking make them independent of cut
        placement.  Layered partitioning composes with everything except
        ``autoscale`` (elastic membership is replicated-only).
    """

    darknight: DarKnightConfig = field(default_factory=DarKnightConfig)
    max_batch_wait: float = 0.01
    queue_capacity: int = 256
    n_workers: int = 1
    coalesce: bool = True
    reuse_coefficients: bool = True
    encrypt_requests: bool = True
    stage_costs: StageCostModel | None = None
    code_identity: str = DEFAULT_CODE_IDENTITY
    adaptive: AdaptiveBatchingConfig | None = None
    slo: SloPolicy | None = None
    shard_weights: tuple[float, ...] | None = None
    audit: AuditConfig | None = None
    autoscale: AutoscaleConfig | None = None
    precompute: bool = False
    partition: str = "replicated"

    # ------------------------------------------------------------------
    # the unified config surface: dict round-trip + named presets
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Strict-JSON-safe dict covering every sub-config.

        Round-trips through :meth:`from_dict`; infinite SLO budgets are
        encoded as ``null`` so ``json.dumps(cfg.to_dict(),
        allow_nan=False)`` always succeeds.
        """

        def _slo_dict(slo: SloPolicy | None) -> dict | None:
            if slo is None:
                return None
            return {
                "classes": {
                    name: {
                        "name": cls.name,
                        "latency_budget": (
                            cls.latency_budget
                            if math.isfinite(cls.latency_budget)
                            else None
                        ),
                        "priority": cls.priority,
                        "shed_weight": cls.shed_weight,
                        "drain_weight": cls.drain_weight,
                        "admission_share": cls.admission_share,
                    }
                    for name, cls in sorted(slo.classes.items())
                },
                "assignments": dict(slo.assignments),
            }

        def _opt_asdict(value) -> dict | None:
            return None if value is None else dataclasses.asdict(value)

        return {
            "darknight": dataclasses.asdict(self.darknight),
            "max_batch_wait": self.max_batch_wait,
            "queue_capacity": self.queue_capacity,
            "n_workers": self.n_workers,
            "coalesce": self.coalesce,
            "reuse_coefficients": self.reuse_coefficients,
            "encrypt_requests": self.encrypt_requests,
            "stage_costs": _opt_asdict(self.stage_costs),
            "code_identity": self.code_identity,
            "adaptive": _opt_asdict(self.adaptive),
            "slo": _slo_dict(self.slo),
            "shard_weights": (
                None if self.shard_weights is None else list(self.shard_weights)
            ),
            "audit": _opt_asdict(self.audit),
            "autoscale": _opt_asdict(self.autoscale),
            "precompute": self.precompute,
            "partition": self.partition,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServingConfig":
        """Rebuild a config (all five sub-configs) from :meth:`to_dict`.

        Unknown keys raise :class:`~repro.errors.ConfigurationError`
        rather than being silently dropped — a typo in a ``--config``
        file must not quietly serve with defaults.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"serving config must be a dict, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown serving config keys {unknown} (known: {sorted(known)})"
            )
        kwargs = dict(data)

        def _build(key, factory):
            value = kwargs.get(key)
            if isinstance(value, dict):
                try:
                    kwargs[key] = factory(value)
                except TypeError as exc:
                    raise ConfigurationError(
                        f"bad serving config: {key}: {exc}"
                    ) from exc

        _build("darknight", lambda d: DarKnightConfig(**d))
        _build("stage_costs", lambda d: StageCostModel(**d))
        _build("adaptive", lambda d: AdaptiveBatchingConfig(**d))
        _build("audit", lambda d: AuditConfig(**d))
        _build("autoscale", lambda d: AutoscaleConfig(**d))

        slo = kwargs.get("slo")
        if isinstance(slo, dict):
            classes = {}
            for name, spec in slo.get("classes", {}).items():
                spec = dict(spec)
                spec.setdefault("name", name)
                if spec.get("latency_budget") is None:
                    spec["latency_budget"] = math.inf
                try:
                    classes[name] = SloClass(**spec)
                except TypeError as exc:
                    raise ConfigurationError(
                        f"bad serving config: slo class {name!r}: {exc}"
                    ) from exc
            kwargs["slo"] = SloPolicy(
                classes=classes, assignments=dict(slo.get("assignments", {}))
            )
        weights = kwargs.get("shard_weights")
        if weights is not None:
            kwargs["shard_weights"] = tuple(float(w) for w in weights)
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ConfigurationError(f"bad serving config: {exc}") from exc

    @classmethod
    def preset(cls, name: str, **overrides) -> "ServingConfig":
        """A named starting point: ``latency``, ``throughput``, ``audited``.

        ``latency`` learns per-shard flush deadlines with a tight static
        ceiling and a 2-deep pipeline; ``throughput`` doubles ``K`` and
        relaxes the deadline so size triggers dominate; ``audited`` turns
        on integrity shares plus the verifiable audit trail.  Keyword
        ``overrides`` replace any top-level field after the preset.
        """
        if name == "latency":
            base = cls(
                darknight=DarKnightConfig(pipeline_depth=2),
                max_batch_wait=2e-3,
                adaptive=AdaptiveBatchingConfig(),
            )
        elif name == "throughput":
            base = cls(
                darknight=DarKnightConfig(virtual_batch_size=8, pipeline_depth=2),
                max_batch_wait=2e-2,
            )
        elif name == "audited":
            base = cls(
                darknight=DarKnightConfig(integrity=True),
                audit=AuditConfig(),
            )
        else:
            raise ConfigurationError(
                f"unknown serving preset {name!r} (available: {list(PRESETS)})"
            )
        return dataclasses.replace(base, **overrides) if overrides else base


#: Names :meth:`ServingConfig.preset` accepts.
PRESETS = ("latency", "throughput", "audited")


@dataclass
class ServingReport:
    """What a serving run produced: outcomes plus aggregate statistics."""

    outcomes: list[RequestOutcome]
    metrics: ServerMetrics
    handshakes: int
    tenants: list[str]
    link_bytes: int
    shards: int = 1
    failovers: int = 0
    migrations: int = 0
    #: Failover retries skipped because the class budget was exhausted.
    retries_skipped_budget: int = 0
    #: Failover retries shed because the remaining budget could not cover
    #: the measured per-batch service-time floor.
    retries_skipped_floor: int = 0
    #: How the model mapped onto the shards (``replicated``/``layered:N``).
    partition: str = "replicated"
    #: Per-shard learned-policy telemetry (None entries = static shards).
    adaptive: list | None = None
    #: Per-shard audit chain heads (``None`` when auditing is disabled).
    audit_roots: dict[int, str] | None = None
    #: Elastic-membership telemetry (``None`` when autoscaling is off).
    autoscale: dict | None = None
    #: Mask-pool / weight-cache telemetry (``None`` when precompute off).
    precompute: dict | None = None

    @property
    def completed(self) -> list[RequestOutcome]:
        """Outcomes that produced a verified prediction."""
        return [o for o in self.outcomes if o.ok]

    def render(self) -> str:
        """The metrics table plus session- and shard-layer facts."""
        lines = [self.metrics.render()]
        lines.append(
            f"sessions: {len(self.tenants)} tenants,"
            f" {self.handshakes} attestation handshakes,"
            f" {self.link_bytes:,} link bytes"
        )
        lines.append(
            f"shards: {self.shards} enclave shard(s),"
            f" partition {self.partition},"
            f" {self.failovers} failovers,"
            f" {self.migrations} session migrations"
            + (
                f", {self.retries_skipped_budget} retries skipped (budget)"
                if self.retries_skipped_budget
                else ""
            )
            + (
                f", {self.retries_skipped_floor} retries shed (service floor)"
                if self.retries_skipped_floor
                else ""
            )
        )
        if self.autoscale is not None:
            lines.append(
                f"autoscale: {self.autoscale['scale_outs']} scale-outs,"
                f" {self.autoscale['scale_ins']} scale-ins,"
                f" peak {self.autoscale['peak_shards']} shards,"
                f" {self.autoscale['shard_seconds']:.3f} shard-seconds"
            )
        if self.precompute is not None:
            hit_rate = self.precompute["hit_rate"]
            lines.append(
                "precompute: pool hit rate "
                + ("n/a" if hit_rate is None else f"{hit_rate:.3f}")
                + f", {self.precompute['refills']} refills,"
                f" {self.precompute['pooled_bytes_peak']:,} bytes pooled (peak),"
                f" {self.precompute['weights_reused']} weight reuses"
            )
        if self.audit_roots is not None:
            heads = ", ".join(
                f"shard {sid}: {root[:12]}…"
                for sid, root in sorted(self.audit_roots.items())
            )
            lines.append(f"audit chain heads: {heads}")
        learned = [snap for snap in (self.adaptive or []) if snap is not None]
        if learned:
            waits = ", ".join(
                "n/a" if s["current_wait"] is None else f"{s['current_wait'] * 1e3:.2f}ms"
                for s in learned
            )
            lines.append(
                f"adaptive: K={learned[0]['batch_size']}"
                f" (base {learned[0]['base_batch_size']}),"
                f" learned deadline(s) {waits}"
            )
        return "\n".join(lines)


class PrivateInferenceServer:
    """Serves masked inference to many tenants over sharded trusted stacks.

    Parameters
    ----------
    network:
        The trained model all tenants query.
    config:
        Serving parameters; :attr:`ServingConfig.darknight` sizes each
        enclave/GPU shard and sets the shard count.
    cluster:
        Optionally inject a cluster (e.g. with fault injectors) — the
        integrity tests serve through a byzantine GPU this way.  Only
        valid with ``num_shards=1`` (a multi-shard deployment provisions
        one cluster per shard).
    enclave:
        Optionally inject a pre-provisioned enclave (``num_shards=1``
        only, for the same reason).
    """

    def __init__(
        self,
        network: Sequential,
        config: ServingConfig | None = None,
        cluster: GpuCluster | None = None,
        enclave: Enclave | None = None,
    ) -> None:
        self.config = config or ServingConfig()
        dk = self.config.darknight
        if self.config.reuse_coefficients and dk.fresh_coefficients:
            dk = dataclasses.replace(dk, fresh_coefficients=False)
        if not dk.per_sample_normalization and dk.dynamic_normalization:
            # Served logits must not depend on batch composition (and so
            # not on coalescing, pipelining, or shard routing choices).
            dk = dataclasses.replace(dk, per_sample_normalization=True)
        if self.config.precompute and not dk.precompute:
            dk = dataclasses.replace(dk, precompute=True)
        autoscale = self.config.autoscale
        if autoscale is not None:
            # num_shards becomes the *initial* count, clamped into the
            # autoscaler's bounds.
            initial = min(
                max(dk.num_shards, autoscale.min_shards), autoscale.max_shards
            )
            if initial != dk.num_shards:
                dk = dataclasses.replace(dk, num_shards=initial)
        # Every configuration error must fire *before* the provisioning
        # loop below: a failed construction may never leak attested
        # enclaves (or their GPU clusters) it cannot hand back.
        partition = PartitionSpec.parse(self.config.partition)
        if partition.layered:
            if autoscale is not None:
                raise ConfigurationError(
                    "layered partitioning does not compose with autoscale;"
                    " elastic shard membership is replicated-only"
                )
            if dk.num_shards % partition.n_stages != 0:
                raise ConfigurationError(
                    f"partition layered:{partition.n_stages} needs num_shards"
                    f" divisible by {partition.n_stages},"
                    f" got {dk.num_shards}"
                )
        #: Routing units: pipeline groups under layered partitioning,
        #: individual shards otherwise.
        n_units = dk.num_shards // partition.n_stages
        stage_ranges = None
        if partition.layered:
            # Planning needs only the network, so an impossible cut count
            # (more stages than plan steps) fails before provisioning.
            planner = LayerPartitionPlanner(network, self.config.stage_costs)
            stage_ranges = planner.plan(partition.n_stages)
        elastic_max = autoscale.max_shards if autoscale is not None else dk.num_shards
        if max(dk.num_shards, elastic_max) > 1 and (
            cluster is not None or enclave is not None
        ):
            raise ConfigurationError(
                "injected clusters/enclaves only compose with a single static"
                f" shard; got num_shards={dk.num_shards},"
                f" elastic max {elastic_max} — provision per-shard hardware"
                " through DarKnightConfig instead"
            )
        if (
            self.config.shard_weights is not None
            and len(self.config.shard_weights) != n_units
        ):
            raise ConfigurationError(
                f"need one shard weight per routing unit:"
                f" {len(self.config.shard_weights)} weights for"
                f" {n_units} units"
            )
        if self.config.adaptive is not None:
            # Size K against the EPC budget *before* provisioning: the
            # enclave encodes (and pads) at the provisioned K, so only a
            # construction-time clamp actually shrinks the working set.
            budget = int(
                (dk.epc_budget_bytes or EPC_USABLE_BYTES)
                * self.config.adaptive.epc_headroom
            )
            fit = epc_fitting_batch_size(
                dk.virtual_batch_size,
                estimate_slot_bytes(network),
                budget,
                dk.collusion_tolerance,
                dk.extra_shares,
                dk.pipeline_depth,
            )
            if fit < dk.virtual_batch_size:
                dk = dataclasses.replace(dk, virtual_batch_size=fit)
        self.link = LinkModel()
        #: The effective (possibly EPC-clamped) DarKnight parameters.
        self.darknight = dk
        #: Kept for elastic scale-out: new shards provision the same model.
        self.network = network
        self.autoscale_config = autoscale
        self.autoscaler = ShardAutoscaler(autoscale)
        self.shards = [
            EnclaveShard.provision(
                shard_id,
                network,
                dk,
                code_identity=self.config.code_identity,
                stage_costs=self.config.stage_costs,
                cluster=cluster if shard_id == 0 else None,
                enclave=enclave if shard_id == 0 else None,
                link=self.link,
            )
            for shard_id in range(dk.num_shards)
        ]
        # Single-shard compatibility handles (shard 0 is the whole stack
        # when num_shards=1).
        self.enclave = self.shards[0].enclave
        self.engine = self.shards[0].engine
        self.mesh = AttestationMesh(
            self.shards, expected_code_identity=self.config.code_identity
        ).establish()
        #: The parsed partition mode and its plan cuts (layered only).
        self.partition = partition
        self.stage_ranges = stage_ranges
        if partition.layered:
            n = partition.n_stages
            # Hop channels key against the *shard-level* mesh: every
            # consecutive member pair was pairwise-attested above.
            self.groups: list[PipelineGroup] | None = [
                PipelineGroup(
                    g,
                    self.shards[g * n : (g + 1) * n],
                    stage_ranges,
                    self.mesh,
                    link=self.link,
                    seed=dk.seed if dk.seed is not None else 0,
                )
                for g in range(n_units)
            ]
            self.units: list = list(self.groups)
            # Sessions route on *units*, so they need a unit-level mesh:
            # each group's entry enclave re-attests under its group id.
            self.unit_mesh = AttestationMesh(
                self.units, expected_code_identity=self.config.code_identity
            ).establish()
        else:
            self.groups = None
            self.units = list(self.shards)
            self.unit_mesh = self.mesh
        self.router = ShardRouter(
            n_units,
            weights=(
                list(self.config.shard_weights)
                if self.config.shard_weights is not None
                else None
            ),
            slo=self.config.slo,
            group_members=(
                {
                    group.shard_id: tuple(m.shard_id for m in group.members)
                    for group in self.groups
                }
                if self.groups is not None
                else None
            ),
        )
        self.sessions = ShardedSessionManager(
            self.units,
            router=self.router,
            mesh=self.unit_mesh,
            link=self.link,
            expected_code_identity=self.config.code_identity,
            seed=dk.seed,
        )
        self.queues = [
            RequestQueue(self.config.queue_capacity, slo=self.config.slo)
            for _ in self.units
        ]
        self.queue = self.queues[0]
        batch_size = dk.virtual_batch_size if self.config.coalesce else 1
        policies = None
        if self.config.adaptive is not None:
            policies = build_policies(
                n_units,
                batch_size,
                self.config.max_batch_wait,
                self.config.adaptive,
                network=network,
                epc_budget_bytes=dk.epc_budget_bytes or EPC_USABLE_BYTES,
                collusion_tolerance=dk.collusion_tolerance,
                extra_shares=dk.extra_shares,
                pipeline_depth=dk.pipeline_depth,
                slo=self.config.slo,
            )
        self.scheduler = ShardedBatchScheduler(
            self.queues,
            batch_size,
            self.config.max_batch_wait,
            slots=dk.virtual_batch_size,
            policies=policies,
        )
        self.metrics = ServerMetrics(slo=self.config.slo)
        #: The verifiable audit trail (``None`` unless ``config.audit``).
        self.audit: AuditTrail | None = None
        if self.config.audit is not None:
            self.audit = AuditTrail(
                self.config.audit,
                darknight=dk,
                num_shards=dk.num_shards,
                on_commit=self.metrics.record_commit,
            )
        self.pool = InferenceWorkerPool(
            n_workers=self.config.n_workers,
            shards=self.units,
            router=self.router,
            sessions=self.sessions,
            on_feedback=(
                self.scheduler.observe_feedback if policies is not None else None
            ),
            slo=self.config.slo,
            audit=self.audit,
        )
        self._outcomes: list[RequestOutcome] = []
        self._next_request_id = 0
        # Completion times of dispatched requests, for in-flight accounting.
        self._inflight: list[float] = []
        #: The trace replay's simulated clock (drives autoscale timing).
        self._clock = 0.0
        self._slot_bytes = estimate_slot_bytes(network)
        for shard in self.shards:
            self.autoscaler.note_provisioned(shard.shard_id, 0.0)
        self._apply_epc_pool()

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def serve_trace(self, trace: Iterable[TraceRequest]) -> ServingReport:
        """Replay a request trace to completion and report.

        Arrivals are processed in time order; between consecutive
        arrivals any pending deadline flush fires at its exact deadline.
        After the last arrival the queues drain deadline-by-deadline, so
        every admitted request completes.
        """
        events = sorted(trace, key=lambda r: r.time)
        now = 0.0
        for event in events:
            now = max(now, event.time)
            self._clock = max(self._clock, now)
            self._run_batches(self.scheduler.collect_expired(now))
            self._autoscale_tick(now)
            self._admit(event, now)
            self._run_batches(self.scheduler.collect_ready(now))
        self._run_batches(self.scheduler.collect_expired(_DRAIN))
        return self.report()

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def _live_shards(self) -> list[EnclaveShard]:
        """Shards currently serving traffic (draining included)."""
        return [s for s in self.shards if s.healthy and not s.retired]

    def _new_policy(self):
        """One adaptive flush policy for a freshly provisioned shard."""
        if self.config.adaptive is None:
            return None
        dk = self.darknight
        return build_policies(
            1,
            dk.virtual_batch_size if self.config.coalesce else 1,
            self.config.max_batch_wait,
            self.config.adaptive,
            network=self.network,
            epc_budget_bytes=dk.epc_budget_bytes or EPC_USABLE_BYTES,
            collusion_tolerance=dk.collusion_tolerance,
            extra_shares=dk.extra_shares,
            pipeline_depth=dk.pipeline_depth,
            slo=self.config.slo,
        )[0]

    def provision_shard(self, now: float = 0.0) -> int:
        """Scale out: bring one new enclave shard into the live deployment.

        The join is end to end: provision the trusted stack, attest it
        incrementally against the live mesh members, insert its virtual
        nodes into the consistent-hash ring (bounded tenant re-pinning),
        migrate the re-pinned tenants' attested sessions over the mesh,
        re-home their already-queued requests, and open its audit log
        when the trail is on.  Logits are unaffected by construction:
        per-sample normalization makes every response independent of
        which shard (and which co-batch) served it.
        """
        if self.partition.layered:
            raise ConfigurationError(
                "dynamic shard membership requires partition='replicated';"
                " a layered deployment's stage pipelines are fixed at"
                " construction"
            )
        shard_id = len(self.shards)
        shard = EnclaveShard.provision(
            shard_id,
            self.network,
            self.darknight,
            code_identity=self.config.code_identity,
            stage_costs=self.config.stage_costs,
            link=self.link,
        )
        shard.provisioned_at = now
        self.shards.append(shard)
        self.mesh.extend(shard)
        max_migrations = (
            self.autoscale_config.max_session_migrations
            if self.autoscale_config is not None
            else None
        )
        ring_id, remap = self.router.add_shard(max_migrations=max_migrations)
        if ring_id != shard_id:
            raise ShardError(
                f"router shard id {ring_id} out of sync with deployment"
                f" shard id {shard_id}"
            )
        queue = RequestQueue(self.config.queue_capacity, slo=self.config.slo)
        self.queues.append(queue)
        self.scheduler.add_shard(queue, policy=self._new_policy())
        self.sessions.extend(shard)
        self.sessions.migrate(remap, now)
        # Already-admitted requests follow their tenant's new pin so the
        # new shard takes load immediately (and the old shard's queue
        # stops aging work it no longer owns).
        for tenant in remap:
            for source in self.queues[:-1]:
                moved = source.extract_tenant(tenant)
                if moved:
                    queue.absorb(moved)
        self.pool.join(shard)
        if self.audit is not None:
            self.audit.add_shard(shard_id)
            # The join is chain-visible: the new shard's service life
            # opens with a first-class membership entry on its own log.
            self.audit.record_membership(
                "provision",
                shard_id,
                now,
                details={"num_shards": len(self.shards)},
            )
        self.autoscaler.note_provisioned(shard_id, now)
        self.metrics.record_scale(ACTION_SCALE_OUT)
        self._apply_epc_pool()
        self._invalidate_precompute()
        return shard_id

    def decommission_shard(
        self, shard_id: int | None = None, now: float = 0.0
    ) -> int:
        """Scale in, drain-before-kill: flush, migrate, then retire.

        The victim (the least-loaded live shard unless ``shard_id`` names
        one) first stops receiving new tenants (router drain), then its
        queued windows flush through its own pipeline — audit-committed
        when the trail is on — then its tenants re-place through the ring
        and their attested sessions migrate over the still-verified mesh
        links, and only then is the shard decommissioned.  A refused
        migration (unverified link) degrades safely: the victim's
        sessions are dropped and each tenant re-attests on its new shard
        at next contact.  Raises :class:`~repro.errors.ShardError` when
        removal would leave no serving shard.
        """
        live = self._live_shards()
        if shard_id is None:
            victim = min(
                live,
                key=lambda s: (
                    self.queues[s.shard_id].depth,
                    self.router.loads()[s.shard_id],
                    -s.shard_id,
                ),
            )
        else:
            matches = [s for s in live if s.shard_id == shard_id]
            if not matches:
                raise ShardError(f"shard {shard_id} is not live; cannot drain")
            victim = matches[0]
        if self.partition.layered:
            raise ConfigurationError(
                "dynamic shard membership requires partition='replicated';"
                " a layered deployment's stage pipelines are fixed at"
                " construction"
            )
        vid = victim.shard_id
        self.router.begin_drain(vid)
        victim.begin_drain()
        if self.audit is not None:
            # Chain the wind-down *before* the final flush: every window
            # after this entry is the drain itself.
            self.audit.record_membership("drain", vid, now)
        # Flush the victim's pending windows through its own pipeline
        # (these commit to its audit chain like any other window).
        self._run_batches(self.scheduler.shards[vid].drain(now))
        if not victim.healthy:
            # Died mid-flush: the failover path already migrated its
            # sessions and re-pinned its tenants; nothing left to drain.
            return vid
        remap = self.router.remove_shard(vid)
        try:
            self.sessions.migrate(remap, now)
        except AttestationError:
            # Refused migration: sessions stay put until retire() drops
            # them below; tenants re-attest lazily on their new shard.
            pass
        self.sessions.retire(vid)
        self.pool.retire(vid)
        self.mesh.retire(vid)
        self.scheduler.retire_shard(vid)
        victim.decommission(now)
        if self.audit is not None:
            # The chain's final word on the shard: retired, with its
            # lifetime dispatch count frozen into the event leaf.
            self.audit.record_membership(
                "retire",
                vid,
                now,
                details={"batches_run": int(victim.batches_run)},
            )
        self.autoscaler.note_retired(vid, now)
        self.metrics.record_scale(ACTION_SCALE_IN)
        self._apply_epc_pool()
        self._invalidate_precompute()
        return vid

    def _invalidate_precompute(self) -> None:
        """Drop every live shard's cached weight encodings.

        Called after each membership change: a provision or retire
        re-shapes routing and (under a shared EPC pool) the coalescing
        target, so cached per-layer encodings must be re-validated by
        the next window rather than trusted across the topology change.
        Mask pools are deliberately untouched — their counters must keep
        advancing for pooled/inline bit-identity.
        """
        for shard in self._live_shards():
            backend = getattr(shard, "backend", None)
            invalidate = getattr(backend, "invalidate_precompute", None)
            if callable(invalidate):
                invalidate()

    def _precompute_report(self) -> dict | None:
        """Aggregate pool/weight-cache telemetry across live shards.

        Counts sum; the hit rate is recomputed from the summed draws
        (``None`` before any draw — strict-JSON, never ``NaN``); the
        occupancy averages over shards that have registered streams.
        ``None`` when no live backend runs in precompute mode.
        """
        snaps = []
        for shard in self._live_shards():
            backend = getattr(shard, "backend", None)
            snap_fn = getattr(backend, "precompute_snapshot", None)
            snap = snap_fn() if callable(snap_fn) else None
            if snap is not None:
                snaps.append(snap)
        if not snaps:
            return None
        agg = {
            key: sum(s[key] for s in snaps)
            for key in (
                "streams",
                "hits",
                "misses",
                "refills",
                "pooled_bytes",
                "pooled_bytes_peak",
                "weights_staged",
                "weights_reused",
                "cached_layers",
            )
        }
        draws = agg["hits"] + agg["misses"]
        agg["hit_rate"] = None if draws == 0 else agg["hits"] / draws
        occupancies = [s["occupancy"] for s in snaps if s["occupancy"] is not None]
        agg["occupancy"] = (
            None if not occupancies else sum(occupancies) / len(occupancies)
        )
        scratch = active_scratch()
        agg["scratch"] = None if scratch is None else scratch.snapshot()
        return agg

    def _apply_epc_pool(self) -> None:
        """Re-size ``K`` between windows against the shared EPC pool.

        With ``autoscale.epc_pool_bytes`` set, the deployment's EPC is a
        shared budget: fewer live shards each get a larger slice (larger
        coalescing target), more shards a smaller one.  The cap only ever
        *shrinks* batches below the provisioned ``K`` — the enclaves
        encode at the provisioned size, so per-sample normalization keeps
        logits bit-identical at every cap.
        """
        asc = self.autoscale_config
        if asc is None or asc.epc_pool_bytes is None:
            return
        headroom = (
            self.config.adaptive.epc_headroom
            if self.config.adaptive is not None
            else 0.9
        )
        per_shard = int(
            asc.epc_pool_bytes / max(1, len(self._live_shards())) * headroom
        )
        dk = self.darknight
        fit = epc_fitting_batch_size(
            dk.virtual_batch_size,
            self._slot_bytes,
            per_shard,
            dk.collusion_tolerance,
            dk.extra_shares,
            dk.pipeline_depth,
        )
        self.scheduler.set_batch_cap(
            fit if fit < dk.virtual_batch_size else None
        )

    def _autoscale_tick(self, now: float) -> None:
        """Run one control-loop evaluation and execute its decision."""
        if self.autoscale_config is None:
            return
        live = self._live_shards()
        if not live:
            return
        depths = {s.shard_id: self.queues[s.shard_id].depth for s in live}
        busy = {s.shard_id: s.busy_time for s in live}
        attainment = self.metrics.slo_attainment()
        action, reason = self.autoscaler.evaluate(
            now,
            depths,
            busy,
            attainment=attainment if math.isfinite(attainment) else None,
        )
        if action == ACTION_SCALE_OUT:
            shard_id = self.provision_shard(now)
        elif action == ACTION_SCALE_IN:
            try:
                shard_id = self.decommission_shard(now=now)
            except ShardError:
                return
        else:
            return
        self.autoscaler.record(
            action, shard_id, len(self._live_shards()), now, reason
        )

    def _inflight_at(self, now: float) -> int:
        """Dispatched requests whose (simulated) completion is still ahead."""
        while self._inflight and self._inflight[0] <= now:
            heapq.heappop(self._inflight)
        return len(self._inflight)

    def _admit(self, event: TraceRequest, now: float) -> None:
        """Route, attest/decrypt one arrival and queue it (or shed it).

        A total outage (every shard failed) turns the arrival into a
        ``shard_failed`` outcome instead of crashing the trace replay.
        """
        try:
            shard_id = self.router.shard_for(event.tenant)
        except ShardError as exc:
            self._outcomes.append(
                RequestOutcome(
                    request_id=self._next_request_id,
                    tenant=event.tenant,
                    status=STATUS_SHARD_FAILED,
                    arrival_time=now,
                    error=str(exc),
                )
            )
            self._next_request_id += 1
            self.metrics.record_outcome(self._outcomes[-1])
            return
        session = self.sessions.connect(event.tenant, now)
        x = np.asarray(event.x, dtype=np.float64)
        if self.config.encrypt_requests:
            x = session.decrypt_request(session.encrypt_request(x))
        request = PendingRequest(
            request_id=self._next_request_id,
            tenant=event.tenant,
            x=x,
            arrival_time=now,
            enqueue_time=now,
        )
        self._next_request_id += 1
        try:
            # Admitted-but-incomplete = queued (all shards) + in flight
            # behind busy workers; bounding their sum is what keeps
            # worst-case latency finite when the offered load exceeds
            # pipeline capacity.  Under an SLO policy a full deployment
            # first tries to evict the newest lowest-priority pending
            # request (across every shard queue) instead of shedding a
            # higher-priority arrival.
            if (
                self._inflight_at(now) + self.scheduler.queued
                >= self.config.queue_capacity
            ):
                victim = self._evict_for(request)
                if victim is None:
                    raise BackpressureError(
                        f"{len(self._inflight)} requests in flight and"
                        f" {self.scheduler.queued} queued >= capacity"
                        f" {self.config.queue_capacity}; shedding request"
                        f" {request.request_id} from {request.tenant!r}"
                    )
                self._record_eviction(victim, request)
            evicted = self.queues[shard_id].push(request)
            if evicted is not None:
                # Unreachable today: per-queue capacity equals the
                # deployment bound, so a full shard queue implies the
                # deployment check above already evicted from that very
                # queue.  Kept (not asserted away) so the accounting
                # stays correct if per-shard bounds ever shrink below
                # the deployment capacity.
                self._record_eviction(evicted, request)
            self.scheduler.observe_arrival(shard_id, now)
        except BackpressureError as exc:
            kind = SHED_QUOTA if isinstance(exc, QuotaExceededError) else SHED_ADMISSION
            self.metrics.record_shed(event.tenant, kind=kind)
            self._outcomes.append(
                RequestOutcome(
                    request_id=request.request_id,
                    tenant=event.tenant,
                    status=STATUS_SHED,
                    arrival_time=now,
                    error=str(exc),
                )
            )

    def _evict_for(self, request: PendingRequest) -> PendingRequest | None:
        """Evict the best lower-priority victim across every shard queue.

        Candidates are compared with the queue's own ordering (lowest
        class priority, highest shed weight, newest), so the deployment
        sheds the globally least-defensible pending request.  ``None``
        when no pending request ranks strictly below the arrival.
        """
        if self.config.slo is None:
            return None
        priority = self.config.slo.priority_for(request.tenant)
        best_queue = None
        best_key = None
        for queue in self.queues:
            candidate = queue.peek_eviction_candidate(priority)
            if candidate is None:
                continue
            if best_key is None or candidate[0] < best_key:
                best_key, best_queue = candidate[0], queue
        if best_queue is None:
            return None
        return best_queue.evict_newest_below(priority)

    def _record_eviction(
        self, victim: PendingRequest, arrival: PendingRequest
    ) -> None:
        """Account one pending request evicted for a premium arrival."""
        self.metrics.record_shed(victim.tenant, kind=SHED_EVICTED)
        self._outcomes.append(
            RequestOutcome(
                request_id=victim.request_id,
                tenant=victim.tenant,
                status=STATUS_SHED,
                arrival_time=victim.arrival_time,
                error=(
                    f"evicted for higher-priority request"
                    f" {arrival.request_id} from {arrival.tenant!r}"
                ),
            )
        )

    def _run_batches(self, batches) -> None:
        """Dispatch a window of flushed batches and account their outcomes.

        The whole window goes to the pool in one call so each shard's
        batches overlap inside that shard's staged pipeline (encode
        ``n+1`` while ``n`` computes), with different shards progressing
        on parallel timelines.
        """
        if not batches:
            return
        for batch in batches:
            self.metrics.record_batch(batch)
        outcomes = self.pool.dispatch_window(list(batches))
        for outcome in outcomes:
            heapq.heappush(self._inflight, outcome.completion_time)
            self.metrics.record_outcome(outcome)
            if outcome.ok and self.config.encrypt_requests:
                session = self.sessions.connect(outcome.tenant)
                envelope = session.encrypt_response(outcome.logits)
                session.decrypt_response(envelope)
        self._outcomes.extend(outcomes)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> ServingReport:
        """Snapshot the run so far."""
        end = self._clock
        for outcome in self._outcomes:
            if outcome.completion_time is not None:
                end = max(end, outcome.completion_time)
        precompute = self._precompute_report()
        self.metrics.record_precompute(precompute)
        return ServingReport(
            outcomes=list(self._outcomes),
            metrics=self.metrics,
            handshakes=self.sessions.handshakes_performed,
            tenants=self.sessions.active_tenants,
            link_bytes=self.link.total_bytes,
            shards=len(self.shards),
            failovers=self.pool.failovers,
            migrations=self.sessions.migrations,
            retries_skipped_budget=self.pool.retries_skipped_budget,
            retries_skipped_floor=self.pool.retries_skipped_floor,
            partition=str(self.partition),
            adaptive=self.scheduler.policy_snapshots(),
            audit_roots=self.audit.chain_roots() if self.audit is not None else None,
            autoscale=(
                self.autoscaler.snapshot(end)
                if self.autoscale_config is not None
                else None
            ),
            precompute=precompute,
        )
