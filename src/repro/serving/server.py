"""The multi-tenant private-inference server (offline trace driver).

Composes the serving subsystem end to end::

    trace -> SessionManager (attest once / tenant, decrypt)
          -> RequestQueue (bounded, shed-load)
          -> VirtualBatchScheduler (coalesce, size-or-deadline flush)
          -> InferenceWorkerPool (shared staged pipeline: encode -> GPU
             dispatch -> decode, integrity-verified, batches overlapping
             on one persistent enclave/GPU timeline)
          -> ServerMetrics / ServingReport

There is no network dependency: :meth:`PrivateInferenceServer.serve_trace`
replays a time-stamped request trace against a simulated clock, firing
deadline flushes exactly when a live server's timer would have.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.comm import LinkModel
from repro.enclave import Enclave
from repro.errors import BackpressureError
from repro.gpu import GpuCluster
from repro.nn import Sequential
from repro.pipeline.timing import StageCostModel
from repro.runtime.client import DEFAULT_CODE_IDENTITY
from repro.runtime.config import DarKnightConfig
from repro.runtime.darknight import DarKnightBackend
from repro.runtime.inference import PrivateInferenceEngine
from repro.serving.metrics import ServerMetrics
from repro.serving.queue import RequestQueue
from repro.serving.requests import STATUS_SHED, PendingRequest, RequestOutcome
from repro.serving.scheduler import VirtualBatchScheduler
from repro.serving.session import SessionManager
from repro.serving.trace import TraceRequest
from repro.serving.worker import InferenceWorkerPool

#: Sentinel meaning "run until every queued request has drained".
_DRAIN = float("inf")


@dataclass(frozen=True)
class ServingConfig:
    """Everything that parameterises a serving deployment.

    Parameters
    ----------
    darknight:
        The masking/session parameters shared by all tenants (the
        virtual-batch size ``K`` doubles as the coalescing target).
    max_batch_wait:
        Deadline (simulated seconds) before a partial batch is forced out.
    queue_capacity:
        Bound on *admitted-but-incomplete* requests — queued plus in
        flight behind busy workers; beyond it the server sheds load, so
        sustained overload surfaces as shed requests instead of
        unbounded latency.
    n_workers:
        Accepted for compatibility; concurrency now comes from the staged
        pipeline (``darknight.pipeline_depth``), not from duplicate
        worker lanes.
    coalesce:
        ``False`` dispatches every request alone (the naive baseline the
        serving benchmark measures against); the enclave still pads each
        lone sample to ``K`` slots, which is exactly the waste coalescing
        recovers.
    reuse_coefficients:
        Serve from the backend's coefficient cache (inference never needs
        the training escape hatch of fresh per-step coefficients).
    encrypt_requests:
        Run every sample and response through the tenant's AEAD channel.
    stage_costs:
        Simulated-time pricing for the pipeline stages.  Batch service
        times come from the staged executor's real per-stage timings
        (bytes masked, MACs run) on a persistent enclave/GPU timeline —
        ``darknight.pipeline_depth`` controls how many virtual batches
        overlap on it.
    """

    darknight: DarKnightConfig = field(default_factory=DarKnightConfig)
    max_batch_wait: float = 0.01
    queue_capacity: int = 256
    n_workers: int = 1
    coalesce: bool = True
    reuse_coefficients: bool = True
    encrypt_requests: bool = True
    stage_costs: StageCostModel | None = None
    code_identity: str = DEFAULT_CODE_IDENTITY


@dataclass
class ServingReport:
    """What a serving run produced: outcomes plus aggregate statistics."""

    outcomes: list[RequestOutcome]
    metrics: ServerMetrics
    handshakes: int
    tenants: list[str]
    link_bytes: int

    @property
    def completed(self) -> list[RequestOutcome]:
        """Outcomes that produced a verified prediction."""
        return [o for o in self.outcomes if o.ok]

    def render(self) -> str:
        """The metrics table plus session-layer facts."""
        lines = [self.metrics.render()]
        lines.append(
            f"sessions: {len(self.tenants)} tenants,"
            f" {self.handshakes} attestation handshakes,"
            f" {self.link_bytes:,} link bytes"
        )
        return "\n".join(lines)


class PrivateInferenceServer:
    """Serves masked inference to many tenants over one trusted stack.

    Parameters
    ----------
    network:
        The trained model all tenants query.
    config:
        Serving parameters; :attr:`ServingConfig.darknight` sizes the
        enclave/GPU side.
    cluster:
        Optionally inject a cluster (e.g. with fault injectors) — the
        integrity tests serve through a byzantine GPU this way.
    enclave:
        Optionally inject a pre-provisioned enclave.
    """

    def __init__(
        self,
        network: Sequential,
        config: ServingConfig | None = None,
        cluster: GpuCluster | None = None,
        enclave: Enclave | None = None,
    ) -> None:
        self.config = config or ServingConfig()
        dk = self.config.darknight
        if self.config.reuse_coefficients and dk.fresh_coefficients:
            dk = dataclasses.replace(dk, fresh_coefficients=False)
        self.enclave = enclave or Enclave(
            code_identity=self.config.code_identity, seed=dk.seed
        )
        self.link = LinkModel()
        backend = DarKnightBackend(
            dk, enclave=self.enclave, cluster=cluster, link=self.link
        )
        self.engine = PrivateInferenceEngine(
            network, backend=backend, stage_costs=self.config.stage_costs
        )
        self.sessions = SessionManager(
            self.enclave,
            link=self.link,
            expected_code_identity=self.config.code_identity,
            rng=np.random.default_rng(dk.seed),
        )
        self.queue = RequestQueue(self.config.queue_capacity)
        batch_size = dk.virtual_batch_size if self.config.coalesce else 1
        self.scheduler = VirtualBatchScheduler(
            self.queue,
            batch_size,
            self.config.max_batch_wait,
            slots=dk.virtual_batch_size,
        )
        self.pool = InferenceWorkerPool(self.engine, n_workers=self.config.n_workers)
        self.metrics = ServerMetrics()
        self._outcomes: list[RequestOutcome] = []
        self._next_request_id = 0
        # Completion times of dispatched requests, for in-flight accounting.
        self._inflight: list[float] = []

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def serve_trace(self, trace: Iterable[TraceRequest]) -> ServingReport:
        """Replay a request trace to completion and report.

        Arrivals are processed in time order; between consecutive
        arrivals any pending deadline flush fires at its exact deadline.
        After the last arrival the queue drains deadline-by-deadline, so
        every admitted request completes.
        """
        events = sorted(trace, key=lambda r: r.time)
        now = 0.0
        for event in events:
            now = max(now, event.time)
            self._run_batches(self.scheduler.collect_expired(now))
            self._admit(event, now)
            self._run_batches(self.scheduler.collect_ready(now))
        self._run_batches(self.scheduler.collect_expired(_DRAIN))
        return self.report()

    def _inflight_at(self, now: float) -> int:
        """Dispatched requests whose (simulated) completion is still ahead."""
        while self._inflight and self._inflight[0] <= now:
            heapq.heappop(self._inflight)
        return len(self._inflight)

    def _admit(self, event: TraceRequest, now: float) -> None:
        """Attest/decrypt one arrival and queue it (or shed it)."""
        session = self.sessions.connect(event.tenant, now)
        x = np.asarray(event.x, dtype=np.float64)
        if self.config.encrypt_requests:
            x = session.decrypt_request(session.encrypt_request(x))
        request = PendingRequest(
            request_id=self._next_request_id,
            tenant=event.tenant,
            x=x,
            arrival_time=now,
            enqueue_time=now,
        )
        self._next_request_id += 1
        try:
            # Admitted-but-incomplete = queued + in flight behind busy
            # workers; bounding their sum is what keeps worst-case latency
            # finite when the offered load exceeds pipeline capacity.
            if (
                self._inflight_at(now) + self.queue.depth
                >= self.config.queue_capacity
            ):
                raise BackpressureError(
                    f"{len(self._inflight)} requests in flight and"
                    f" {self.queue.depth} queued >= capacity"
                    f" {self.config.queue_capacity}; shedding request"
                    f" {request.request_id} from {request.tenant!r}"
                )
            self.queue.push(request)
        except BackpressureError as exc:
            self.metrics.record_shed(event.tenant, now)
            self._outcomes.append(
                RequestOutcome(
                    request_id=request.request_id,
                    tenant=event.tenant,
                    status=STATUS_SHED,
                    arrival_time=now,
                    error=str(exc),
                )
            )

    def _run_batches(self, batches) -> None:
        """Dispatch a window of flushed batches and account their outcomes.

        The whole window goes to the pool in one call so its batches
        overlap inside the staged pipeline (encode ``n+1`` while ``n``
        computes) instead of serializing per dispatch.
        """
        if not batches:
            return
        for batch in batches:
            self.metrics.record_batch(batch)
        outcomes = self.pool.dispatch_window(list(batches))
        for outcome in outcomes:
            heapq.heappush(self._inflight, outcome.completion_time)
            self.metrics.record_outcome(outcome)
            if outcome.ok and self.config.encrypt_requests:
                session = self.sessions.connect(outcome.tenant)
                envelope = session.encrypt_response(outcome.logits)
                session.decrypt_response(envelope)
        self._outcomes.extend(outcomes)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> ServingReport:
        """Snapshot the run so far."""
        return ServingReport(
            outcomes=list(self._outcomes),
            metrics=self.metrics,
            handshakes=self.sessions.handshakes_performed,
            tenants=self.sessions.active_tenants,
            link_bytes=self.link.total_bytes,
        )
