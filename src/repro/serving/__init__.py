"""Multi-tenant private-inference serving with virtual-batch coalescing.

The paper amortizes enclave encode/decode over a virtual batch; this
package applies the same argument to *traffic*: independent single-sample
requests from many tenants are coalesced into full virtual batches under
a max-latency deadline, served over one or more enclave + GPU shards
(:mod:`repro.sharding`) behind per-tenant attested, shard-scoped
sessions.  Multiple shards progress on parallel enclave timelines behind
one scheduler; a cross-enclave attestation mesh lets sessions fail over
when a shard dies.
"""

from repro.audit import AuditConfig, AuditTrail
from repro.serving.adaptive import (
    AdaptiveBatchingConfig,
    AdaptiveFlushPolicy,
    WindowFeedback,
    epc_fitting_batch_size,
    estimate_slot_bytes,
    working_set_bytes,
)
from repro.serving.autoscale import (
    AutoscaleConfig,
    AutoscaleEvent,
    ShardAutoscaler,
)
from repro.serving.metrics import ServerMetrics
from repro.serving.queue import RequestQueue
from repro.serving.requests import (
    STATUS_DECODE_FAILED,
    STATUS_INTEGRITY_FAILED,
    STATUS_OK,
    STATUS_SHARD_FAILED,
    STATUS_SHED,
    PendingRequest,
    RequestOutcome,
    ScheduledBatch,
)
from repro.serving.scheduler import ShardedBatchScheduler, VirtualBatchScheduler
from repro.serving.server import (
    PRESETS,
    PrivateInferenceServer,
    ServingConfig,
    ServingReport,
)
from repro.serving.slo import (
    DEFAULT_SLO_CLASS,
    FLUSH_BUDGET_FRACTION,
    SloClass,
    SloPolicy,
    build_slo_policy,
)
from repro.serving.session import (
    ServingSession,
    SessionManager,
    ShardedSessionManager,
)
from repro.serving.trace import (
    TraceRequest,
    bursty_trace,
    phased_trace,
    ramping_trace,
    synthetic_trace,
    trace_from_arrays,
)
from repro.serving.worker import InferenceWorkerPool

__all__ = [
    "AuditConfig",
    "AuditTrail",
    "AdaptiveBatchingConfig",
    "AdaptiveFlushPolicy",
    "WindowFeedback",
    "epc_fitting_batch_size",
    "estimate_slot_bytes",
    "working_set_bytes",
    "PendingRequest",
    "RequestOutcome",
    "ScheduledBatch",
    "STATUS_OK",
    "STATUS_SHED",
    "STATUS_INTEGRITY_FAILED",
    "STATUS_DECODE_FAILED",
    "STATUS_SHARD_FAILED",
    "AutoscaleConfig",
    "AutoscaleEvent",
    "ShardAutoscaler",
    "PRESETS",
    "RequestQueue",
    "VirtualBatchScheduler",
    "ShardedBatchScheduler",
    "SloClass",
    "SloPolicy",
    "DEFAULT_SLO_CLASS",
    "FLUSH_BUDGET_FRACTION",
    "build_slo_policy",
    "ServingSession",
    "SessionManager",
    "ShardedSessionManager",
    "InferenceWorkerPool",
    "ServerMetrics",
    "PrivateInferenceServer",
    "ServingConfig",
    "ServingReport",
    "TraceRequest",
    "bursty_trace",
    "phased_trace",
    "ramping_trace",
    "synthetic_trace",
    "trace_from_arrays",
]
