"""Dynamic virtual-batch coalescing: flush on size or deadline.

The scheduler turns independent single-sample requests into the paper's
virtual batches.  A batch flushes the moment ``K`` requests are pending
(size trigger — full amortization of the enclave encode/decode), or when
the oldest pending request has waited ``max_wait`` simulated seconds
(deadline trigger — a partial batch ships padded rather than blowing the
latency budget).  ``batch_size=1`` degenerates to per-request dispatch,
which is exactly the baseline the serving benchmark compares against.

Flushed batches feed the staged pipeline: each batch's ``flush_time``
becomes its *release time* on the executor's shared timeline, and every
batch flushed in the same event-loop step shares one pipeline window —
so a deadline-flushed partial and the size-triggered batch behind it
overlap in simulated time (encode ``n+1`` while ``n`` computes) instead
of serializing through a per-batch service model.
"""

from __future__ import annotations

import itertools
import math

from repro.errors import ConfigurationError
from repro.serving.queue import RequestQueue
from repro.serving.requests import ScheduledBatch


class VirtualBatchScheduler:
    """Coalesces queued requests into :class:`ScheduledBatch` es.

    Parameters
    ----------
    queue:
        The bounded multi-tenant queue to drain.
    batch_size:
        Virtual-batch size ``K`` — requests coalesced per flush.
    max_wait:
        Max simulated seconds a request may sit queued before a partial
        batch is forced out (the serving latency SLO knob).
    slots:
        Virtual-batch slots a flushed batch occupies on the enclave/GPUs.
        Defaults to ``batch_size``; per-request dispatch sets
        ``batch_size=1`` with ``slots=K`` because the enclave still pads
        each lone sample to a full ``K``-slot encoding.
    shard_id:
        The enclave shard this scheduler's flushes are bound for.
    id_source:
        Shared batch-id counter; a sharded deployment passes one counter
        to every per-shard scheduler so batch ids stay globally unique.
    """

    def __init__(
        self,
        queue: RequestQueue,
        batch_size: int,
        max_wait: float = 0.01,
        slots: int | None = None,
        shard_id: int = 0,
        id_source: "itertools.count | None" = None,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch size must be >= 1, got {batch_size}")
        if max_wait <= 0:
            raise ConfigurationError(f"max wait must be > 0, got {max_wait}")
        self.queue = queue
        self.batch_size = batch_size
        self.max_wait = max_wait
        self.slots = max(batch_size, slots or batch_size)
        self.shard_id = shard_id
        self._ids = id_source if id_source is not None else itertools.count()
        self.batches_scheduled = 0

    def _make(self, requests, flush_time: float, trigger: str) -> ScheduledBatch:
        batch = ScheduledBatch(
            batch_id=next(self._ids),
            requests=requests,
            flush_time=flush_time,
            trigger=trigger,
            slots=self.slots,
            shard_id=self.shard_id,
        )
        self.batches_scheduled += 1
        return batch

    # ------------------------------------------------------------------
    # flush triggers
    # ------------------------------------------------------------------
    def collect_ready(self, now: float) -> list[ScheduledBatch]:
        """Flush every *full* batch available at ``now`` (size trigger)."""
        batches = []
        while self.queue.depth >= self.batch_size:
            batches.append(
                self._make(self.queue.pop_fair(self.batch_size), now, "size")
            )
        return batches

    def collect_expired(self, now: float) -> list[ScheduledBatch]:
        """Flush partial batches whose oldest request hit the deadline.

        Each flush is stamped with the *deadline* time (oldest enqueue +
        ``max_wait``), not ``now``: between trace arrivals the simulated
        server would have fired the flush timer at the deadline itself.
        Passing ``now = math.inf`` drains everything deadline-by-deadline.
        """
        batches = []
        while self.queue.depth:
            oldest = self.queue.oldest_enqueue_time()
            deadline = oldest + self.max_wait
            if deadline > now:
                break
            flush_at = deadline if math.isfinite(deadline) else oldest
            batches.append(
                self._make(self.queue.pop_fair(self.batch_size), flush_at, "deadline")
            )
        return batches

    def drain(self, now: float) -> list[ScheduledBatch]:
        """Flush everything immediately (server shutdown)."""
        batches = []
        while self.queue.depth:
            batches.append(
                self._make(self.queue.pop_fair(self.batch_size), now, "drain")
            )
        return batches


class ShardedBatchScheduler:
    """One coalescing scheduler per enclave shard, behind one interface.

    Tenants are pinned to shards, so coalescing is *per shard*: a batch
    only ever mixes requests destined for the same enclave.  Each shard
    keeps its own size/deadline triggers (a hot shard flushing early never
    forces a cold shard's partial out), while batch ids are drawn from one
    shared counter so outcomes stay globally attributable.  With one shard
    this degenerates exactly to a single :class:`VirtualBatchScheduler`.

    Parameters
    ----------
    queues:
        One bounded :class:`~repro.serving.queue.RequestQueue` per shard.
    batch_size / max_wait / slots:
        As for :class:`VirtualBatchScheduler`, applied uniformly.
    """

    def __init__(
        self,
        queues: list[RequestQueue],
        batch_size: int,
        max_wait: float = 0.01,
        slots: int | None = None,
    ) -> None:
        if not queues:
            raise ConfigurationError("sharded scheduler needs >= 1 queue")
        ids = itertools.count()
        self.shards = [
            VirtualBatchScheduler(
                queue, batch_size, max_wait, slots=slots, shard_id=i, id_source=ids
            )
            for i, queue in enumerate(queues)
        ]

    def collect_ready(self, now: float) -> list[ScheduledBatch]:
        """Flush every full batch available on any shard (size trigger)."""
        return [b for shard in self.shards for b in shard.collect_ready(now)]

    def collect_expired(self, now: float) -> list[ScheduledBatch]:
        """Flush deadline-expired partials on every shard, deadline order.

        Batches are merged across shards by flush time so the dispatch
        window sees one globally time-ordered stream, exactly as a single
        deadline timer would have fired them.
        """
        batches = [b for shard in self.shards for b in shard.collect_expired(now)]
        batches.sort(key=lambda b: (b.flush_time, b.batch_id))
        return batches

    def drain(self, now: float) -> list[ScheduledBatch]:
        """Flush everything on every shard immediately (shutdown)."""
        return [b for shard in self.shards for b in shard.drain(now)]

    @property
    def batches_scheduled(self) -> int:
        """Total batches flushed across all shards."""
        return sum(shard.batches_scheduled for shard in self.shards)

    @property
    def queued(self) -> int:
        """Pending requests across all shard queues."""
        return sum(shard.queue.depth for shard in self.shards)
