"""Dynamic virtual-batch coalescing: flush on size or deadline.

The scheduler turns independent single-sample requests into the paper's
virtual batches.  A batch flushes the moment ``K`` requests are pending
(size trigger — full amortization of the enclave encode/decode), or when
the oldest pending request has waited ``max_wait`` simulated seconds
(deadline trigger — a partial batch ships padded rather than blowing the
latency budget).  ``batch_size=1`` degenerates to per-request dispatch,
which is exactly the baseline the serving benchmark compares against.

Flushed batches feed the staged pipeline: each batch's ``flush_time``
becomes its *release time* on the executor's shared timeline, and every
batch flushed in the same event-loop step shares one pipeline window —
so a deadline-flushed partial and the size-triggered batch behind it
overlap in simulated time (encode ``n+1`` while ``n`` computes) instead
of serializing through a per-batch service model.
"""

from __future__ import annotations

import itertools
import math

from repro.errors import ConfigurationError
from repro.serving.adaptive import AdaptiveFlushPolicy, WindowFeedback
from repro.serving.queue import RequestQueue
from repro.serving.requests import ScheduledBatch


class VirtualBatchScheduler:
    """Coalesces queued requests into :class:`ScheduledBatch` es.

    Parameters
    ----------
    queue:
        The bounded multi-tenant queue to drain.
    batch_size:
        Virtual-batch size ``K`` — requests coalesced per flush.
    max_wait:
        Max simulated seconds a request may sit queued before a partial
        batch is forced out (the serving latency SLO knob).
    slots:
        Virtual-batch slots a flushed batch occupies on the enclave/GPUs.
        Defaults to ``batch_size``; per-request dispatch sets
        ``batch_size=1`` with ``slots=K`` because the enclave still pads
        each lone sample to a full ``K``-slot encoding.
    shard_id:
        The enclave shard this scheduler's flushes are bound for.
    id_source:
        Shared batch-id counter; a sharded deployment passes one counter
        to every per-shard scheduler so batch ids stay globally unique.
    policy:
        Optional :class:`~repro.serving.adaptive.AdaptiveFlushPolicy`.
        When set, the flush deadline is the policy's learned wait and the
        coalescing target is its EPC-capped batch size; when ``None``
        (the default) the static ``batch_size``/``max_wait`` knobs apply
        unchanged.
    """

    def __init__(
        self,
        queue: RequestQueue,
        batch_size: int,
        max_wait: float = 0.01,
        slots: int | None = None,
        shard_id: int = 0,
        id_source: "itertools.count | None" = None,
        policy: AdaptiveFlushPolicy | None = None,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch size must be >= 1, got {batch_size}")
        if max_wait <= 0:
            raise ConfigurationError(f"max wait must be > 0, got {max_wait}")
        self.queue = queue
        self.batch_size = batch_size
        self.max_wait = max_wait
        self.slots = max(batch_size, slots or batch_size)
        self.shard_id = shard_id
        self.policy = policy
        self._ids = id_source if id_source is not None else itertools.count()
        self.batches_scheduled = 0
        #: Optional elastic cap on the coalescing target — the EPC-pool
        #: re-size applied between windows as shards join or leave.
        self.batch_cap: int | None = None

    def _make(
        self,
        requests,
        flush_time: float,
        trigger: str,
        wait_used: float | None = None,
    ) -> ScheduledBatch:
        batch = ScheduledBatch(
            batch_id=next(self._ids),
            requests=requests,
            flush_time=flush_time,
            trigger=trigger,
            slots=self.slots,
            shard_id=self.shard_id,
        )
        self.batches_scheduled += 1
        if self.policy is not None:
            self.policy.observe_flush(
                trigger, batch.n_requests, wait_used, flush_time=flush_time
            )
        return batch

    # ------------------------------------------------------------------
    # adaptive hooks (no-ops in static mode)
    # ------------------------------------------------------------------
    @property
    def effective_batch_size(self) -> int:
        """The coalescing target in force: static ``K``, policy, or pool cap."""
        size = self.batch_size
        if self.policy is not None:
            size = min(size, self.policy.batch_size)
        if self.batch_cap is not None:
            size = min(size, self.batch_cap)
        return max(1, size)

    def current_wait(self) -> float:
        """The flush deadline in force for the oldest queued request."""
        if self.policy is None:
            return self.max_wait
        return self.policy.current_wait(pending=self.queue.depth)

    def observe_arrival(self, now: float) -> None:
        """Tell the policy one request was admitted to this shard's queue."""
        if self.policy is not None:
            self.policy.observe_arrival(now)

    def observe_feedback(self, feedback: WindowFeedback) -> None:
        """Fold one dispatched window's measured timings into the policy."""
        if self.policy is not None:
            self.policy.observe_window(feedback)

    # ------------------------------------------------------------------
    # flush triggers
    # ------------------------------------------------------------------
    def collect_ready(self, now: float) -> list[ScheduledBatch]:
        """Flush every *full* batch available at ``now`` (size trigger)."""
        batches = []
        while self.queue.depth >= self.effective_batch_size:
            batches.append(
                self._make(self.queue.pop_fair(self.effective_batch_size), now, "size")
            )
        return batches

    def collect_expired(self, now: float) -> list[ScheduledBatch]:
        """Flush partial batches whose tightest remaining budget expired.

        The flush deadline is the *minimum remaining budget* among queued
        requests (:meth:`~repro.serving.queue.RequestQueue.
        earliest_deadline`): each request must ship by ``enqueue +
        min(wait, class flush budget)``, so one premium request's
        contract pulls the whole partial forward while a queue of
        budget-less requests keeps exactly the classic ``oldest enqueue +
        wait`` deadline.  Each flush is stamped with the deadline time,
        not ``now``: between trace arrivals the simulated server would
        have fired the flush timer at the deadline itself.  In adaptive
        mode the wait is the policy's learned deadline, re-evaluated per
        flush as the queue drains.  Passing ``now = math.inf`` drains
        everything deadline-by-deadline.
        """
        batches = []
        while self.queue.depth:
            oldest = self.queue.oldest_enqueue_time()
            wait = self.current_wait()
            deadline = self.queue.earliest_deadline(wait)
            if deadline > now:
                break
            flush_at = deadline if math.isfinite(deadline) else oldest
            batches.append(
                self._make(
                    self.queue.pop_fair(self.effective_batch_size),
                    flush_at,
                    "deadline",
                    wait_used=flush_at - oldest,
                )
            )
        return batches

    def drain(self, now: float) -> list[ScheduledBatch]:
        """Flush everything immediately (server shutdown)."""
        batches = []
        while self.queue.depth:
            batches.append(
                self._make(
                    self.queue.pop_fair(self.effective_batch_size), now, "drain"
                )
            )
        return batches


class ShardedBatchScheduler:
    """One coalescing scheduler per enclave shard, behind one interface.

    Tenants are pinned to shards, so coalescing is *per shard*: a batch
    only ever mixes requests destined for the same enclave.  Each shard
    keeps its own size/deadline triggers (a hot shard flushing early never
    forces a cold shard's partial out), while batch ids are drawn from one
    shared counter so outcomes stay globally attributable.  With one shard
    this degenerates exactly to a single :class:`VirtualBatchScheduler`.

    Parameters
    ----------
    queues:
        One bounded :class:`~repro.serving.queue.RequestQueue` per shard.
    batch_size / max_wait / slots:
        As for :class:`VirtualBatchScheduler`, applied uniformly.
    policies:
        Optional per-shard :class:`~repro.serving.adaptive.
        AdaptiveFlushPolicy` list (one per queue — every shard adapts
        independently); ``None`` keeps every shard on the static knobs.
    """

    def __init__(
        self,
        queues: list[RequestQueue],
        batch_size: int,
        max_wait: float = 0.01,
        slots: int | None = None,
        policies: "list[AdaptiveFlushPolicy] | None" = None,
    ) -> None:
        if not queues:
            raise ConfigurationError("sharded scheduler needs >= 1 queue")
        if policies is not None and len(policies) != len(queues):
            raise ConfigurationError(
                f"need one policy per shard: {len(policies)} policies"
                f" for {len(queues)} queues"
            )
        self._ids = itertools.count()
        self._batch_size = batch_size
        self._max_wait = max_wait
        self._slots = slots
        self._retired: set[int] = set()
        self.shards = [
            VirtualBatchScheduler(
                queue,
                batch_size,
                max_wait,
                slots=slots,
                shard_id=i,
                id_source=self._ids,
                policy=policies[i] if policies is not None else None,
            )
            for i, queue in enumerate(queues)
        ]

    # ------------------------------------------------------------------
    # dynamic membership
    # ------------------------------------------------------------------
    def add_shard(
        self, queue: RequestQueue, policy: AdaptiveFlushPolicy | None = None
    ) -> int:
        """Attach a per-shard scheduler for a newly provisioned shard.

        The new scheduler shares the deployment's batch-id counter (ids
        stay globally unique across any membership history) and inherits
        the uniform coalescing knobs.  Returns the new shard id.
        """
        shard_id = len(self.shards)
        scheduler = VirtualBatchScheduler(
            queue,
            self._batch_size,
            self._max_wait,
            slots=self._slots,
            shard_id=shard_id,
            id_source=self._ids,
            policy=policy,
        )
        self.shards.append(scheduler)
        return shard_id

    def retire_shard(self, shard_id: int) -> None:
        """Stop collecting from a retired shard's scheduler.

        The shard's queue must already be empty (drained or re-homed);
        retiring a shard with pending requests would silently strand
        admitted work.
        """
        if not 0 <= shard_id < len(self.shards):
            raise ConfigurationError(f"unknown scheduler shard id {shard_id}")
        if self.shards[shard_id].queue.depth:
            raise ConfigurationError(
                f"scheduler shard {shard_id} still holds"
                f" {self.shards[shard_id].queue.depth} pending requests;"
                " drain or re-home before retiring"
            )
        self._retired.add(shard_id)

    def set_batch_cap(self, cap: int | None) -> None:
        """Apply an EPC-pool batch-size cap to every live shard."""
        for shard in self._live():
            shard.batch_cap = cap

    def _live(self):
        return (
            s for i, s in enumerate(self.shards) if i not in self._retired
        )

    def collect_ready(self, now: float) -> list[ScheduledBatch]:
        """Flush every full batch available on any shard (size trigger)."""
        return [b for shard in self._live() for b in shard.collect_ready(now)]

    def collect_expired(self, now: float) -> list[ScheduledBatch]:
        """Flush deadline-expired partials on every shard, deadline order.

        Batches are merged across shards by flush time so the dispatch
        window sees one globally time-ordered stream, exactly as a single
        deadline timer would have fired them.
        """
        batches = [b for shard in self._live() for b in shard.collect_expired(now)]
        batches.sort(key=lambda b: (b.flush_time, b.batch_id))
        return batches

    def drain(self, now: float) -> list[ScheduledBatch]:
        """Flush everything on every shard immediately (shutdown)."""
        return [b for shard in self._live() for b in shard.drain(now)]

    # ------------------------------------------------------------------
    # adaptive hooks (no-ops when no shard carries a policy)
    # ------------------------------------------------------------------
    def observe_arrival(self, shard_id: int, now: float) -> None:
        """Route one admitted arrival to its shard's policy."""
        self.shards[shard_id].observe_arrival(now)

    def observe_feedback(self, feedback: WindowFeedback) -> None:
        """Route one dispatched window's measured timings to its shard."""
        if 0 <= feedback.shard_id < len(self.shards):
            self.shards[feedback.shard_id].observe_feedback(feedback)

    def policy_snapshots(self) -> list[dict | None]:
        """Each shard's learned-policy telemetry (None for static shards)."""
        return [
            shard.policy.snapshot() if shard.policy is not None else None
            for shard in self.shards
        ]

    @property
    def batches_scheduled(self) -> int:
        """Total batches flushed across all shards."""
        return sum(shard.batches_scheduled for shard in self.shards)

    @property
    def queued(self) -> int:
        """Pending requests across all shard queues."""
        return sum(shard.queue.depth for shard in self.shards)
