"""Dynamic virtual-batch coalescing: flush on size or deadline.

The scheduler turns independent single-sample requests into the paper's
virtual batches.  A batch flushes the moment ``K`` requests are pending
(size trigger — full amortization of the enclave encode/decode), or when
the oldest pending request has waited ``max_wait`` simulated seconds
(deadline trigger — a partial batch ships padded rather than blowing the
latency budget).  ``batch_size=1`` degenerates to per-request dispatch,
which is exactly the baseline the serving benchmark compares against.

Flushed batches feed the staged pipeline: each batch's ``flush_time``
becomes its *release time* on the executor's shared timeline, and every
batch flushed in the same event-loop step shares one pipeline window —
so a deadline-flushed partial and the size-triggered batch behind it
overlap in simulated time (encode ``n+1`` while ``n`` computes) instead
of serializing through a per-batch service model.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.serving.queue import RequestQueue
from repro.serving.requests import ScheduledBatch


class VirtualBatchScheduler:
    """Coalesces queued requests into :class:`ScheduledBatch` es.

    Parameters
    ----------
    queue:
        The bounded multi-tenant queue to drain.
    batch_size:
        Virtual-batch size ``K`` — requests coalesced per flush.
    max_wait:
        Max simulated seconds a request may sit queued before a partial
        batch is forced out (the serving latency SLO knob).
    slots:
        Virtual-batch slots a flushed batch occupies on the enclave/GPUs.
        Defaults to ``batch_size``; per-request dispatch sets
        ``batch_size=1`` with ``slots=K`` because the enclave still pads
        each lone sample to a full ``K``-slot encoding.
    """

    def __init__(
        self,
        queue: RequestQueue,
        batch_size: int,
        max_wait: float = 0.01,
        slots: int | None = None,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch size must be >= 1, got {batch_size}")
        if max_wait <= 0:
            raise ConfigurationError(f"max wait must be > 0, got {max_wait}")
        self.queue = queue
        self.batch_size = batch_size
        self.max_wait = max_wait
        self.slots = max(batch_size, slots or batch_size)
        self._next_batch_id = 0

    def _make(self, requests, flush_time: float, trigger: str) -> ScheduledBatch:
        batch = ScheduledBatch(
            batch_id=self._next_batch_id,
            requests=requests,
            flush_time=flush_time,
            trigger=trigger,
            slots=self.slots,
        )
        self._next_batch_id += 1
        return batch

    # ------------------------------------------------------------------
    # flush triggers
    # ------------------------------------------------------------------
    def collect_ready(self, now: float) -> list[ScheduledBatch]:
        """Flush every *full* batch available at ``now`` (size trigger)."""
        batches = []
        while self.queue.depth >= self.batch_size:
            batches.append(
                self._make(self.queue.pop_fair(self.batch_size), now, "size")
            )
        return batches

    def collect_expired(self, now: float) -> list[ScheduledBatch]:
        """Flush partial batches whose oldest request hit the deadline.

        Each flush is stamped with the *deadline* time (oldest enqueue +
        ``max_wait``), not ``now``: between trace arrivals the simulated
        server would have fired the flush timer at the deadline itself.
        Passing ``now = math.inf`` drains everything deadline-by-deadline.
        """
        batches = []
        while self.queue.depth:
            oldest = self.queue.oldest_enqueue_time()
            deadline = oldest + self.max_wait
            if deadline > now:
                break
            flush_at = deadline if math.isfinite(deadline) else oldest
            batches.append(
                self._make(self.queue.pop_fair(self.batch_size), flush_at, "deadline")
            )
        return batches

    def drain(self, now: float) -> list[ScheduledBatch]:
        """Flush everything immediately (server shutdown)."""
        batches = []
        while self.queue.depth:
            batches.append(
                self._make(self.queue.pop_fair(self.batch_size), now, "drain")
            )
        return batches

    @property
    def batches_scheduled(self) -> int:
        """Total batches flushed so far."""
        return self._next_batch_id
