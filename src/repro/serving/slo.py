"""Per-tenant SLO classes: the scheduler's organizing latency contract.

Until now every tenant shared one global flush deadline, one
priority-blind shed policy, and a decode-first executor tie-break.  This
module introduces the vocabulary the whole request path speaks instead:
an :class:`SloClass` names a latency budget, a priority, and a shed
weight, and an :class:`SloPolicy` assigns tenants to classes.  Four
layers consume it:

* **admission** — a full queue evicts the newest lowest-priority pending
  request rather than unconditionally shedding the arrival, so a
  best-effort backlog can no longer block premium traffic;
* **flush** — the scheduler's deadline becomes the *minimum remaining
  budget* among queued requests instead of one global ``max_batch_wait``,
  and the adaptive policy takes the tightest class budget as its ceiling;
* **pipeline ranking** — the executor's deadline-aware
  :class:`~repro.pipeline.ranker.DeadlineAwareRanker` runs the window
  carrying the tightest remaining budget first;
* **placement** — the router pins premium tenants onto lightly-loaded
  shards instead of walking the hash ring.

The default :class:`SloClass` (infinite budget, priority 0, weight 1) is
*exactly* today's behavior: a policy whose every class is default — or no
policy at all — serves bit-identical outcomes to previous releases
(asserted in ``benchmarks/bench_slo_classes.py``).

A class's ``latency_budget`` is *end-to-end* (arrival to completion).
Only a fraction of it (:data:`FLUSH_BUDGET_FRACTION`) may be spent
waiting in the coalescing queue; the remainder is headroom for the
staged pipeline's encode/compute/decode service time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Name of the implicit class unassigned tenants belong to.
DEFAULT_CLASS_NAME = "standard"

#: Fraction of a class's end-to-end latency budget the scheduler may
#: spend holding a request for coalescing; the rest is reserved for the
#: pipeline's service time (a request flushed at 100% of its budget
#: would already be late before the enclave touched it).
FLUSH_BUDGET_FRACTION = 0.5


@dataclass(frozen=True)
class SloClass:
    """One service class: a latency contract plus scheduling standing.

    Parameters
    ----------
    name:
        Class identifier (`"standard"` is the implicit default class).
    latency_budget:
        End-to-end seconds (arrival to completion) a request of this
        class should finish within.  ``inf`` — the default — means "no
        contract", which is exactly the pre-SLO server's behavior.
    priority:
        Admission standing: when the queue is full, an arrival of a
        higher-priority class evicts the newest pending request of a
        strictly lower-priority class instead of being shed.  Equal
        priorities never evict each other (the default class at
        priority 0 therefore sheds arrivals exactly as before).
    shed_weight:
        Relative willingness to be evicted among equally-low-priority
        victims (higher sheds first); a tie-break, not a rate.
    drain_weight:
        Virtual-batch slots the tenant's turn is worth when the queue
        drains round-robin: a class with weight ``w`` pops up to ``w``
        requests per rotation (fractions accumulate as deficit credit),
        so premium tenants drain proportionally under contention instead
        of strictly one-per-turn.  The default ``1.0`` is bit-identical
        to the classic rotation.
    admission_share:
        Maximum fraction of the queue's capacity this class's pending
        requests may occupy at admission (at least one slot is always
        allowed).  Caps floods in *both* directions: a premium burst can
        no longer evict every best-effort request out of the queue, and a
        best-effort backlog cannot monopolise it either.  The default
        ``1.0`` (no cap) is exactly the previous behavior.
    """

    name: str = DEFAULT_CLASS_NAME
    latency_budget: float = math.inf
    priority: int = 0
    shed_weight: float = 1.0
    drain_weight: float = 1.0
    admission_share: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("SLO class needs a non-empty name")
        if not self.latency_budget > 0:
            raise ConfigurationError(
                f"latency budget must be > 0 seconds, got {self.latency_budget}"
            )
        if self.shed_weight < 0:
            raise ConfigurationError(
                f"shed weight must be >= 0, got {self.shed_weight}"
            )
        if self.drain_weight < 1.0:
            raise ConfigurationError(
                f"drain weight must be >= 1 (a turn cannot shrink below one"
                f" slot), got {self.drain_weight}"
            )
        if not 0.0 < self.admission_share <= 1.0:
            raise ConfigurationError(
                f"admission share must be in (0, 1], got {self.admission_share}"
            )

    def admission_cap(self, capacity: int) -> int:
        """Queue slots this class may occupy out of ``capacity`` (>= 1)."""
        return max(1, int(self.admission_share * capacity))

    @property
    def flush_budget(self) -> float:
        """Seconds of the budget the coalescing wait may consume."""
        return self.latency_budget * FLUSH_BUDGET_FRACTION


#: The class every tenant belongs to unless assigned otherwise — today's
#: exact behavior (no budget, no eviction standing).
DEFAULT_SLO_CLASS = SloClass()


@dataclass(frozen=True)
class SloPolicy:
    """Tenant-to-class assignment consulted by every layer of the path.

    Parameters
    ----------
    classes:
        The deployment's service classes, keyed by name.  The default
        class (:data:`DEFAULT_CLASS_NAME`) is always present; defining it
        explicitly overrides its knobs.
    assignments:
        ``tenant -> class name``.  Unassigned tenants get the default
        class, so a policy with no assignments changes nothing.
    """

    classes: dict[str, SloClass] = field(default_factory=dict)
    assignments: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        classes = dict(self.classes)
        for name, cls in classes.items():
            if name != cls.name:
                raise ConfigurationError(
                    f"class key {name!r} does not match SloClass.name {cls.name!r}"
                )
        classes.setdefault(DEFAULT_CLASS_NAME, DEFAULT_SLO_CLASS)
        object.__setattr__(self, "classes", classes)
        for tenant, name in self.assignments.items():
            if name not in classes:
                raise ConfigurationError(
                    f"tenant {tenant!r} assigned to undefined SLO class {name!r}"
                    f" (defined: {sorted(classes)})"
                )

    # ------------------------------------------------------------------
    # lookups (the hot-path surface)
    # ------------------------------------------------------------------
    @property
    def default_class(self) -> SloClass:
        """The class unassigned tenants belong to."""
        return self.classes[DEFAULT_CLASS_NAME]

    def class_for(self, tenant: str) -> SloClass:
        """The tenant's service class (default when unassigned)."""
        name = self.assignments.get(tenant)
        if name is None:
            return self.default_class
        return self.classes[name]

    def budget_for(self, tenant: str) -> float:
        """End-to-end latency budget in seconds (``inf`` = no contract)."""
        return self.class_for(tenant).latency_budget

    def flush_budget_for(self, tenant: str) -> float:
        """Seconds the tenant's requests may wait in the coalescing queue."""
        return self.class_for(tenant).flush_budget

    def priority_for(self, tenant: str) -> int:
        """Admission priority (higher may evict strictly lower)."""
        return self.class_for(tenant).priority

    def tightest_flush_budget(self) -> float | None:
        """The smallest finite flush budget across defined classes.

        The adaptive flush policy uses it as an additional deadline
        ceiling so a learned wait can never violate the most demanding
        class's contract.  ``None`` when no class carries a finite budget.
        """
        finite = [
            cls.flush_budget
            for cls in self.classes.values()
            if math.isfinite(cls.latency_budget)
        ]
        return min(finite) if finite else None

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def class_table(self) -> list[dict]:
        """One strict-JSON-safe row per class (stable ordering by name)."""
        return [
            {
                "name": cls.name,
                "latency_budget": (
                    cls.latency_budget if math.isfinite(cls.latency_budget) else None
                ),
                "priority": cls.priority,
                "shed_weight": cls.shed_weight,
                "drain_weight": cls.drain_weight,
                "admission_share": cls.admission_share,
                "tenants": sorted(
                    t for t, n in self.assignments.items() if n == cls.name
                ),
            }
            for cls in sorted(self.classes.values(), key=lambda c: c.name)
        ]


def build_slo_policy(
    budgets: dict[str, float],
    assignments: dict[str, str] | None = None,
) -> SloPolicy:
    """Build a policy from ``class -> budget seconds`` (the CLI's shape).

    Priorities are derived from budget tightness — the tightest budget
    gets the highest priority — so ``--slo-budget`` alone yields a total
    admission order without a third flag.  The default class keeps
    priority 0 unless explicitly given a budget.
    """
    if not budgets and assignments:
        raise ConfigurationError(
            "SLO tenant assignments need at least one class budget"
            " (--slo-budget class=ms)"
        )
    for name, budget in budgets.items():
        if not budget > 0:
            raise ConfigurationError(
                f"SLO budget for class {name!r} must be > 0 seconds, got {budget}"
            )
    # Classes with equal budgets share a priority rank: identical
    # contracts must never evict each other's pending requests.
    distinct = sorted(set(budgets.values()), reverse=True)
    rank_of = {budget: rank + 1 for rank, budget in enumerate(distinct)}
    classes = {
        name: SloClass(name=name, latency_budget=budget, priority=rank_of[budget])
        for name, budget in budgets.items()
    }
    return SloPolicy(classes=classes, assignments=dict(assignments or {}))
