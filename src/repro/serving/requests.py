"""Request/response records flowing through the serving subsystem.

One tenant request carries exactly one sample: the whole point of the
serving layer is that the *server* — not the caller — assembles the
paper's virtual batches out of independent single-sample requests
(Section 3.1's amortization argument applied to concurrent traffic).
All timestamps are simulated-clock seconds from the offline trace driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Outcome states a request can end in.
STATUS_OK = "ok"
STATUS_SHED = "shed"
STATUS_INTEGRITY_FAILED = "integrity_failed"
STATUS_DECODE_FAILED = "decode_failed"
STATUS_SHARD_FAILED = "shard_failed"


@dataclass
class PendingRequest:
    """One decrypted single-sample request waiting for a virtual batch.

    Attributes
    ----------
    request_id:
        Server-assigned monotonically increasing id.
    tenant:
        The client this sample belongs to (fairness + session lookup key).
    x:
        The decrypted sample, shape = model input shape (no batch axis).
    arrival_time:
        When the request reached the server.
    enqueue_time:
        When it entered the request queue (== arrival unless re-queued).
    """

    request_id: int
    tenant: str
    x: np.ndarray
    arrival_time: float
    enqueue_time: float


@dataclass
class RequestOutcome:
    """The terminal record of one request's trip through the server."""

    request_id: int
    tenant: str
    status: str
    arrival_time: float
    dispatch_time: float | None = None
    completion_time: float | None = None
    batch_id: int | None = None
    logits: np.ndarray | None = None
    prediction: int | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the request produced a verified prediction."""
        return self.status == STATUS_OK

    @property
    def latency(self) -> float | None:
        """Arrival-to-completion latency in simulated seconds."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time


@dataclass
class ScheduledBatch:
    """A coalesced virtual batch handed from the scheduler to a worker.

    Attributes
    ----------
    batch_id:
        Scheduler-assigned id (monotonic).
    requests:
        The coalesced requests, at most ``slots`` of them; a partial batch
        is padded up to the virtual-batch size inside the backend.
    flush_time:
        Simulated time the scheduler released the batch.
    trigger:
        Why it flushed: ``"size"`` (filled up), ``"deadline"`` (oldest
        request hit the max-latency budget), or ``"drain"`` (shutdown).
    slots:
        The virtual-batch size ``K`` the batch occupies on the enclave/GPUs
        regardless of fill (padding slots still cost encode/decode work).
    shard_id:
        The enclave shard the batch is bound for (every request in the
        batch is from a tenant pinned to that shard); re-written by the
        worker pool when the batch fails over to a survivor.
    retries:
        Times the batch was re-dispatched after a shard failure.
    deadline:
        Absolute end-to-end deadline the dispatch window carries, or
        ``None`` to let the worker pool derive it from the requests'
        class budgets at dispatch time.  Failover stamps this on retry
        batches with the *remaining* SLO budget of the surviving
        requests at the failure frontier, so a retry inherits exactly
        the time its requests still have — never the static flush
        deadline of the window it originally rode in.
    """

    batch_id: int
    requests: list = field(default_factory=list)
    flush_time: float = 0.0
    trigger: str = "size"
    slots: int = 1
    shard_id: int = 0
    retries: int = 0
    deadline: float | None = None

    @property
    def n_requests(self) -> int:
        """Real samples in the batch."""
        return len(self.requests)

    @property
    def fill_ratio(self) -> float:
        """Fraction of virtual-batch slots carrying real samples."""
        return self.n_requests / max(1, self.slots)
