"""Adaptive coalescing: learned flush deadlines and EPC-aware batch sizing.

The static knobs — ``DarKnightConfig.virtual_batch_size`` (``K``) and
``ServingConfig.max_batch_wait`` — are right for exactly one traffic
regime.  Bursty traces either ship half-empty batches (deadline too
tight) or blow the latency budget (deadline too loose), and a hand-tuned
``K`` silently pages once the virtual batch's working set outgrows the
enclave's EPC.  This module replaces both knobs with observed facts:

* **Learned flush deadline** — each shard's
  :class:`AdaptiveFlushPolicy` keeps an EWMA of inter-arrival gaps and
  predicts how long the oldest queued request would have to wait for the
  batch to fill (``gap * slots_missing``).  A multiplicative controller
  trades fill ratio against deadline misses: partial deadline flushes
  below the target fill stretch the prediction, full ones shrink it back
  toward the raw estimate.  The deadline never leaves
  ``[min_wait, max_wait]`` — the static deadline is the *ceiling*, so
  adaptive mode can only ship earlier than the static server, never
  later.
* **Service-aware floor** — the worker pool feeds back the staged
  executor's *real* per-stage timings (:class:`WindowFeedback`); the
  policy raises the deadline floor toward the observed per-batch enclave
  occupancy so partial batches are never flushed faster than the
  serialized enclave could absorb them (each partial still pays a full
  ``K``-slot encode).
* **EPC-aware K** — :func:`epc_fitting_batch_size` sizes the virtual
  batch against the :class:`~repro.enclave.epc.EpcModel` budget instead
  of trusting the configured ``K``: one batch's masking working set
  (inputs + ``K + M (+1)`` shares + gathered outputs, times the pipeline
  depth kept in flight) must stay inside usable EPC, echoing the paper's
  Fig. 3/6b "memory overflow past K=4" knee.  The serving layer clamps
  the provisioned ``K`` to the fit at startup and the policy enforces the
  cap at every flush; runtime observations of per-slot bytes can only
  tighten it further.

Static deployments never construct a policy, so with adaptive batching
off the flush path is bit-identical to the fixed-knob server.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.enclave.epc import EPC_USABLE_BYTES
from repro.errors import ConfigurationError

#: Bounds for the fill-ratio controller's multiplicative stretch factor.
_STRETCH_MIN = 1.0
_STRETCH_MAX = 8.0
#: Controller gains: relax fast when batches ship empty, tighten gently.
_STRETCH_UP = 1.25
_STRETCH_DOWN = 0.9
#: Fraction of the observed per-batch enclave occupancy used as the
#: deadline floor (flushing faster than this just queues on the enclave).
_SERVICE_FLOOR_FRACTION = 0.5


@dataclass(frozen=True)
class AdaptiveBatchingConfig:
    """Knobs for the adaptive flush policy (all optional, all bounded).

    Parameters
    ----------
    target_fill:
        Fill ratio deadline flushes aim for; partial flushes below it
        relax the learned deadline, fuller ones tighten it.
    min_wait:
        Hard floor (simulated seconds) for the learned deadline — the
        policy never flushes a partial faster than this.
    max_wait:
        Hard ceiling; ``None`` uses the deployment's static
        ``max_batch_wait``, so adaptive mode never waits *longer* than
        the static server would have.
    ewma_alpha:
        Smoothing factor for the inter-arrival and service-time EWMAs
        (higher adapts faster, noisier).
    epc_headroom:
        Fraction of usable EPC one in-flight window may claim; the rest
        is slack for enclave code/stack and SGX metadata drift.
    warmup_arrivals:
        Admitted arrivals a shard must observe before its learned
        deadline takes over from the static one — a cold EWMA built on a
        couple of gaps is overconfident and shreds the first burst into
        partial flushes.
    """

    target_fill: float = 0.85
    min_wait: float = 1e-4
    max_wait: float | None = None
    ewma_alpha: float = 0.25
    epc_headroom: float = 0.9
    warmup_arrivals: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.target_fill <= 1.0:
            raise ConfigurationError(
                f"target fill must be in (0, 1], got {self.target_fill}"
            )
        if self.min_wait <= 0:
            raise ConfigurationError(f"min wait must be > 0, got {self.min_wait}")
        if self.max_wait is not None and self.max_wait < self.min_wait:
            raise ConfigurationError(
                f"max wait {self.max_wait} must be >= min wait {self.min_wait}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if not 0.0 < self.epc_headroom <= 1.0:
            raise ConfigurationError(
                f"EPC headroom must be in (0, 1], got {self.epc_headroom}"
            )
        if self.warmup_arrivals < 0:
            raise ConfigurationError(
                f"warmup arrivals must be >= 0, got {self.warmup_arrivals}"
            )


@dataclass(frozen=True)
class WindowFeedback:
    """What one dispatched flush window cost, fed back to the scheduler.

    The worker pool builds one per successfully dispatched per-shard
    window from the staged executor's :class:`~repro.pipeline.stages.
    PipelineStats` — these are the *measured* simulated timings of the
    run (bytes masked, MACs executed), not a synthetic service model.
    """

    shard_id: int
    n_batches: int  #: Virtual batches the window carried.
    enclave_busy: float  #: Enclave-occupied seconds within the window.
    makespan: float  #: End-to-end seconds for the window.
    stage_totals: dict  #: Seconds per stage kind (encode/gpu/decode/tee).
    slot_bytes_observed: int = 0  #: Largest per-request input payload seen.


def estimate_slot_bytes(network) -> int:
    """Bytes one virtual-batch slot contributes to the enclave working set.

    The enclave's per-slot footprint is dominated by the largest
    activation it masks or unmasks on the slot's behalf; walk the
    network's per-sample layer shapes and take the widest, priced at
    float64 (the repro's tensor dtype).
    """
    widest = max(
        int(np.prod(shape, dtype=np.int64)) for shape in network.layer_shapes
    )
    return widest * np.dtype(np.float64).itemsize


def working_set_bytes(
    batch_size: int,
    slot_bytes: int,
    collusion_tolerance: int = 1,
    extra_shares: int = 0,
    pipeline_depth: int = 1,
) -> int:
    """EPC bytes one in-flight window of virtual batches occupies.

    Per virtual batch the enclave simultaneously holds the ``K`` real
    slots, the ``K + M (+1 integrity)`` masked share tensors it scatters,
    and the same number of gathered GPU outputs it must unmask; a staged
    pipeline keeps up to ``pipeline_depth`` such batches resident at
    once.
    """
    if batch_size < 1:
        raise ConfigurationError(f"batch size must be >= 1, got {batch_size}")
    if slot_bytes < 0:
        raise ConfigurationError(f"slot bytes must be >= 0, got {slot_bytes}")
    n_shares = batch_size + collusion_tolerance + extra_shares
    per_batch = (batch_size + 2 * n_shares) * slot_bytes
    return max(1, pipeline_depth) * per_batch


def epc_fitting_batch_size(
    base_batch_size: int,
    slot_bytes: int,
    epc_budget_bytes: int,
    collusion_tolerance: int = 1,
    extra_shares: int = 0,
    pipeline_depth: int = 1,
) -> int:
    """Largest ``K <= base`` whose working set fits the EPC budget.

    Returns at least ``1``: a deployment whose single-slot working set
    already overflows still serves (real SGX pages rather than refusing),
    it just cannot be saved by shrinking ``K`` further.
    """
    if base_batch_size < 1:
        raise ConfigurationError(
            f"base batch size must be >= 1, got {base_batch_size}"
        )
    if epc_budget_bytes <= 0:
        raise ConfigurationError(
            f"EPC budget must be > 0, got {epc_budget_bytes}"
        )
    for k in range(base_batch_size, 1, -1):
        if (
            working_set_bytes(
                k, slot_bytes, collusion_tolerance, extra_shares, pipeline_depth
            )
            <= epc_budget_bytes
        ):
            return k
    return 1


class AdaptiveFlushPolicy:
    """Per-shard learned flush deadline plus EPC-capped batch size.

    One instance per shard scheduler — shards see different tenant mixes,
    so each learns its own arrival process and service times
    independently.  All state is driven by explicit ``observe_*`` calls
    from the serving layer (arrivals from admission, flushes from the
    scheduler, timings from the worker pool), so a replayed trace adapts
    deterministically.

    Parameters
    ----------
    batch_size:
        The provisioned virtual-batch size ``K`` (already EPC-clamped by
        the server when a budget is known).
    max_wait:
        The deployment's static flush deadline; used as the ceiling when
        :attr:`AdaptiveBatchingConfig.max_wait` is unset, and as the
        deadline until enough arrivals have been observed to predict.
    config:
        Adaptive knobs; defaults are sensible for the repo's traces.
    slot_bytes:
        Analytic per-slot working-set estimate
        (:func:`estimate_slot_bytes`); refined upward by observation.
    epc_budget_bytes:
        Usable EPC available to one in-flight window (headroom already
        applied by the caller, or pass raw and let the policy apply
        ``config.epc_headroom``).  ``None`` disables the cap.
    collusion_tolerance / extra_shares / pipeline_depth:
        Masking shape facts the working-set model needs.
    budget_ceiling:
        Optional extra deadline ceiling from the deployment's SLO policy
        (the tightest class's flush budget).  The learned wait — and the
        winsorization bound the inter-arrival EWMA is clipped at — never
        exceeds it, so adaptation cannot violate a premium contract.
    """

    def __init__(
        self,
        batch_size: int,
        max_wait: float,
        config: AdaptiveBatchingConfig | None = None,
        slot_bytes: int | None = None,
        epc_budget_bytes: int | None = None,
        collusion_tolerance: int = 1,
        extra_shares: int = 0,
        pipeline_depth: int = 1,
        budget_ceiling: float | None = None,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch size must be >= 1, got {batch_size}")
        if max_wait <= 0:
            raise ConfigurationError(f"max wait must be > 0, got {max_wait}")
        if budget_ceiling is not None and budget_ceiling <= 0:
            raise ConfigurationError(
                f"budget ceiling must be > 0, got {budget_ceiling}"
            )
        self.config = config or AdaptiveBatchingConfig()
        self.base_batch_size = batch_size
        self.ceiling = (
            self.config.max_wait if self.config.max_wait is not None else max_wait
        )
        if budget_ceiling is not None:
            self.ceiling = min(self.ceiling, budget_ceiling)
        self.floor = min(self.config.min_wait, self.ceiling)
        self._collusion = collusion_tolerance
        self._extra = extra_shares
        self._depth = pipeline_depth
        self._slot_bytes = int(slot_bytes or 0)
        self._budget = (
            int(epc_budget_bytes * self.config.epc_headroom)
            if epc_budget_bytes is not None
            else None
        )
        # Learned state.
        self._gap_ewma: float | None = None
        self._last_arrival: float | None = None
        self._service_ewma: float | None = None
        self._stretch = 1.5  # start between "trust the estimate" and "pad it"
        #: Outstanding early-flush probes: ``(flush_time, static_deadline)``
        #: pairs whose verdict (premature vs harmless) awaits the next
        #: arrival — see :meth:`observe_flush`.
        self._probes: deque[tuple[float, float]] = deque()
        # Telemetry.
        self.arrivals = 0
        self.deadline_flushes = 0
        self.partial_deadline_flushes = 0
        self.premature_flushes = 0

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------
    def observe_arrival(self, now: float) -> None:
        """Fold one admitted arrival into the inter-arrival EWMA.

        Gaps are winsorized at the deadline ceiling before folding: an
        idle period longer than any deadline we could set (a burst
        boundary) says only "longer than the ceiling" — letting its raw
        magnitude swamp the EWMA would blind the policy to the intra-burst
        rate for the rest of the next burst.
        """
        self.arrivals += 1
        if self._last_arrival is not None:
            gap = min(max(0.0, now - self._last_arrival), self.ceiling)
            alpha = self.config.ewma_alpha
            self._gap_ewma = (
                gap
                if self._gap_ewma is None
                else alpha * gap + (1.0 - alpha) * self._gap_ewma
            )
        self._last_arrival = now
        self._resolve_probes(now)

    def _resolve_probes(self, now: float) -> None:
        """Judge outstanding early flushes against this arrival.

        A probe whose static deadline passed with no arrival was a *free*
        early flush (the batch could never have been filled — the typical
        burst tail): tighten.  An arrival landing before the static
        deadline means the early flush forfeited a slot the static server
        would have filled — a genuine fill miss: relax.
        """
        while self._probes and self._probes[0][1] < now:
            self._probes.popleft()
            self._stretch = max(_STRETCH_MIN, self._stretch * _STRETCH_DOWN)
        while self._probes and self._probes[0][0] <= now <= self._probes[0][1]:
            self._probes.popleft()
            self.premature_flushes += 1
            self._stretch = min(_STRETCH_MAX, self._stretch * _STRETCH_UP)

    def observe_flush(
        self,
        trigger: str,
        n_requests: int,
        wait_used: float | None = None,
        flush_time: float | None = None,
    ) -> None:
        """Steer the stretch controller from one flushed batch's fill.

        Only deadline flushes carry signal: a size-triggered flush says
        nothing about whether the deadline was tight or loose.  A partial
        flush below the target fill is not judged immediately — whether
        flushing early was a mistake depends on whether an arrival would
        have filled the batch before the *static* deadline, which only
        the future can tell; the flush is recorded as a probe that the
        next arrival resolves (:meth:`_resolve_probes`).  Partials that
        already waited the full ceiling carry no signal at all: no
        admissible deadline could have filled them.
        """
        if trigger != "deadline":
            return
        self.deadline_flushes += 1
        fill = n_requests / max(1, self.batch_size)
        if fill < self.config.target_fill:
            self.partial_deadline_flushes += 1
            if (
                wait_used is not None
                and flush_time is not None
                and wait_used < self.ceiling * (1.0 - 1e-9)
            ):
                self._probes.append(
                    (flush_time, flush_time - wait_used + self.ceiling)
                )
        else:
            self._stretch = max(_STRETCH_MIN, self._stretch * _STRETCH_DOWN)

    def observe_window(self, feedback: WindowFeedback) -> None:
        """Fold one dispatched window's measured timings into the policy."""
        if feedback.n_batches > 0:
            per_batch = feedback.enclave_busy / feedback.n_batches
            alpha = self.config.ewma_alpha
            self._service_ewma = (
                per_batch
                if self._service_ewma is None
                else alpha * per_batch + (1.0 - alpha) * self._service_ewma
            )
        if feedback.slot_bytes_observed > self._slot_bytes:
            self._slot_bytes = int(feedback.slot_bytes_observed)

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    @property
    def batch_size(self) -> int:
        """The EPC-capped coalescing target ``K``."""
        if self._budget is None or self._slot_bytes <= 0:
            return self.base_batch_size
        return min(
            self.base_batch_size,
            epc_fitting_batch_size(
                self.base_batch_size,
                self._slot_bytes,
                self._budget,
                self._collusion,
                self._extra,
                self._depth,
            ),
        )

    def current_wait(self, pending: int = 0) -> float:
        """The learned flush deadline for the oldest queued request.

        Predicts the time to fill the remaining ``K - pending`` slots at
        the observed arrival rate, stretched by the fill controller, then
        clamps into ``[floor, ceiling]`` where the floor also tracks the
        measured per-batch enclave occupancy.  With no observed arrivals
        yet the static deadline stands.
        """
        floor = self.floor
        if self._service_ewma is not None:
            floor = max(
                floor,
                min(self.ceiling, _SERVICE_FLOOR_FRACTION * self._service_ewma),
            )
        if self._gap_ewma is None or self.arrivals < self.config.warmup_arrivals:
            return self.ceiling
        # Never predict below two gaps: arrival jitter around the EWMA
        # would otherwise fire the deadline between back-to-back arrivals
        # of a healthy burst and shred it into partial flushes.
        slots_missing = max(2, self.batch_size - max(0, pending))
        predicted = self._stretch * self._gap_ewma * slots_missing
        if not math.isfinite(predicted):
            return self.ceiling
        return min(self.ceiling, max(floor, predicted))

    def window_working_set_bytes(self, slots: int) -> int:
        """Working-set bytes a flushed batch of ``slots`` slots occupies."""
        return working_set_bytes(
            max(1, slots), self._slot_bytes, self._collusion, self._extra, self._depth
        )

    @property
    def epc_budget_bytes(self) -> int | None:
        """Headroom-adjusted EPC budget the cap enforces (None = uncapped)."""
        return self._budget

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Learned state as strict-JSON-safe scalars (no Infinity/NaN)."""

        def _safe(value):
            if value is None:
                return None
            value = float(value)
            return value if math.isfinite(value) else None

        return {
            "batch_size": self.batch_size,
            "base_batch_size": self.base_batch_size,
            "current_wait": _safe(self.current_wait()),
            "wait_floor": _safe(self.floor),
            "wait_ceiling": _safe(self.ceiling),
            "gap_ewma": _safe(self._gap_ewma),
            "service_ewma": _safe(self._service_ewma),
            "stretch": _safe(self._stretch),
            "arrivals": self.arrivals,
            "deadline_flushes": self.deadline_flushes,
            "partial_deadline_flushes": self.partial_deadline_flushes,
            "premature_flushes": self.premature_flushes,
            "slot_bytes": self._slot_bytes,
            "epc_budget_bytes": self._budget,
        }


def build_policies(
    n_shards: int,
    batch_size: int,
    max_wait: float,
    config: AdaptiveBatchingConfig,
    network=None,
    epc_budget_bytes: int | None = None,
    collusion_tolerance: int = 1,
    extra_shares: int = 0,
    pipeline_depth: int = 1,
    slo=None,
) -> list[AdaptiveFlushPolicy]:
    """One independent policy per shard (shards adapt separately).

    ``slo`` (an :class:`~repro.serving.slo.SloPolicy`) clamps every
    shard's deadline ceiling at the tightest class's flush budget —
    tenants pin to shards at runtime, so no shard may learn a wait the
    most demanding class could land on and violate.
    """
    slot_bytes = estimate_slot_bytes(network) if network is not None else None
    budget = EPC_USABLE_BYTES if epc_budget_bytes is None else epc_budget_bytes
    budget_ceiling = slo.tightest_flush_budget() if slo is not None else None
    return [
        AdaptiveFlushPolicy(
            batch_size,
            max_wait,
            config=config,
            slot_bytes=slot_bytes,
            epc_budget_bytes=budget,
            collusion_tolerance=collusion_tolerance,
            extra_shares=extra_shares,
            pipeline_depth=pipeline_depth,
            budget_ceiling=budget_ceiling,
        )
        for _ in range(n_shards)
    ]
