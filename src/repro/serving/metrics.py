"""Server-side observability: latency percentiles, fill ratio, failures.

Collects per-request and per-batch facts during a serving run and renders
them through :mod:`repro.reporting` so server output lines up with the
rest of the repo's exhibits.  All times are simulated-clock seconds.

With an :class:`~repro.serving.slo.SloPolicy` attached, the collector
also keys latency by service class — per-class p50/p99 plus an
SLO-attainment ratio (the fraction of completed requests that finished
inside their class's budget) — and splits shed accounting into requests
refused *at admission* versus pending requests *evicted* to admit
higher-priority arrivals, so overload telemetry says who actually paid.
"""

from __future__ import annotations

import math

import numpy as np

from repro.reporting import render_table
from repro.serving.requests import (
    STATUS_DECODE_FAILED,
    STATUS_INTEGRITY_FAILED,
    STATUS_SHARD_FAILED,
    RequestOutcome,
    ScheduledBatch,
)
from repro.serving.slo import SloPolicy

#: ``record_shed`` kinds: refused at admission, evicted from the queue,
#: or refused because the class hit its admission quota.
SHED_ADMISSION = "admission"
SHED_EVICTED = "evicted"
SHED_QUOTA = "quota"


class ServerMetrics:
    """Accumulates serving statistics; cheap to query mid-run.

    Parameters
    ----------
    slo:
        Optional per-tenant class assignment; enables the per-class
        latency breakdown and attainment ratio.  ``None`` reports the
        classic aggregate numbers only.
    """

    def __init__(self, slo: SloPolicy | None = None) -> None:
        self.slo = slo
        self._latencies: list[float] = []
        self._fill_ratios: list[float] = []
        self._trigger_counts: dict[str, int] = {}
        self._completed_by_tenant: dict[str, int] = {}
        self._shed_by_tenant: dict[str, int] = {}
        self._latencies_by_class: dict[str, list[float]] = {}
        self._attained_by_class: dict[str, int] = {}
        self.completed = 0
        self.shed = 0
        #: ``shed`` split by who paid: the arrival (refused at admission),
        #: the backlog (evicted for a higher-priority arrival), or the
        #: arrival's class (over its admission quota).  The three always
        #: sum to ``shed``.
        self.shed_at_admission = 0
        self.shed_evicted = 0
        self.shed_quota = 0
        self.integrity_failures = 0
        self.decode_errors = 0
        self.shard_failures = 0
        self.batches = 0
        #: Audit-trail cost counters (zero when auditing is disabled).
        self.audit_windows = 0
        self.audit_leaves = 0
        self.audit_bytes = 0
        self.audit_commit_seconds = 0.0
        #: Executed elastic membership changes (zero when autoscale off).
        self.scale_outs = 0
        self.scale_ins = 0
        #: Aggregated mask-pool / weight-cache telemetry (``None`` when
        #: the offline precompute split is off).
        self._precompute: dict | None = None
        self._first_arrival: float | None = None
        self._last_completion: float | None = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_batch(self, batch: ScheduledBatch) -> None:
        """Account one flushed virtual batch."""
        self.batches += 1
        self._fill_ratios.append(batch.fill_ratio)
        self._trigger_counts[batch.trigger] = (
            self._trigger_counts.get(batch.trigger, 0) + 1
        )

    def record_outcome(self, outcome: RequestOutcome) -> None:
        """Account one finished (ok or failed) request.

        Only *completed* requests move the throughput span: shed and
        failed requests produce no served response, so letting their
        arrivals stretch the span start deflated throughput on mixed
        traces.
        """
        if outcome.status == STATUS_INTEGRITY_FAILED:
            self.integrity_failures += 1
            return
        if outcome.status == STATUS_DECODE_FAILED:
            self.decode_errors += 1
            return
        if outcome.status == STATUS_SHARD_FAILED:
            self.shard_failures += 1
            return
        if not outcome.ok:
            return
        self.completed += 1
        self._completed_by_tenant[outcome.tenant] = (
            self._completed_by_tenant.get(outcome.tenant, 0) + 1
        )
        self._latencies.append(outcome.latency)
        if self.slo is not None:
            cls = self.slo.class_for(outcome.tenant)
            self._latencies_by_class.setdefault(cls.name, []).append(outcome.latency)
            if outcome.latency <= cls.latency_budget:
                self._attained_by_class[cls.name] = (
                    self._attained_by_class.get(cls.name, 0) + 1
                )
        if self._first_arrival is None or outcome.arrival_time < self._first_arrival:
            self._first_arrival = outcome.arrival_time
        if self._last_completion is None or outcome.completion_time > self._last_completion:
            self._last_completion = outcome.completion_time

    def record_commit(self, leaves: int, nbytes: int, seconds: float) -> None:
        """Account one audit-window commitment (leaves, bytes, wall cost).

        ``seconds`` is *host* wall time, not simulated time: committing
        happens outside the simulated enclave clock, so its cost is
        reported as real overhead per run rather than folded into the
        simulated latency percentiles.
        """
        self.audit_windows += 1
        self.audit_leaves += int(leaves)
        self.audit_bytes += int(nbytes)
        self.audit_commit_seconds += float(seconds)

    def record_scale(self, action: str) -> None:
        """Account one executed membership change (scale_out / scale_in)."""
        if action == "scale_out":
            self.scale_outs += 1
        elif action == "scale_in":
            self.scale_ins += 1
        else:
            raise ValueError(f"unknown scale action {action!r}")

    def record_precompute(self, snapshot: dict | None) -> None:
        """Attach the deployment's precompute telemetry (or ``None``).

        The server pushes its aggregated mask-pool / weight-cache
        snapshot here at report time so :meth:`snapshot` carries it.
        Rate fields that are undefined (a pool never drawn from, no
        registered streams) must already be ``None`` — never ``inf`` or
        ``NaN`` — so the snapshot stays strict-JSON.
        """
        self._precompute = snapshot

    def record_shed(self, tenant: str, kind: str = SHED_ADMISSION) -> None:
        """Account one request lost to backpressure.

        ``kind`` says who paid for the full queue: :data:`SHED_ADMISSION`
        (the arrival was refused — the classic, and default, case),
        :data:`SHED_EVICTED` (a pending request was evicted to admit a
        higher-priority arrival), or :data:`SHED_QUOTA` (the arrival's
        class already held its admission share of the queue).
        """
        if kind not in (SHED_ADMISSION, SHED_EVICTED, SHED_QUOTA):
            raise ValueError(f"unknown shed kind {kind!r}")
        self.shed += 1
        if kind == SHED_EVICTED:
            self.shed_evicted += 1
        elif kind == SHED_QUOTA:
            self.shed_quota += 1
        else:
            self.shed_at_admission += 1
        self._shed_by_tenant[tenant] = self._shed_by_tenant.get(tenant, 0) + 1

    # ------------------------------------------------------------------
    # derived statistics
    # ------------------------------------------------------------------
    def latency_percentile(self, p: float) -> float:
        """``p``-th percentile of completed-request latency (seconds)."""
        if not self._latencies:
            return float("nan")
        return float(np.percentile(self._latencies, p))

    def class_latency_percentile(self, class_name: str, p: float) -> float:
        """``p``-th latency percentile for one service class (seconds)."""
        latencies = self._latencies_by_class.get(class_name)
        if not latencies:
            return float("nan")
        return float(np.percentile(latencies, p))

    def slo_attainment(self, class_name: str | None = None) -> float:
        """Fraction of completed requests that met their class budget.

        ``class_name=None`` aggregates across every class (requests of
        budget-less classes always attain).  ``nan`` with no completions
        (or no completions in the named class).
        """
        if class_name is not None:
            total = len(self._latencies_by_class.get(class_name, []))
            if total == 0:
                return float("nan")
            return self._attained_by_class.get(class_name, 0) / total
        if self.slo is None or self.completed == 0:
            return float("nan")
        return sum(self._attained_by_class.values()) / self.completed

    @property
    def mean_latency(self) -> float:
        """Mean completed-request latency (seconds)."""
        return float(np.mean(self._latencies)) if self._latencies else float("nan")

    @property
    def batch_fill_ratio(self) -> float:
        """Mean fraction of virtual-batch slots carrying real samples."""
        return float(np.mean(self._fill_ratios)) if self._fill_ratios else 0.0

    @property
    def throughput(self) -> float:
        """Completed requests per simulated second.

        The span runs from the first *completed* request's arrival to the
        last completion, so shed/failed arrivals cannot stretch it.  A
        degenerate span (a single instantaneous completion) reports
        ``0.0`` rather than leaking ``inf`` into snapshots and benchmark
        JSON artifacts.
        """
        if self.completed == 0 or self._first_arrival is None:
            return 0.0
        span = (self._last_completion or 0.0) - self._first_arrival
        if span <= 0:
            return 0.0
        return self.completed / span

    def completed_by_tenant(self) -> dict[str, int]:
        """Completed request counts per tenant."""
        return dict(self._completed_by_tenant)

    def shed_by_tenant(self) -> dict[str, int]:
        """Shed request counts per tenant."""
        return dict(self._shed_by_tenant)

    def flush_triggers(self) -> dict[str, int]:
        """How many batches flushed per trigger kind."""
        return dict(self._trigger_counts)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _class_snapshot(self) -> dict:
        """Per-class latency/attainment rows (empty without an SLO policy)."""
        if self.slo is None:
            return {}

        def _finite(value: float) -> float | None:
            value = float(value)
            return value if math.isfinite(value) else None

        out = {}
        for name in sorted(self._latencies_by_class):
            cls = self.slo.classes.get(name)
            budget = cls.latency_budget if cls is not None else math.inf
            out[name] = {
                "completed": len(self._latencies_by_class[name]),
                "latency_p50": _finite(self.class_latency_percentile(name, 50)),
                "latency_p99": _finite(self.class_latency_percentile(name, 99)),
                "latency_budget": budget if math.isfinite(budget) else None,
                "attainment": _finite(self.slo_attainment(name)),
            }
        return out

    def snapshot(self) -> dict:
        """All headline numbers as one dict (stable keys for tests/benches).

        Strict-JSON-safe: non-finite floats (no completions yet, empty
        percentiles, infinite budgets) are reported as ``None``/``null``,
        never as the ``Infinity``/``NaN`` literals ``json.dumps`` would
        otherwise emit into benchmark artifacts.
        """

        def _finite(value: float) -> float | None:
            value = float(value)
            return value if math.isfinite(value) else None

        return {
            "completed": self.completed,
            "shed": self.shed,
            "shed_at_admission": self.shed_at_admission,
            "shed_evicted": self.shed_evicted,
            "shed_quota": self.shed_quota,
            "integrity_failures": self.integrity_failures,
            "decode_errors": self.decode_errors,
            "shard_failures": self.shard_failures,
            "batches": self.batches,
            "batch_fill_ratio": _finite(self.batch_fill_ratio),
            "throughput_rps": _finite(self.throughput),
            "latency_p50": _finite(self.latency_percentile(50)),
            "latency_p99": _finite(self.latency_percentile(99)),
            "latency_mean": _finite(self.mean_latency),
            "slo_attainment": _finite(self.slo_attainment()),
            "slo_classes": self._class_snapshot(),
            "audit_windows": self.audit_windows,
            "audit_leaves": self.audit_leaves,
            "audit_bytes": self.audit_bytes,
            "audit_commit_seconds": _finite(self.audit_commit_seconds),
            "scale_outs": self.scale_outs,
            "scale_ins": self.scale_ins,
            "precompute": self._precompute_snapshot(_finite),
        }

    def _precompute_snapshot(self, _finite) -> dict | None:
        """Strict-JSON copy of the attached precompute telemetry.

        Every float rate passes through the ``_finite`` filter so a pool
        that was never drawn from (or a shard set with no registered
        streams) reports ``null`` rather than ``inf``/``NaN`` — the same
        contract the latency fields keep, enforced by
        ``benchmarks/validate_artifacts.py``.
        """
        if self._precompute is None:
            return None
        out = dict(self._precompute)
        for key in ("hit_rate", "occupancy"):
            if out.get(key) is not None:
                out[key] = _finite(out[key])
        return out

    def render(self, title: str = "Serving metrics") -> str:
        """ASCII table of the snapshot (plus per-class rows under SLO)."""

        def _fmt(value: float | None, scale: float = 1.0, digits: int = 2) -> str:
            if value is None:
                return "n/a"
            return f"{value * scale:.{digits}f}"

        snap = self.snapshot()
        rows = [
            ["completed requests", snap["completed"]],
            ["shed (backpressure)", snap["shed"]],
            ["integrity failures", snap["integrity_failures"]],
            ["decode errors", snap["decode_errors"]],
            ["shard failures", snap["shard_failures"]],
            ["virtual batches", snap["batches"]],
            ["batch fill ratio", _fmt(snap["batch_fill_ratio"])],
            ["throughput (req/s)", _fmt(snap["throughput_rps"], digits=1)],
            ["latency p50 (ms)", _fmt(snap["latency_p50"], scale=1e3)],
            ["latency p99 (ms)", _fmt(snap["latency_p99"], scale=1e3)],
            ["latency mean (ms)", _fmt(snap["latency_mean"], scale=1e3)],
        ]
        if snap["audit_windows"]:
            rows.append(["audit windows", snap["audit_windows"]])
            rows.append(["audit leaves", snap["audit_leaves"]])
            rows.append(["audit bytes", f"{snap['audit_bytes']:,}"])
            rows.append(
                ["audit commit (ms)",
                 _fmt(snap["audit_commit_seconds"], scale=1e3, digits=1)]
            )
        if snap["scale_outs"] or snap["scale_ins"]:
            rows.append(["scale-outs", snap["scale_outs"]])
            rows.append(["scale-ins", snap["scale_ins"]])
        if snap["precompute"] is not None:
            pre = snap["precompute"]
            rows.append(["pool hit rate", _fmt(pre["hit_rate"], digits=3)])
            rows.append(["pool refills", pre["refills"]])
            rows.append(["weight reuses", pre["weights_reused"]])
        if snap["slo_classes"]:
            rows.append(["shed at admission", snap["shed_at_admission"]])
            rows.append(["evicted by class", snap["shed_evicted"]])
            rows.append(["shed over quota", snap["shed_quota"]])
            rows.append(["SLO attainment", _fmt(snap["slo_attainment"], digits=3)])
            for name, cls_snap in snap["slo_classes"].items():
                budget = cls_snap["latency_budget"]
                budget_txt = "no budget" if budget is None else f"{budget * 1e3:.1f}ms"
                rows.append(
                    [
                        f"  {name} p99 (ms)",
                        f"{_fmt(cls_snap['latency_p99'], scale=1e3)}"
                        f" ({budget_txt},"
                        f" attain {_fmt(cls_snap['attainment'], digits=3)})",
                    ]
                )
        return render_table(["metric", "value"], rows, title=title)
