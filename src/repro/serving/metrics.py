"""Server-side observability: latency percentiles, fill ratio, failures.

Collects per-request and per-batch facts during a serving run and renders
them through :mod:`repro.reporting` so server output lines up with the
rest of the repo's exhibits.  All times are simulated-clock seconds.
"""

from __future__ import annotations

import math

import numpy as np

from repro.reporting import render_table
from repro.serving.requests import (
    STATUS_DECODE_FAILED,
    STATUS_INTEGRITY_FAILED,
    STATUS_SHARD_FAILED,
    RequestOutcome,
    ScheduledBatch,
)


class ServerMetrics:
    """Accumulates serving statistics; cheap to query mid-run."""

    def __init__(self) -> None:
        self._latencies: list[float] = []
        self._fill_ratios: list[float] = []
        self._trigger_counts: dict[str, int] = {}
        self._completed_by_tenant: dict[str, int] = {}
        self._shed_by_tenant: dict[str, int] = {}
        self.completed = 0
        self.shed = 0
        self.integrity_failures = 0
        self.decode_errors = 0
        self.shard_failures = 0
        self.batches = 0
        self._first_arrival: float | None = None
        self._last_completion: float | None = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_batch(self, batch: ScheduledBatch) -> None:
        """Account one flushed virtual batch."""
        self.batches += 1
        self._fill_ratios.append(batch.fill_ratio)
        self._trigger_counts[batch.trigger] = (
            self._trigger_counts.get(batch.trigger, 0) + 1
        )

    def record_outcome(self, outcome: RequestOutcome) -> None:
        """Account one finished (ok or failed) request.

        Only *completed* requests move the throughput span: shed and
        failed requests produce no served response, so letting their
        arrivals stretch the span start deflated throughput on mixed
        traces.
        """
        if outcome.status == STATUS_INTEGRITY_FAILED:
            self.integrity_failures += 1
            return
        if outcome.status == STATUS_DECODE_FAILED:
            self.decode_errors += 1
            return
        if outcome.status == STATUS_SHARD_FAILED:
            self.shard_failures += 1
            return
        if not outcome.ok:
            return
        self.completed += 1
        self._completed_by_tenant[outcome.tenant] = (
            self._completed_by_tenant.get(outcome.tenant, 0) + 1
        )
        self._latencies.append(outcome.latency)
        if self._first_arrival is None or outcome.arrival_time < self._first_arrival:
            self._first_arrival = outcome.arrival_time
        if self._last_completion is None or outcome.completion_time > self._last_completion:
            self._last_completion = outcome.completion_time

    def record_shed(self, tenant: str) -> None:
        """Account one request refused by backpressure."""
        self.shed += 1
        self._shed_by_tenant[tenant] = self._shed_by_tenant.get(tenant, 0) + 1

    # ------------------------------------------------------------------
    # derived statistics
    # ------------------------------------------------------------------
    def latency_percentile(self, p: float) -> float:
        """``p``-th percentile of completed-request latency (seconds)."""
        if not self._latencies:
            return float("nan")
        return float(np.percentile(self._latencies, p))

    @property
    def mean_latency(self) -> float:
        """Mean completed-request latency (seconds)."""
        return float(np.mean(self._latencies)) if self._latencies else float("nan")

    @property
    def batch_fill_ratio(self) -> float:
        """Mean fraction of virtual-batch slots carrying real samples."""
        return float(np.mean(self._fill_ratios)) if self._fill_ratios else 0.0

    @property
    def throughput(self) -> float:
        """Completed requests per simulated second.

        The span runs from the first *completed* request's arrival to the
        last completion, so shed/failed arrivals cannot stretch it.  A
        degenerate span (a single instantaneous completion) reports
        ``0.0`` rather than leaking ``inf`` into snapshots and benchmark
        JSON artifacts.
        """
        if self.completed == 0 or self._first_arrival is None:
            return 0.0
        span = (self._last_completion or 0.0) - self._first_arrival
        if span <= 0:
            return 0.0
        return self.completed / span

    def completed_by_tenant(self) -> dict[str, int]:
        """Completed request counts per tenant."""
        return dict(self._completed_by_tenant)

    def shed_by_tenant(self) -> dict[str, int]:
        """Shed request counts per tenant."""
        return dict(self._shed_by_tenant)

    def flush_triggers(self) -> dict[str, int]:
        """How many batches flushed per trigger kind."""
        return dict(self._trigger_counts)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """All headline numbers as one dict (stable keys for tests/benches).

        Strict-JSON-safe: non-finite floats (no completions yet, empty
        percentiles) are reported as ``None``/``null``, never as the
        ``Infinity``/``NaN`` literals ``json.dumps`` would otherwise emit
        into benchmark artifacts.
        """

        def _finite(value: float) -> float | None:
            value = float(value)
            return value if math.isfinite(value) else None

        return {
            "completed": self.completed,
            "shed": self.shed,
            "integrity_failures": self.integrity_failures,
            "decode_errors": self.decode_errors,
            "shard_failures": self.shard_failures,
            "batches": self.batches,
            "batch_fill_ratio": _finite(self.batch_fill_ratio),
            "throughput_rps": _finite(self.throughput),
            "latency_p50": _finite(self.latency_percentile(50)),
            "latency_p99": _finite(self.latency_percentile(99)),
            "latency_mean": _finite(self.mean_latency),
        }

    def render(self, title: str = "Serving metrics") -> str:
        """ASCII table of the snapshot."""

        def _fmt(value: float | None, scale: float = 1.0, digits: int = 2) -> str:
            if value is None:
                return "n/a"
            return f"{value * scale:.{digits}f}"

        snap = self.snapshot()
        rows = [
            ["completed requests", snap["completed"]],
            ["shed (backpressure)", snap["shed"]],
            ["integrity failures", snap["integrity_failures"]],
            ["decode errors", snap["decode_errors"]],
            ["shard failures", snap["shard_failures"]],
            ["virtual batches", snap["batches"]],
            ["batch fill ratio", _fmt(snap["batch_fill_ratio"])],
            ["throughput (req/s)", _fmt(snap["throughput_rps"], digits=1)],
            ["latency p50 (ms)", _fmt(snap["latency_p50"], scale=1e3)],
            ["latency p99 (ms)", _fmt(snap["latency_p99"], scale=1e3)],
            ["latency mean (ms)", _fmt(snap["latency_mean"], scale=1e3)],
        ]
        return render_table(["metric", "value"], rows, title=title)
