"""Per-tenant serving sessions: attest once, cache the channel.

The paper's deployment story (Section 3) establishes trust per *session*,
not per request: the client verifies the enclave quote and runs the key
exchange once, then every subsequent request rides the cached encrypted
channel.  :class:`SessionManager` enforces exactly that — the first
``connect`` for a tenant performs the full attestation handshake via
:mod:`repro.enclave.attestation` + :mod:`repro.comm.secure_channel`; later
calls return the cached session with zero additional handshake traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm import Envelope, LinkModel, SecureChannel
from repro.enclave import Enclave, measure_enclave
from repro.errors import AttestationError, ConfigurationError
from repro.runtime.client import DEFAULT_CODE_IDENTITY


@dataclass
class ServingSession:
    """One tenant's established (attested + keyed) session.

    Holds both channel endpoints because the offline driver simulates both
    sides of the wire: the tenant end encrypts requests / decrypts
    responses, the enclave end does the reverse.
    """

    tenant: str
    client_channel: SecureChannel
    enclave_channel: SecureChannel
    enclave: Enclave
    established_at: float = 0.0
    requests_served: int = 0
    #: The enclave shard this session's channel terminates on.
    shard_id: int = 0

    # -- tenant side ----------------------------------------------------
    def encrypt_request(self, x: np.ndarray) -> Envelope:
        """Tenant-side: seal one sample for the enclave."""
        return self.client_channel.send_array(np.asarray(x))

    def decrypt_response(self, envelope: Envelope) -> np.ndarray:
        """Tenant-side: open the enclave's response."""
        return self.client_channel.recv_array(envelope)

    # -- enclave side ---------------------------------------------------
    def decrypt_request(self, envelope: Envelope) -> np.ndarray:
        """Enclave-side: open one sample inside protected memory."""
        self.enclave.ecall("serve_request", envelope.nbytes)
        self.requests_served += 1
        return self.enclave_channel.recv_array(envelope)

    def encrypt_response(self, y: np.ndarray) -> Envelope:
        """Enclave-side: seal a result for the tenant."""
        envelope = self.enclave_channel.send_array(np.asarray(y))
        self.enclave.ocall("serve_response", envelope.nbytes)
        return envelope


class SessionManager:
    """Caches one attested session per tenant.

    Parameters
    ----------
    enclave:
        The serving enclave every tenant attests.
    link:
        Shared link model charged for handshake + request traffic.
    expected_code_identity:
        What the tenants' auditors expect the enclave to run; a mismatch
        raises :class:`~repro.errors.AttestationError` at first connect.
    rng:
        Randomness for key exchange and AEAD nonces.
    shard_id:
        The enclave shard this manager's sessions are scoped to.
    """

    def __init__(
        self,
        enclave: Enclave,
        link: LinkModel | None = None,
        expected_code_identity: str | bytes = DEFAULT_CODE_IDENTITY,
        rng: np.random.Generator | None = None,
        shard_id: int = 0,
    ) -> None:
        self.enclave = enclave
        self.link = link or LinkModel()
        self.expected_measurement = measure_enclave(expected_code_identity)
        self._rng = rng or np.random.default_rng()
        self._sessions: dict[str, ServingSession] = {}
        self.handshakes_performed = 0
        self.shard_id = shard_id

    def connect(self, tenant: str, now: float = 0.0) -> ServingSession:
        """Return the tenant's session, handshaking only on first contact.

        Raises
        ------
        AttestationError
            When the enclave measurement does not match what the tenant
            audited (checked on the handshake path only — cached sessions
            were already verified).
        """
        session = self._sessions.get(tenant)
        if session is not None:
            return session
        quote = self.enclave.quote(report_data=tenant.encode())
        # The tenant's verification logic, run against the platform service.
        self.enclave.verify_peer_quote(quote, self.expected_measurement)
        client_end, enclave_end = SecureChannel.establish_pair(
            tenant, "enclave", self.link, self._rng
        )
        session = ServingSession(
            tenant=tenant,
            client_channel=client_end,
            enclave_channel=enclave_end,
            enclave=self.enclave,
            established_at=now,
            shard_id=self.shard_id,
        )
        self._sessions[tenant] = session
        self.handshakes_performed += 1
        return session

    def drop(self, tenant: str) -> None:
        """Forget a tenant's session (e.g. after migration off this shard)."""
        self._sessions.pop(tenant, None)

    @property
    def active_tenants(self) -> list[str]:
        """Tenants with an established session."""
        return list(self._sessions)


class ShardedSessionManager:
    """Shard-scoped attested sessions with mesh-verified failover.

    Each shard keeps its own :class:`SessionManager` — a session is a
    keyed channel into *one* enclave, so it cannot outlive its shard.
    ``connect`` routes through the :class:`~repro.sharding.ShardRouter`'s
    pinning; when a shard dies, :meth:`fail_over` re-attests every
    displaced tenant on its new shard — but only after the attestation
    mesh confirms the dead and surviving shards had mutually verified
    each other at startup, so a session can never land on an enclave the
    deployment did not vouch for.

    Parameters
    ----------
    shards:
        The deployment's :class:`~repro.sharding.EnclaveShard` s.
    router:
        Pins tenants to shards (and re-pins them on failure).
    mesh:
        Established :class:`~repro.sharding.AttestationMesh` gating
        migrations.
    link / expected_code_identity:
        As for :class:`SessionManager`, shared across shards.
    seed:
        Base seed for per-shard handshake randomness (shard ``i`` draws
        from ``seed + i``), keeping multi-shard runs deterministic.
    """

    def __init__(
        self,
        shards,
        router,
        mesh,
        link: LinkModel | None = None,
        expected_code_identity: str | bytes = DEFAULT_CODE_IDENTITY,
        seed: int | None = None,
    ) -> None:
        self.router = router
        self.mesh = mesh
        self.link = link or LinkModel()
        self._expected_code_identity = expected_code_identity
        self._seed = seed
        self._managers = {
            shard.shard_id: self._manager_for(shard) for shard in shards
        }
        self.migrations = 0

    def _manager_for(self, shard) -> SessionManager:
        """One shard's session manager with its deterministic randomness."""
        seed = None if self._seed is None else self._seed + shard.shard_id
        return SessionManager(
            shard.enclave,
            link=self.link,
            expected_code_identity=self._expected_code_identity,
            rng=np.random.default_rng(seed),
            shard_id=shard.shard_id,
        )

    def connect(self, tenant: str, now: float = 0.0) -> ServingSession:
        """The tenant's session on its pinned shard (handshake on first use)."""
        return self._managers[self.router.shard_for(tenant)].connect(tenant, now)

    # ------------------------------------------------------------------
    # dynamic membership
    # ------------------------------------------------------------------
    def extend(self, shard) -> None:
        """Start managing sessions for a newly provisioned shard.

        The new manager draws its handshake randomness from
        ``seed + shard_id`` exactly as a startup manager would, so a
        deployment that grew to ``n`` shards handshakes identically to
        one constructed with ``n`` shards.
        """
        if shard.shard_id in self._managers:
            raise ConfigurationError(
                f"shard {shard.shard_id} already has a session manager"
            )
        self._managers[shard.shard_id] = self._manager_for(shard)

    def migrate(self, moves: dict[str, int], now: float = 0.0) -> dict[str, int]:
        """Move live sessions between live shards (scale-out/scale-in).

        Unlike :meth:`fail_over`, both ends of each move are alive, so the
        mesh gate is checked for every (source, target) pair *before* any
        session is dropped — a refused migration leaves every session
        exactly where it was, and the caller can abort the membership
        change.  Tenants in ``moves`` without a live session are skipped
        (they will handshake on their new shard at next contact).
        Returns the subset of ``moves`` actually migrated.
        """
        planned: list[tuple[str, int, int]] = []
        for tenant, target in moves.items():
            for manager in self._managers.values():
                if tenant in manager.active_tenants:
                    if manager.shard_id != target:
                        planned.append((tenant, manager.shard_id, target))
                    break
        for tenant, source, target in planned:
            self.mesh.assert_verified(source, target)
        migrated: dict[str, int] = {}
        for tenant, source, target in planned:
            self._managers[source].drop(tenant)
            # A migrated session re-attests on its new shard: trust is per
            # shard, never copied across the mesh.
            self._managers[target].connect(tenant, now)
            self.migrations += 1
            migrated[tenant] = target
        return migrated

    def retire(self, shard_id: int) -> list[str]:
        """Forget a retired shard's manager, dropping any leftover sessions.

        Returns the tenants whose sessions were still open (normally
        empty — :meth:`migrate` runs first on the drain path); they
        re-handshake wherever the router pins them next.
        """
        manager = self._managers.pop(shard_id, None)
        if manager is None:
            return []
        leftovers = manager.active_tenants
        for tenant in leftovers:
            manager.drop(tenant)
        return leftovers

    def fail_over(self, failed_shard: int, now: float = 0.0) -> dict[str, int]:
        """Migrate every session off a dead shard, re-attesting each tenant.

        The router must already have marked the shard failed (so
        ``shard_for`` yields the new pins).  Returns ``{tenant: new_shard}``
        for the sessions that moved.

        Raises
        ------
        AttestationError
            When the mesh never verified the link between the dead shard
            and a migration target.  The gate is atomic — checked for
            every target before *any* session moves — and the dead
            shard's sessions are dropped either way (they terminate on a
            dead enclave), so a refusal leaves no tenant with a live
            session anywhere: no response rides a shard the mesh did not
            vouch for, and the tenant's next request performs a fresh
            tenant-side attestation handshake on its new shard
            (``migrations`` counts only mesh-gated moves, not those
            from-scratch reconnects).
        """
        dead = self._managers[failed_shard]
        targets = {
            tenant: self.router.shard_for(tenant) for tenant in dead.active_tenants
        }
        try:
            for target in sorted(set(targets.values())):
                self.mesh.assert_verified(failed_shard, target)
        except AttestationError:
            for tenant in targets:
                dead.drop(tenant)
            raise
        for tenant, target in targets.items():
            dead.drop(tenant)
            # A migrated session re-runs the full attestation + key
            # exchange against the surviving enclave: trust is per shard,
            # never copied across the mesh.
            self._managers[target].connect(tenant, now)
            self.migrations += 1
        return targets

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def handshakes_performed(self) -> int:
        """Attestation handshakes across all shards (incl. migrations)."""
        return sum(m.handshakes_performed for m in self._managers.values())

    @property
    def active_tenants(self) -> list[str]:
        """Tenants with an established session on any shard."""
        return [t for m in self._managers.values() for t in m.active_tenants]

    def sessions_by_shard(self) -> dict[int, list[str]]:
        """Tenants per shard (for observability and tests)."""
        return {m.shard_id: m.active_tenants for m in self._managers.values()}
