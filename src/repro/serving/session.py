"""Per-tenant serving sessions: attest once, cache the channel.

The paper's deployment story (Section 3) establishes trust per *session*,
not per request: the client verifies the enclave quote and runs the key
exchange once, then every subsequent request rides the cached encrypted
channel.  :class:`SessionManager` enforces exactly that — the first
``connect`` for a tenant performs the full attestation handshake via
:mod:`repro.enclave.attestation` + :mod:`repro.comm.secure_channel`; later
calls return the cached session with zero additional handshake traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm import Envelope, LinkModel, SecureChannel
from repro.enclave import Enclave, measure_enclave
from repro.runtime.client import DEFAULT_CODE_IDENTITY


@dataclass
class ServingSession:
    """One tenant's established (attested + keyed) session.

    Holds both channel endpoints because the offline driver simulates both
    sides of the wire: the tenant end encrypts requests / decrypts
    responses, the enclave end does the reverse.
    """

    tenant: str
    client_channel: SecureChannel
    enclave_channel: SecureChannel
    enclave: Enclave
    established_at: float = 0.0
    requests_served: int = 0

    # -- tenant side ----------------------------------------------------
    def encrypt_request(self, x: np.ndarray) -> Envelope:
        """Tenant-side: seal one sample for the enclave."""
        return self.client_channel.send_array(np.asarray(x))

    def decrypt_response(self, envelope: Envelope) -> np.ndarray:
        """Tenant-side: open the enclave's response."""
        return self.client_channel.recv_array(envelope)

    # -- enclave side ---------------------------------------------------
    def decrypt_request(self, envelope: Envelope) -> np.ndarray:
        """Enclave-side: open one sample inside protected memory."""
        self.enclave.ecall("serve_request", envelope.nbytes)
        self.requests_served += 1
        return self.enclave_channel.recv_array(envelope)

    def encrypt_response(self, y: np.ndarray) -> Envelope:
        """Enclave-side: seal a result for the tenant."""
        envelope = self.enclave_channel.send_array(np.asarray(y))
        self.enclave.ocall("serve_response", envelope.nbytes)
        return envelope


class SessionManager:
    """Caches one attested session per tenant.

    Parameters
    ----------
    enclave:
        The serving enclave every tenant attests.
    link:
        Shared link model charged for handshake + request traffic.
    expected_code_identity:
        What the tenants' auditors expect the enclave to run; a mismatch
        raises :class:`~repro.errors.AttestationError` at first connect.
    rng:
        Randomness for key exchange and AEAD nonces.
    """

    def __init__(
        self,
        enclave: Enclave,
        link: LinkModel | None = None,
        expected_code_identity: str | bytes = DEFAULT_CODE_IDENTITY,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.enclave = enclave
        self.link = link or LinkModel()
        self.expected_measurement = measure_enclave(expected_code_identity)
        self._rng = rng or np.random.default_rng()
        self._sessions: dict[str, ServingSession] = {}
        self.handshakes_performed = 0

    def connect(self, tenant: str, now: float = 0.0) -> ServingSession:
        """Return the tenant's session, handshaking only on first contact.

        Raises
        ------
        AttestationError
            When the enclave measurement does not match what the tenant
            audited (checked on the handshake path only — cached sessions
            were already verified).
        """
        session = self._sessions.get(tenant)
        if session is not None:
            return session
        quote = self.enclave.quote(report_data=tenant.encode())
        # The tenant's verification logic, run against the platform service.
        self.enclave.verify_peer_quote(quote, self.expected_measurement)
        client_end, enclave_end = SecureChannel.establish_pair(
            tenant, "enclave", self.link, self._rng
        )
        session = ServingSession(
            tenant=tenant,
            client_channel=client_end,
            enclave_channel=enclave_end,
            enclave=self.enclave,
            established_at=now,
        )
        self._sessions[tenant] = session
        self.handshakes_performed += 1
        return session

    @property
    def active_tenants(self) -> list[str]:
        """Tenants with an established session."""
        return list(self._sessions)
