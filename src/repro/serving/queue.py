"""Bounded multi-tenant request queue with round-robin fair draining.

The queue is the server's backpressure valve: admission beyond
``capacity`` raises :class:`~repro.errors.BackpressureError` (shed-load)
instead of letting latency grow without bound, and draining interleaves
tenants round-robin so one saturating tenant cannot starve the others out
of virtual-batch slots.
"""

from __future__ import annotations

from collections import deque

from repro.errors import BackpressureError, ConfigurationError
from repro.serving.requests import PendingRequest


class RequestQueue:
    """FIFO per tenant, round-robin across tenants, bounded overall.

    Parameters
    ----------
    capacity:
        Maximum pending requests across all tenants; pushes beyond it shed.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ConfigurationError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queues: dict[str, deque[PendingRequest]] = {}
        self._seen: list[str] = []
        #: Tenants with pending requests, in rotation order.  The head is
        #: always the next tenant to serve; serving rotates it to the
        #: back, draining a tenant drops it, and a (re-)activating tenant
        #: joins at the back — so the rotation is anchored by tenant, not
        #: by an index into an ever-growing list, and a new tenant can
        #: never skip or double-serve an existing tenant's turn.
        self._rotation: deque[str] = deque()
        self._depth = 0
        self.shed_count = 0
        self.pushed_count = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def push(self, request: PendingRequest) -> None:
        """Admit one request or shed it when the queue is full.

        Raises
        ------
        BackpressureError
            When ``capacity`` pending requests are already queued.
        """
        if self._depth >= self.capacity:
            self.shed_count += 1
            raise BackpressureError(
                f"request queue full ({self.capacity} pending);"
                f" shedding request {request.request_id} from {request.tenant!r}"
            )
        tenant_queue = self._queues.get(request.tenant)
        if tenant_queue is None:
            tenant_queue = self._queues[request.tenant] = deque()
            self._seen.append(request.tenant)
        if not tenant_queue:
            # Newly active (or re-activating after a drain): take the
            # back of the rotation — never the middle of someone's turn.
            self._rotation.append(request.tenant)
        tenant_queue.append(request)
        self._depth += 1
        self.pushed_count += 1

    # ------------------------------------------------------------------
    # fair draining
    # ------------------------------------------------------------------
    def pop_fair(self, max_n: int) -> list[PendingRequest]:
        """Pop up to ``max_n`` requests, one per tenant per rotation.

        Tenants are visited round-robin starting where the previous call
        stopped, so over consecutive batches every active tenant gets an
        equal share of slots regardless of individual queue depth.  The
        rotation holds only tenants with pending work and is keyed by
        tenant, so tenants draining or arriving mid-rotation never shift
        whose turn is next.
        """
        out: list[PendingRequest] = []
        while len(out) < max_n and self._rotation:
            tenant = self._rotation.popleft()
            tenant_queue = self._queues[tenant]
            out.append(tenant_queue.popleft())
            self._depth -= 1
            if tenant_queue:
                self._rotation.append(tenant)
        return out

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Pending requests across all tenants."""
        return self._depth

    @property
    def tenants(self) -> list[str]:
        """Tenants seen so far, in first-arrival order."""
        return list(self._seen)

    def depth_by_tenant(self) -> dict[str, int]:
        """Pending requests per tenant."""
        return {t: len(q) for t, q in self._queues.items() if q}

    def oldest_enqueue_time(self) -> float | None:
        """Enqueue time of the longest-waiting request, or None when empty."""
        heads = [q[0].enqueue_time for q in self._queues.values() if q]
        return min(heads) if heads else None
