"""Bounded multi-tenant request queue with round-robin fair draining.

The queue is the server's backpressure valve: admission beyond
``capacity`` sheds load instead of letting latency grow without bound,
and draining interleaves tenants round-robin so one saturating tenant
cannot starve the others out of virtual-batch slots.

With an :class:`~repro.serving.slo.SloPolicy` attached, shedding becomes
*class-aware*: a full queue first tries to evict the newest pending
request of a strictly lower-priority class to make room for the arrival,
so a best-effort backlog can no longer block premium traffic.  Equal
priorities never evict each other — without a policy (or with every
tenant in the default class) the arrival is shed exactly as before.

Admission is also *quota*-aware: a class with ``admission_share < 1``
may occupy at most that share of the queue's capacity, so a premium
flood can no longer evict every best-effort request (and vice versa a
best-effort backlog cannot monopolise the queue).  Quota sheds raise
:class:`~repro.errors.QuotaExceededError` and are counted separately
(``quota_shed_count``) so telemetry distinguishes "queue full" from
"class over its share".

The queue is also the flush timer's source of truth: with per-class
budgets, the scheduler's deadline is the *minimum remaining budget* among
pending requests (:meth:`RequestQueue.earliest_deadline`), not one global
wait.
"""

from __future__ import annotations

import math
from collections import deque

from repro.errors import BackpressureError, ConfigurationError, QuotaExceededError
from repro.serving.requests import PendingRequest
from repro.serving.slo import SloPolicy


class RequestQueue:
    """FIFO per tenant, round-robin across tenants, bounded overall.

    Parameters
    ----------
    capacity:
        Maximum pending requests across all tenants; pushes beyond it
        shed (or, with an SLO policy, evict a lower-priority victim).
    slo:
        Optional per-tenant class assignment.  ``None`` keeps the
        priority-blind shed-the-arrival behavior bit-identical to
        previous releases.
    """

    def __init__(self, capacity: int = 256, slo: SloPolicy | None = None) -> None:
        if capacity < 1:
            raise ConfigurationError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.slo = slo
        self._queues: dict[str, deque[PendingRequest]] = {}
        self._seen: list[str] = []
        #: Tenants with pending requests, in rotation order.  The head is
        #: always the next tenant to serve; serving rotates it to the
        #: back, draining a tenant drops it, and a (re-)activating tenant
        #: joins at the back — so the rotation is anchored by tenant, not
        #: by an index into an ever-growing list, and a new tenant can
        #: never skip or double-serve an existing tenant's turn.
        self._rotation: deque[str] = deque()
        #: Deficit round-robin carry: fractional drain credit a tenant
        #: banked from earlier turns (bounded by its class weight).
        self._drain_credit: dict[str, float] = {}
        self._depth = 0
        #: Pending requests per SLO class (admission-quota accounting).
        self._class_depth: dict[str, int] = {}
        #: Arrivals refused because their class hit its admission quota.
        self.quota_shed_count = 0
        #: Arrivals refused outright at admission (no eviction possible).
        self.shed_count = 0
        #: Pending requests evicted to admit a higher-priority arrival.
        #: Kept separate from ``shed_count`` so telemetry distinguishes
        #: who paid for a full queue: the arrival or the backlog.
        self.evicted_count = 0
        self.pushed_count = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def push(self, request: PendingRequest) -> PendingRequest | None:
        """Admit one request; returns the pending request evicted for it.

        When the queue is full, a strictly lower-priority pending request
        (newest first, highest shed weight first) is evicted to make room
        and returned so the caller can record its outcome.  With no
        eligible victim the *arrival* is shed, exactly as before.

        Raises
        ------
        QuotaExceededError
            When the arrival's class already occupies its configured
            ``admission_share`` of the queue (checked first: a class over
            quota may not evict anybody to grow further).
        BackpressureError
            When ``capacity`` pending requests are already queued and no
            lower-priority victim exists.
        """
        evicted = None
        cls = self.slo.class_for(request.tenant) if self.slo else None
        if cls is not None and cls.admission_share < 1.0:
            if self._class_depth.get(cls.name, 0) >= cls.admission_cap(self.capacity):
                self.quota_shed_count += 1
                self.shed_count += 1
                raise QuotaExceededError(
                    f"class {cls.name!r} holds {self._class_depth[cls.name]} of"
                    f" its {cls.admission_cap(self.capacity)}-slot admission"
                    f" quota (share {cls.admission_share} of {self.capacity});"
                    f" shedding request {request.request_id}"
                    f" from {request.tenant!r}"
                )
        if self._depth >= self.capacity:
            priority = self.slo.priority_for(request.tenant) if self.slo else 0
            evicted = self.evict_newest_below(priority)
            if evicted is None:
                self.shed_count += 1
                raise BackpressureError(
                    f"request queue full ({self.capacity} pending);"
                    f" shedding request {request.request_id} from {request.tenant!r}"
                )
        tenant_queue = self._queues.get(request.tenant)
        if tenant_queue is None:
            tenant_queue = self._queues[request.tenant] = deque()
            self._seen.append(request.tenant)
        if not tenant_queue:
            # Newly active (or re-activating after a drain): take the
            # back of the rotation — never the middle of someone's turn.
            self._rotation.append(request.tenant)
        tenant_queue.append(request)
        self._depth += 1
        if cls is not None:
            self._class_depth[cls.name] = self._class_depth.get(cls.name, 0) + 1
        self.pushed_count += 1
        return evicted

    def _eviction_key(self, tenant: str) -> tuple:
        """Victim ordering for one tenant's newest pending request.

        Lowest class priority first, then highest shed weight, then the
        newest request overall (it has waited least, so evicting it
        wastes the least standing work); request id breaks exact ties
        deterministically.
        """
        tail = self._queues[tenant][-1]
        if self.slo is not None:
            cls = self.slo.class_for(tenant)
            priority, weight = cls.priority, cls.shed_weight
        else:
            priority, weight = 0, 1.0
        return (priority, -weight, -tail.enqueue_time, -tail.request_id)

    def peek_eviction_candidate(self, priority: int) -> tuple[tuple, str] | None:
        """The best eviction victim strictly below ``priority``, if any.

        Returns ``(ordering_key, tenant)`` without mutating the queue so
        a multi-queue deployment can compare candidates *across* shards
        before committing to one eviction.
        """
        best: tuple[tuple, str] | None = None
        for tenant, tenant_queue in self._queues.items():
            if not tenant_queue:
                continue
            victim_priority = self.slo.priority_for(tenant) if self.slo else 0
            if victim_priority >= priority:
                continue
            key = self._eviction_key(tenant)
            if best is None or key < best[0]:
                best = (key, tenant)
        return best

    def evict_newest_below(self, priority: int) -> PendingRequest | None:
        """Evict (and return) the best victim strictly below ``priority``.

        ``None`` when every pending request holds equal or higher
        standing — the caller must shed the arrival instead.
        """
        candidate = self.peek_eviction_candidate(priority)
        if candidate is None:
            return None
        tenant = candidate[1]
        victim = self._queues[tenant].pop()
        self._depth -= 1
        self._note_removed(tenant, 1)
        self.evicted_count += 1
        if not self._queues[tenant]:
            self._rotation.remove(tenant)
            self._drain_credit.pop(tenant, None)
        return victim

    # ------------------------------------------------------------------
    # fair draining
    # ------------------------------------------------------------------
    def pop_fair(self, max_n: int) -> list[PendingRequest]:
        """Pop up to ``max_n`` requests, class-weighted round-robin.

        Tenants are visited round-robin starting where the previous call
        stopped; each turn is worth the tenant's class ``drain_weight``
        slots (deficit round-robin: fractional weights accumulate as
        credit, bounded by the weight, and a drained tenant forfeits its
        carry).  Without an SLO policy — or with every class at the
        default weight 1 — each turn pops exactly one request, so over
        consecutive batches every active tenant gets an equal share of
        slots regardless of individual queue depth, bit-identical to the
        classic rotation.  The rotation holds only tenants with pending
        work and is keyed by tenant, so tenants draining or arriving
        mid-rotation never shift whose turn is next.
        """
        out: list[PendingRequest] = []
        while len(out) < max_n and self._rotation:
            tenant = self._rotation.popleft()
            tenant_queue = self._queues[tenant]
            weight = (
                self.slo.class_for(tenant).drain_weight if self.slo else 1.0
            )
            credit = self._drain_credit.pop(tenant, 0.0) + weight
            take = min(max(1, int(credit)), len(tenant_queue), max_n - len(out))
            for _ in range(take):
                out.append(tenant_queue.popleft())
            self._depth -= take
            self._note_removed(tenant, take)
            if tenant_queue:
                leftover = credit - take
                if leftover > 0:
                    # Cap the carry at one turn's weight so an idle spell
                    # can never bank an unbounded burst.
                    self._drain_credit[tenant] = min(leftover, weight)
                self._rotation.append(tenant)
        return out

    # ------------------------------------------------------------------
    # re-homing (elastic membership)
    # ------------------------------------------------------------------
    def extract_tenant(self, tenant: str) -> list[PendingRequest]:
        """Remove and return one tenant's entire pending FIFO.

        Used when the router re-pins a tenant to another shard: the
        already-admitted requests follow the pin via
        :meth:`absorb` on the target queue, preserving enqueue times and
        order.  Extraction is not a shed — no counter moves.
        """
        tenant_queue = self._queues.get(tenant)
        if not tenant_queue:
            return []
        requests = list(tenant_queue)
        tenant_queue.clear()
        self._depth -= len(requests)
        self._note_removed(tenant, len(requests))
        self._rotation.remove(tenant)
        self._drain_credit.pop(tenant, None)
        return requests

    def absorb(self, requests: list[PendingRequest]) -> None:
        """Re-home already-admitted requests onto this queue.

        Unlike :meth:`push` this performs no capacity or quota check and
        bumps no admission counter: the requests were admitted once at
        their original shard, and a membership change must never turn an
        admitted request into a shed.  Per-tenant FIFO order and enqueue
        times are preserved; re-homed tenants join the back of the
        rotation like any newly active tenant.
        """
        for request in requests:
            tenant_queue = self._queues.get(request.tenant)
            if tenant_queue is None:
                tenant_queue = self._queues[request.tenant] = deque()
                self._seen.append(request.tenant)
            if not tenant_queue:
                self._rotation.append(request.tenant)
            tenant_queue.append(request)
            self._depth += 1
            if self.slo is not None:
                name = self.slo.class_for(request.tenant).name
                self._class_depth[name] = self._class_depth.get(name, 0) + 1

    def _note_removed(self, tenant: str, count: int) -> None:
        """Release ``count`` admission-quota slots held by ``tenant``."""
        if self.slo is None or count == 0:
            return
        name = self.slo.class_for(tenant).name
        remaining = self._class_depth.get(name, 0) - count
        if remaining > 0:
            self._class_depth[name] = remaining
        else:
            self._class_depth.pop(name, None)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Pending requests across all tenants."""
        return self._depth

    def depth_by_class(self) -> dict[str, int]:
        """Pending requests per SLO class (empty without a policy)."""
        return dict(self._class_depth)

    @property
    def tenants(self) -> list[str]:
        """Tenants seen so far, in first-arrival order."""
        return list(self._seen)

    def depth_by_tenant(self) -> dict[str, int]:
        """Pending requests per tenant."""
        return {t: len(q) for t, q in self._queues.items() if q}

    def oldest_enqueue_time(self) -> float | None:
        """Enqueue time of the longest-waiting request, or None when empty."""
        heads = [q[0].enqueue_time for q in self._queues.values() if q]
        return min(heads) if heads else None

    def earliest_deadline(self, wait: float) -> float | None:
        """The earliest flush deadline among pending requests.

        Each request must flush by ``enqueue + min(wait, flush budget)``:
        ``wait`` is the deadline in force for its class-less share of the
        queue (static or learned), and the class's flush budget caps it
        so a premium request's batch never waits past its contract.  Per
        tenant the FIFO head is the oldest request and every request in a
        tenant queue shares one class, so the minimum over heads is the
        minimum over all pending requests.  Without an SLO policy this is
        exactly ``oldest_enqueue_time() + wait``.
        """
        best = None
        for tenant, tenant_queue in self._queues.items():
            if not tenant_queue:
                continue
            budget = (
                self.slo.flush_budget_for(tenant) if self.slo else math.inf
            )
            deadline = tenant_queue[0].enqueue_time + min(wait, budget)
            if best is None or deadline < best:
                best = deadline
        return best
