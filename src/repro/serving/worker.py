"""Worker pool: staged encode -> GPU dispatch -> decode over shared hardware.

All workers share one :class:`~repro.runtime.inference.PrivateInferenceEngine`
(and therefore one enclave + GPU cluster): the enclave is the serialized
resource in DarKnight, so parallelism comes from the *pipeline* — the
engine's staged executor runs every batch on a persistent simulated
timeline (one enclave clock, per-device GPU clocks), which means batch
``n+1``'s encode overlaps batch ``n``'s GPU compute across dispatch calls,
not just within one batch.  Simulated completion times come from the real
per-stage timings the pipeline produced (bytes masked, MACs executed), not
from an a-priori service-time model; the masked compute itself runs for
real.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DecodingError, IntegrityError
from repro.runtime.inference import PrivateInferenceEngine
from repro.serving.requests import (
    STATUS_DECODE_FAILED,
    STATUS_INTEGRITY_FAILED,
    STATUS_OK,
    RequestOutcome,
    ScheduledBatch,
)


class InferenceWorkerPool:
    """Dispatches scheduled batches onto the shared staged pipeline.

    Parameters
    ----------
    engine:
        The shared private-inference engine; its backend pads partial
        batches up to the virtual-batch size internally, and its executor
        prices every stage on the persistent simulated timeline.
    n_workers:
        Kept for interface compatibility (must be >= 1).  Overlap is now a
        property of the staged pipeline itself — the enclave and each GPU
        are the real serialized resources — so this no longer multiplies
        capacity.
    """

    def __init__(
        self,
        engine: PrivateInferenceEngine,
        n_workers: int = 1,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"worker pool needs >= 1 workers, got {n_workers}")
        self.engine = engine
        self._n_workers = n_workers
        self.batches_run = 0
        #: Enclave-occupied simulated seconds across all dispatched windows.
        self.busy_time = 0.0
        self._stage_totals: dict[str, float] = {}

    def dispatch(self, batch: ScheduledBatch) -> list[RequestOutcome]:
        """Run one batch through the masked pipeline; never raises.

        Integrity and decode failures are converted into per-request
        failure outcomes so one byzantine GPU cannot crash the server.
        """
        return self.dispatch_window([batch])

    def dispatch_window(self, batches: list[ScheduledBatch]) -> list[RequestOutcome]:
        """Pipeline a window of flushed batches through one event loop.

        Every batch in the window shares the executor's in-flight window,
        so the enclave encodes batch ``n+1`` while batch ``n``'s shares
        are on the GPUs — cross-batch overlap, priced on the persistent
        timeline.  A decode/integrity failure aborts the shared schedule,
        so the window is re-dispatched batch by batch: failures isolate to
        their own batch's requests (exactly the old per-batch semantics)
        while healthy co-flushed batches still complete.
        """
        if not batches:
            return []
        status, error = STATUS_OK, None
        items = [
            (np.stack([req.x for req in batch.requests]), batch.flush_time)
            for batch in batches
        ]
        try:
            groups, stats = self.engine.run_batch_window(items)
            for stage, seconds in stats.stage_totals.items():
                self._stage_totals[stage] = self._stage_totals.get(stage, 0.0) + seconds
            self.busy_time += stats.enclave_busy
        except (IntegrityError, DecodingError) as exc:
            if len(batches) > 1:
                # One bad batch aborted the shared schedule; isolate it by
                # running every batch in its own single-batch window.
                return [
                    o for batch in batches for o in self.dispatch_window([batch])
                ]
            status = (
                STATUS_INTEGRITY_FAILED
                if isinstance(exc, IntegrityError)
                else STATUS_DECODE_FAILED
            )
            error = str(exc)
        if error is not None:
            # The aborted run still occupied the enclave up to the
            # failure point; charge it up to the clock's frontier.
            fallback = max(self.engine.timeline.free_at, batches[0].flush_time)
            groups = [None] * len(batches)
        self.batches_run += len(batches)

        outcomes = []
        for batch, group in zip(batches, groups):
            for i, req in enumerate(batch.requests):
                row = group.output[i] if group is not None else None
                outcomes.append(
                    RequestOutcome(
                        request_id=req.request_id,
                        tenant=req.tenant,
                        status=status,
                        arrival_time=req.arrival_time,
                        dispatch_time=(
                            group.start if group is not None else batch.flush_time
                        ),
                        completion_time=(
                            group.finish if group is not None else fallback
                        ),
                        batch_id=batch.batch_id,
                        logits=row,
                        prediction=int(np.argmax(row)) if row is not None else None,
                        error=error,
                    )
                )
        return outcomes

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        """Configured worker count (compatibility; see class docstring)."""
        return self._n_workers

    @property
    def pipeline_depth(self) -> int:
        """Virtual batches the shared engine keeps in flight."""
        return self.engine.pipeline_depth

    def stage_totals(self) -> dict[str, float]:
        """Cumulative simulated seconds per stage across all batches."""
        return dict(self._stage_totals)

    def worker_stats(self) -> list[dict]:
        """Aggregate pipeline stats (single shared enclave/GPU stack)."""
        return [
            {
                "worker_id": 0,
                "batches_run": self.batches_run,
                "busy_time": self.busy_time,
                "stage_totals": self.stage_totals(),
            }
        ]
