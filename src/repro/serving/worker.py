"""Worker pool: flush windows dispatched onto per-shard pipeline loops.

Each :class:`~repro.sharding.EnclaveShard` owns a full enclave + GPU
cluster + staged pipeline engine on its *own* serialized timeline, so the
pool's job is routing, not compute: a flush window's batches are grouped
by their shard and each group runs through that shard's
:class:`~repro.pipeline.PipelineExecutor` loop.  Because the timelines
are independent, shard ``A``'s enclave encodes while shard ``B``'s
decodes — parallel enclave timelines behind one scheduler, which is what
lets simulated throughput scale with the shard count on enclave-bound
workloads.  Within one shard, the staged pipeline still overlaps batch
``n+1``'s encode with batch ``n``'s GPU compute exactly as before.

Failures stay contained at two granularities:

* integrity/decode failures abort one shard's window and are retried
  batch-by-batch on the *same* shard, so a byzantine GPU fails only its
  own batch's requests;
* a shard death (:class:`~repro.errors.ShardFailedError`) triggers
  failover: the router unpins the dead shard's tenants, the session layer
  re-attests them across the mesh, and the window's unfinished batches
  retry per batch on the survivors — no response is dropped.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.audit.commitment import STATUS_RETRIED
from repro.errors import (
    AttestationError,
    ConfigurationError,
    DecodingError,
    IntegrityError,
    ShardError,
    ShardFailedError,
)
from repro.runtime.inference import PrivateInferenceEngine
from repro.serving.adaptive import WindowFeedback
from repro.serving.requests import (
    STATUS_DECODE_FAILED,
    STATUS_INTEGRITY_FAILED,
    STATUS_OK,
    STATUS_SHARD_FAILED,
    RequestOutcome,
    ScheduledBatch,
)
from repro.sharding import EnclaveShard


class InferenceWorkerPool:
    """Dispatches scheduled batches onto per-shard staged pipelines.

    Parameters
    ----------
    engine:
        Single-shard convenience: the engine is wrapped in an implicit
        shard 0 (the pre-sharding deployment shape).  Mutually exclusive
        with ``shards``.
    n_workers:
        Kept for interface compatibility (must be >= 1); concurrency
        comes from the per-shard pipelines, not worker lanes.
    shards:
        The deployment's :class:`~repro.sharding.EnclaveShard` s.
    router:
        Re-pins tenants when a shard fails (required for failover when
        more than one shard is configured).
    sessions:
        The :class:`~repro.serving.session.ShardedSessionManager` whose
        sessions must migrate on shard failure.
    on_feedback:
        Optional callback receiving one
        :class:`~repro.serving.adaptive.WindowFeedback` per successfully
        dispatched per-shard window — the timing feedback loop the
        adaptive flush policy learns from.
    slo:
        Optional :class:`~repro.serving.slo.SloPolicy`.  When set, each
        dispatched batch carries the tightest remaining end-to-end
        deadline among its requests (``arrival + budget``), which the
        deadline-aware stage ranker uses to spend the serialized enclave
        on premium windows first.  ``None`` dispatches without
        deadlines — the classic schedule.  Failover also becomes
        budget-aware: requests whose class budget is already exhausted at
        the failure frontier are failed immediately (and counted in
        :attr:`retries_skipped_budget`) instead of burning a surviving
        shard's enclave on a response that can only arrive late.
    audit:
        Optional :class:`~repro.audit.AuditTrail`.  When set, every
        dispatched window — completed, aborted-and-isolated, failed-over,
        or terminally failed — is committed to the owning shard's chained
        log at flush completion.  ``None`` (the default) skips every
        commit site; dispatch behaviour and outcomes are bit-identical.
    """

    def __init__(
        self,
        engine: PrivateInferenceEngine | None = None,
        n_workers: int = 1,
        shards: list[EnclaveShard] | None = None,
        router=None,
        sessions=None,
        on_feedback=None,
        slo=None,
        audit=None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"worker pool needs >= 1 workers, got {n_workers}")
        if shards is None:
            if engine is None:
                raise ConfigurationError("worker pool needs an engine or shards")
            shards = [EnclaveShard(0, engine)]
        elif engine is not None:
            raise ConfigurationError("pass either an engine or shards, not both")
        self.shards = {shard.shard_id: shard for shard in shards}
        self.router = router
        self.sessions = sessions
        self.on_feedback = on_feedback
        self.slo = slo
        self.audit = audit
        self._n_workers = n_workers
        self.batches_run = 0
        #: Enclave-occupied simulated seconds summed over all shards.
        self.busy_time = 0.0
        self.failovers = 0
        #: Failover retries skipped because the class SLO budget was
        #: already exhausted at the failure frontier.
        self.retries_skipped_budget = 0
        #: Failover retries shed because the remaining budget at the
        #: failure frontier could not cover the measured service-time
        #: floor — the retry was *guaranteed* to finish late even though
        #: the deadline had not yet passed.
        self.retries_skipped_floor = 0
        #: Minimum observed per-batch service span (dispatch to finish)
        #: across successful windows; the shed decision's lower bound.
        self._service_floor = math.inf
        self._failed_shards: set[int] = set()
        self._retired_shards: dict[int, EnclaveShard] = {}
        self._stage_totals: dict[str, float] = {}

    # ------------------------------------------------------------------
    # dynamic membership
    # ------------------------------------------------------------------
    def join(self, shard: EnclaveShard) -> None:
        """Add a newly provisioned (and mesh-attested) shard to the pool."""
        if shard.shard_id in self.shards or shard.shard_id in self._retired_shards:
            raise ConfigurationError(
                f"shard {shard.shard_id} is already pooled"
            )
        self.shards[shard.shard_id] = shard

    def retire(self, shard_id: int) -> EnclaveShard:
        """Remove a drained shard from dispatch, keeping its stats visible.

        The shard must exist; retired shards stay out of the failover
        survivor count and receive no further windows, but
        :meth:`worker_stats` still reports their lifetime totals.
        """
        if shard_id not in self.shards:
            raise ConfigurationError(f"unknown pool shard id {shard_id}")
        shard = self.shards.pop(shard_id)
        self._retired_shards[shard_id] = shard
        return shard

    @property
    def engine(self) -> PrivateInferenceEngine:
        """Shard 0's engine (single-shard compatibility accessor)."""
        return self.shards[min(self.shards)].engine

    def dispatch(self, batch: ScheduledBatch) -> list[RequestOutcome]:
        """Run one batch through its shard's pipeline; never raises."""
        return self.dispatch_window([batch])

    def dispatch_window(self, batches: list[ScheduledBatch]) -> list[RequestOutcome]:
        """Dispatch a window of flushed batches to their shards' pipelines.

        Batches grouped per shard share that shard's executor window (the
        enclave encodes batch ``n+1`` while batch ``n``'s shares are on
        the GPUs); different shards' groups run on independent timelines.
        Outcomes are returned in batch order regardless of shard.
        """
        if not batches:
            return []
        by_shard: dict[int, list[ScheduledBatch]] = {}
        for batch in batches:
            by_shard.setdefault(batch.shard_id, []).append(batch)
        by_batch: dict[int, list[RequestOutcome]] = {b.batch_id: [] for b in batches}
        for shard_id in sorted(by_shard):
            for outcome in self._dispatch_on(shard_id, by_shard[shard_id]):
                by_batch[outcome.batch_id].append(outcome)
        return [o for batch in batches for o in by_batch[batch.batch_id]]

    # ------------------------------------------------------------------
    # per-shard dispatch
    # ------------------------------------------------------------------
    def _commit(
        self,
        shard_id: int,
        batches: list[ScheduledBatch],
        outputs_by_batch: list,
        status: str,
        aborted: bool = False,
        error: str | None = None,
    ) -> None:
        """Commit one window to the audit trail (no-op when audit is off).

        A layer-partitioned unit (a :class:`~repro.sharding.partition.
        PipelineGroup`) fans the commit out: every member shard's chained
        log records its *own* sub-window — the exit member the response
        logits, interior members the flattened live activations their
        stage produced — so each physical enclave's chain stays a
        complete, independently verifiable account of what it computed.
        """
        if self.audit is None or not batches:
            return
        unit = self.shards.get(shard_id) or self._retired_shards.get(shard_id)
        members = getattr(unit, "members", None)
        if members is None:
            self.audit.commit_window(
                shard_id,
                batches,
                outputs_by_batch,
                status=status,
                aborted=aborted,
                error=error,
            )
            return
        has_outputs = any(out is not None for out in outputs_by_batch)
        for member in members:
            outs = (
                unit.sub_outputs(member.shard_id, len(batches), outputs_by_batch)
                if has_outputs
                else outputs_by_batch
            )
            self.audit.commit_window(
                member.shard_id,
                batches,
                outs,
                status=status,
                aborted=aborted,
                error=error,
            )

    def _batch_deadline(self, batch: ScheduledBatch) -> float:
        """The tightest end-to-end deadline among the batch's requests.

        A batch carrying an explicit :attr:`ScheduledBatch.deadline`
        (a failover retry stamped with its requests' remaining budget)
        keeps it; otherwise the deadline derives from class budgets.
        """
        if batch.deadline is not None:
            return batch.deadline
        if self.slo is None:
            return math.inf
        return min(
            (req.arrival_time + self.slo.budget_for(req.tenant)
             for req in batch.requests),
            default=math.inf,
        )

    def _dispatch_on(
        self, shard_id: int, batches: list[ScheduledBatch]
    ) -> list[RequestOutcome]:
        shard = self.shards[shard_id]
        items = [
            (
                np.stack([req.x for req in batch.requests]),
                batch.flush_time,
                self._batch_deadline(batch),
            )
            for batch in batches
        ]
        busy_before = shard.timeline.busy_time
        try:
            groups, stats = shard.run_window(items)
        except ShardFailedError as exc:
            return self._fail_over(shard, batches, exc)
        except (IntegrityError, DecodingError) as exc:
            # The aborted run still occupied the enclave up to the failure
            # point; charge that occupancy to the pool (and the shard) no
            # matter how many batches shared the window — the isolating
            # single-batch re-runs below account only their *own* time.
            aborted_busy = shard.timeline.busy_time - busy_before
            self.busy_time += aborted_busy
            shard.busy_time += aborted_busy
            if len(batches) > 1:
                # One bad batch aborted the shared schedule; isolate it by
                # running every batch in its own single-batch window.  The
                # aborted shared window still enters the audit log, marked
                # as retried — the terminal leaves live in the isolating
                # single-batch windows below.
                self._commit(
                    shard_id,
                    batches,
                    [None] * len(batches),
                    status=STATUS_RETRIED,
                    aborted=True,
                    error=str(exc),
                )
                return [
                    o for batch in batches for o in self._dispatch_on(shard_id, [batch])
                ]
            status = (
                STATUS_INTEGRITY_FAILED
                if isinstance(exc, IntegrityError)
                else STATUS_DECODE_FAILED
            )
            # Completion falls back to the clock's failure frontier.
            fallback = max(shard.timeline.free_at, batches[0].flush_time)
            self.batches_run += 1
            self._commit(
                shard_id, batches, [None], status=status, aborted=True, error=str(exc)
            )
            return self._outcomes(batches[0], None, status, str(exc), fallback)
        self._account(stats)
        self.batches_run += len(batches)
        self._observe_service_spans(groups)
        self._commit(
            shard_id, batches, [group.output for group in groups], status=STATUS_OK
        )
        if self.on_feedback is not None:
            self.on_feedback(
                WindowFeedback(
                    shard_id=shard_id,
                    n_batches=len(batches),
                    enclave_busy=stats.enclave_busy,
                    makespan=stats.makespan,
                    stage_totals=dict(stats.stage_totals),
                    slot_bytes_observed=max(
                        int(x.nbytes // max(1, x.shape[0])) for x, *_ in items
                    ),
                )
            )
        return [
            o
            for batch, group in zip(batches, groups)
            for o in self._outcomes(batch, group, STATUS_OK, None, 0.0)
        ]

    def _fail_over(
        self,
        shard: EnclaveShard,
        batches: list[ScheduledBatch],
        exc: ShardFailedError,
    ) -> list[RequestOutcome]:
        """Account a dead shard's completed prefix, migrate, retry the rest.

        Never raises: a total outage (no survivors) or a refused migration
        (unverified mesh link) turns the unfinished batches into
        ``STATUS_SHARD_FAILED`` outcomes instead of crashing the server.
        On refusal the dead shard's sessions are dropped outright (see
        :meth:`~repro.serving.session.ShardedSessionManager.fail_over`),
        so displaced tenants hold no session anywhere until their next
        arrival re-attests from scratch on the re-pinned shard.
        """
        outcomes: list[RequestOutcome] = []
        completed_outputs = []
        for batch, (groups, stats) in zip(batches, exc.completed):
            self._account(stats)
            self.batches_run += 1
            self._observe_service_spans(groups)
            completed_outputs.append(groups[0].output)
            outcomes.extend(self._outcomes(batch, groups[0], STATUS_OK, None, 0.0))
        self._commit(
            shard.shard_id,
            batches[: exc.remaining_from],
            completed_outputs,
            status=STATUS_OK,
        )
        remaining = batches[exc.remaining_from :]
        now = remaining[0].flush_time if remaining else batches[-1].flush_time
        outage: Exception | None = None
        if shard.shard_id not in self._failed_shards:
            # One enclave failure is one failover, even when the dead
            # shard's leftover queued batches flush in later windows.
            self._failed_shards.add(shard.shard_id)
            self.failovers += 1
            try:
                if self.router is not None:
                    self.router.fail_shard(shard.shard_id)
                if self.sessions is not None:
                    self.sessions.fail_over(shard.shard_id, now)
            except (ShardError, AttestationError) as migration_exc:
                outage = migration_exc
        retries_by_target: dict[int, list[ScheduledBatch]] = {}
        terminal: list[tuple[ScheduledBatch, str]] = []
        rerouted: list[ScheduledBatch] = []
        for batch in remaining:
            fallback = max(shard.timeline.free_at, batch.flush_time)
            if outage is not None:
                terminal.append((batch, str(outage)))
                outcomes.extend(
                    self._outcomes(batch, None, STATUS_SHARD_FAILED, str(outage), fallback)
                )
                continue
            batch, expired, floor_shed = self._prune_exhausted(batch, fallback)
            if expired is not None:
                expired_error = (
                    f"batch {expired.batch_id}: class SLO budget exhausted at"
                    " the failure frontier; retry skipped"
                )
                self.retries_skipped_budget += len(expired.requests) - floor_shed
                self.retries_skipped_floor += floor_shed
                terminal.append((expired, expired_error))
                outcomes.extend(
                    self._outcomes(
                        expired, None, STATUS_SHARD_FAILED, expired_error, fallback
                    )
                )
                if batch is None:
                    continue
            survivors = sum(1 for s in self.shards.values() if s.healthy)
            if batch.retries > survivors:
                # Cascade cap: a batch cannot meaningfully retry more
                # times than there are *surviving* shards to die under it
                # — counting already-dead shards (the old
                # ``len(self.shards)`` bound) let a batch burn retries on
                # targets that no longer exist.
                cap_error = (
                    f"batch {batch.batch_id} exhausted {batch.retries}"
                    " failover retries"
                )
                terminal.append((batch, cap_error))
                outcomes.extend(
                    self._outcomes(batch, None, STATUS_SHARD_FAILED, cap_error, fallback)
                )
                continue
            try:
                regrouped = self._reroute(batch, shard.shard_id, fallback)
            except ShardError as routing_exc:
                terminal.append((batch, str(routing_exc)))
                outcomes.extend(
                    self._outcomes(
                        batch, None, STATUS_SHARD_FAILED, str(routing_exc), fallback
                    )
                )
                continue
            rerouted.append(batch)
            for retry in regrouped:
                retries_by_target.setdefault(retry.shard_id, []).append(retry)
        # The dead shard's log records what happened to its unfinished
        # work: rerouted batches as a retried marker window (terminal
        # leaves land on the survivor's chain), dead-end batches as an
        # aborted shard-failed window.
        self._commit(
            shard.shard_id,
            rerouted,
            [None] * len(rerouted),
            status=STATUS_RETRIED,
            aborted=True,
            error=str(exc),
        )
        self._commit(
            shard.shard_id,
            [batch for batch, _ in terminal],
            [None] * len(terminal),
            status=STATUS_SHARD_FAILED,
            aborted=True,
            error="; ".join(dict.fromkeys(err for _, err in terminal)) or None,
        )
        # Retries share one window per surviving shard, so re-dispatched
        # batches keep the staged pipeline's cross-batch overlap.
        for target in sorted(retries_by_target):
            outcomes.extend(self._dispatch_on(target, retries_by_target[target]))
        return outcomes

    def _prune_exhausted(
        self, batch: ScheduledBatch, fallback: float
    ) -> tuple[ScheduledBatch | None, ScheduledBatch | None, int]:
        """Split a failed batch into (retryable, budget-exhausted) halves.

        A request whose class deadline (``arrival + budget``) has already
        passed at the failure frontier cannot complete in budget no matter
        which survivor serves it — retrying would spend a healthy shard's
        serialized enclave on a guaranteed SLO miss.  The deadline check
        is additionally *floor-aware*: once the pool has measured a
        minimum per-batch service span, a request whose remaining budget
        at the frontier is smaller than that floor is shed too — its
        deadline has not passed yet, but no survivor can physically
        finish it in time (counted separately in
        :attr:`retries_skipped_floor`).  Either half may be ``None``;
        without an SLO policy the batch is returned untouched (infinite
        budgets never expire).  The third element counts the requests
        shed by the floor rather than the bare deadline.
        """
        if self.slo is None:
            return batch, None, 0
        floor = self._service_floor if math.isfinite(self._service_floor) else 0.0
        hard_expired = 0
        expired = []
        for req in batch.requests:
            deadline = req.arrival_time + self.slo.budget_for(req.tenant)
            if deadline <= fallback:
                expired.append(req)
                hard_expired += 1
            elif deadline <= fallback + floor:
                expired.append(req)
        if not expired:
            return batch, None, 0
        floor_shed = len(expired) - hard_expired
        expired_ids = {id(req) for req in expired}
        alive = [req for req in batch.requests if id(req) not in expired_ids]
        expired_batch = dataclasses.replace(batch, requests=expired)
        if not alive:
            return None, expired_batch, floor_shed
        return dataclasses.replace(batch, requests=alive), expired_batch, floor_shed

    def _reroute(
        self, batch: ScheduledBatch, failed_shard: int, not_before: float
    ) -> list[ScheduledBatch]:
        """Split a failed batch by each tenant's *new* pin and re-target it.

        A coalesced batch can mix tenants whose sessions migrated to
        different survivors; every request must retry on the shard its
        re-attested session now terminates on, so the batch splits into
        one retry batch per target shard (all sharing the original batch
        id — it is still the same scheduled batch, served in pieces).
        ``not_before`` is the dead shard's failure frontier on the
        simulated clock: the retry cannot be released before the failure
        that caused it was observable, so failover cost shows up honestly
        in the latency percentiles.
        """
        groups: dict[int, list] = {}
        for request in batch.requests:
            groups.setdefault(self._retry_target(request.tenant, failed_shard), []).append(
                request
            )

        def _remaining_deadline(requests: list) -> float | None:
            # The retry inherits the survivors' remaining SLO budget as
            # its deadline (arrival + budget is absolute, so whatever is
            # left at the frontier is exactly what the retry may spend),
            # never the window's static flush deadline.
            if self.slo is None:
                return None
            return min(
                req.arrival_time + self.slo.budget_for(req.tenant)
                for req in requests
            )

        return [
            ScheduledBatch(
                batch_id=batch.batch_id,
                requests=requests,
                flush_time=max(batch.flush_time, not_before),
                trigger=batch.trigger,
                slots=batch.slots,
                shard_id=target,
                retries=batch.retries + 1,
                deadline=_remaining_deadline(requests),
            )
            for target, requests in sorted(groups.items())
        ]

    def _retry_target(self, tenant: str, failed_shard: int) -> int:
        """The surviving shard one tenant's failed work retries on."""
        if self.router is not None:
            return self.router.shard_for(tenant)
        survivors = [
            s for s in sorted(self.shards) if s != failed_shard and self.shards[s].healthy
        ]
        if not survivors:
            raise ShardError(
                f"shard {failed_shard} failed and no healthy shard remains"
            )
        return survivors[0]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _observe_service_spans(self, groups) -> None:
        """Tighten the measured per-batch service-time floor."""
        for group in groups:
            span = group.finish - group.start
            if span > 0:
                self._service_floor = min(self._service_floor, span)

    @property
    def service_floor(self) -> float:
        """Minimum observed per-batch service span (``inf`` before any
        successful window)."""
        return self._service_floor

    def _account(self, stats) -> None:
        for stage, seconds in stats.stage_totals.items():
            self._stage_totals[stage] = self._stage_totals.get(stage, 0.0) + seconds
        self.busy_time += stats.enclave_busy

    def _outcomes(
        self,
        batch: ScheduledBatch,
        group,
        status: str,
        error: str | None,
        fallback: float,
    ) -> list[RequestOutcome]:
        outcomes = []
        for i, req in enumerate(batch.requests):
            row = group.output[i] if group is not None else None
            outcomes.append(
                RequestOutcome(
                    request_id=req.request_id,
                    tenant=req.tenant,
                    status=status,
                    arrival_time=req.arrival_time,
                    dispatch_time=(
                        group.start if group is not None else batch.flush_time
                    ),
                    completion_time=(
                        group.finish if group is not None else fallback
                    ),
                    batch_id=batch.batch_id,
                    logits=row,
                    prediction=int(np.argmax(row)) if row is not None else None,
                    error=error,
                )
            )
        return outcomes

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        """Configured worker count (compatibility; see class docstring)."""
        return self._n_workers

    @property
    def n_shards(self) -> int:
        """Enclave shards behind this pool."""
        return len(self.shards)

    @property
    def pipeline_depth(self) -> int:
        """Virtual batches each shard's engine keeps in flight."""
        return self.engine.pipeline_depth

    def stage_totals(self) -> dict[str, float]:
        """Cumulative simulated seconds per stage across all shards."""
        return dict(self._stage_totals)

    def worker_stats(self) -> list[dict]:
        """Per-shard pipeline stats (active and retired shards alike)."""
        rows = dict(self.shards)
        rows.update(self._retired_shards)
        return [
            {
                "worker_id": shard_id,
                "shard_id": shard_id,
                "healthy": shard.healthy,
                "state": shard.state,
                "batches_run": shard.batches_run,
                "busy_time": shard.busy_time,
            }
            for shard_id, shard in sorted(rows.items())
        ]
