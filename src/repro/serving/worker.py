"""Worker pool: encode -> GPU dispatch -> decode over shared hardware.

All workers share one :class:`~repro.runtime.inference.PrivateInferenceEngine`
(and therefore one enclave + GPU cluster): the enclave is the serialized
resource in DarKnight, so parallelism comes from pipelining batches into
whichever worker frees up first, not from duplicating trusted hardware.
Simulated completion times use a deterministic linear service-time model
(per-batch overhead + per-virtual-batch-slot cost) so latency metrics are
reproducible; the masked compute itself runs for real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError, DecodingError, IntegrityError
from repro.runtime.inference import PrivateInferenceEngine
from repro.serving.requests import (
    STATUS_DECODE_FAILED,
    STATUS_INTEGRITY_FAILED,
    STATUS_OK,
    RequestOutcome,
    ScheduledBatch,
)


@dataclass
class _WorkerState:
    """Book-keeping for one pipeline stage."""

    worker_id: int
    free_at: float = 0.0
    batches_run: int = 0
    busy_time: float = 0.0


class InferenceWorkerPool:
    """Dispatches scheduled batches onto simulated pipeline workers.

    Parameters
    ----------
    engine:
        The shared private-inference engine; its backend pads partial
        batches up to the virtual-batch size internally.
    n_workers:
        Pipeline depth — batches overlap when one worker is still busy
        (in simulated time) as another becomes free.
    service_time:
        ``service_time(batch) -> float`` simulated seconds one batch
        occupies a worker.  Defaults to a linear model over the batch's
        virtual-batch *slots* (padding costs the same as real samples,
        exactly like the enclave encode does).
    """

    def __init__(
        self,
        engine: PrivateInferenceEngine,
        n_workers: int = 1,
        service_time: Callable[[ScheduledBatch], float] | None = None,
        base_service_time: float = 2e-3,
        per_slot_service_time: float = 5e-4,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"worker pool needs >= 1 workers, got {n_workers}")
        self.engine = engine
        self._workers = [_WorkerState(i) for i in range(n_workers)]
        self._service_time = service_time or (
            lambda batch: base_service_time + per_slot_service_time * batch.slots
        )

    def dispatch(self, batch: ScheduledBatch) -> list[RequestOutcome]:
        """Run one batch through the masked pipeline; never raises.

        Integrity and decode failures are converted into per-request
        failure outcomes so one byzantine GPU cannot crash the server.
        """
        worker = min(self._workers, key=lambda w: (w.free_at, w.worker_id))
        start = max(batch.flush_time, worker.free_at)
        service = self._service_time(batch)
        worker.free_at = start + service
        worker.batches_run += 1
        worker.busy_time += service
        completion = start + service

        x = np.stack([req.x for req in batch.requests])
        status, error, logits = STATUS_OK, None, None
        try:
            logits = self.engine.run_batch(x)
        except IntegrityError as exc:
            status, error = STATUS_INTEGRITY_FAILED, str(exc)
        except DecodingError as exc:
            status, error = STATUS_DECODE_FAILED, str(exc)

        outcomes = []
        for i, req in enumerate(batch.requests):
            row = logits[i] if logits is not None else None
            outcomes.append(
                RequestOutcome(
                    request_id=req.request_id,
                    tenant=req.tenant,
                    status=status,
                    arrival_time=req.arrival_time,
                    dispatch_time=start,
                    completion_time=completion,
                    batch_id=batch.batch_id,
                    logits=row,
                    prediction=int(np.argmax(row)) if row is not None else None,
                    error=error,
                )
            )
        return outcomes

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        """Pipeline depth."""
        return len(self._workers)

    def worker_stats(self) -> list[dict]:
        """Per-worker batch counts and busy time."""
        return [
            {
                "worker_id": w.worker_id,
                "batches_run": w.batches_run,
                "busy_time": w.busy_time,
            }
            for w in self._workers
        ]
