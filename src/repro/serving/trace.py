"""Offline request traces: the serving driver's network substitute.

A trace is a time-ordered list of (arrival time, tenant, sample) tuples.
:func:`synthetic_trace` draws Poisson-process arrivals (exponential gaps)
across a configurable tenant mix — including a deliberately "hot" tenant
for fairness experiments — so benchmarks and tests can replay identical
load patterns deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TraceRequest:
    """One request in an offline trace."""

    time: float
    tenant: str
    x: np.ndarray


def synthetic_trace(
    n_requests: int,
    input_shape: tuple[int, ...],
    n_tenants: int = 4,
    mean_interarrival: float = 1e-3,
    seed: int | None = 0,
    hot_tenant_share: float | None = None,
) -> list[TraceRequest]:
    """Generate a Poisson-arrival multi-tenant request trace.

    Parameters
    ----------
    n_requests:
        Total requests in the trace.
    input_shape:
        Per-sample shape (no batch axis); samples are standard normal.
    n_tenants:
        Distinct tenants, named ``tenant0..tenant{n-1}``.
    mean_interarrival:
        Mean gap between consecutive arrivals in simulated seconds (the
        offered load is ``1 / mean_interarrival`` requests per second).
    seed:
        Makes the trace fully deterministic.
    hot_tenant_share:
        When set (0-1), ``tenant0`` issues that fraction of all requests
        and the rest spread uniformly — the saturating-tenant scenario.
    """
    if n_requests < 1:
        raise ConfigurationError(f"trace needs >= 1 requests, got {n_requests}")
    if n_tenants < 1:
        raise ConfigurationError(f"trace needs >= 1 tenants, got {n_tenants}")
    if mean_interarrival <= 0:
        raise ConfigurationError(
            f"mean interarrival must be > 0, got {mean_interarrival}"
        )
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_interarrival, size=n_requests)
    times = np.cumsum(gaps)
    tenants = [f"tenant{i}" for i in range(n_tenants)]
    if hot_tenant_share is None:
        picks = rng.integers(0, n_tenants, size=n_requests)
    else:
        if not 0.0 <= hot_tenant_share <= 1.0:
            raise ConfigurationError(
                f"hot tenant share must be in [0, 1], got {hot_tenant_share}"
            )
        hot = rng.random(n_requests) < hot_tenant_share
        cold = rng.integers(min(1, n_tenants - 1), n_tenants, size=n_requests)
        picks = np.where(hot, 0, cold)
    return [
        TraceRequest(
            time=float(times[i]),
            tenant=tenants[int(picks[i])],
            x=rng.normal(size=input_shape),
        )
        for i in range(n_requests)
    ]


def bursty_trace(
    n_requests: int,
    input_shape: tuple[int, ...],
    n_tenants: int = 4,
    burst_size: int = 10,
    intra_gap: float = 2e-4,
    burst_gap: float = 5e-2,
    seed: int | None = 0,
) -> list[TraceRequest]:
    """Generate an on/off bursty trace (the adaptive-deadline stressor).

    Requests arrive in bursts of ``burst_size`` spaced ``intra_gap``
    apart, with ``burst_gap`` of silence between bursts — the regime
    where a fixed flush deadline is wrong twice over: too loose for the
    stragglers at a burst's tail (they idle out the full deadline) and
    irrelevant mid-burst (size triggers fire first).

    Parameters
    ----------
    n_requests / input_shape / n_tenants / seed:
        As for :func:`synthetic_trace`.
    burst_size:
        Arrivals per burst.
    intra_gap:
        Gap between consecutive arrivals inside a burst (jittered ±20%).
    burst_gap:
        Silence between the last arrival of one burst and the first of
        the next.
    """
    if n_requests < 1:
        raise ConfigurationError(f"trace needs >= 1 requests, got {n_requests}")
    if n_tenants < 1:
        raise ConfigurationError(f"trace needs >= 1 tenants, got {n_tenants}")
    if burst_size < 1:
        raise ConfigurationError(f"burst size must be >= 1, got {burst_size}")
    if intra_gap <= 0 or burst_gap <= 0:
        raise ConfigurationError(
            f"gaps must be > 0, got intra={intra_gap} burst={burst_gap}"
        )
    rng = np.random.default_rng(seed)
    tenants = [f"tenant{i}" for i in range(n_tenants)]
    picks = rng.integers(0, n_tenants, size=n_requests)
    times = []
    t = 0.0
    for i in range(n_requests):
        if i > 0:
            at_burst_boundary = i % burst_size == 0
            gap = burst_gap if at_burst_boundary else intra_gap
            t += float(gap * rng.uniform(0.8, 1.2))
        times.append(t)
    return [
        TraceRequest(
            time=times[i],
            tenant=tenants[int(picks[i])],
            x=rng.normal(size=input_shape),
        )
        for i in range(n_requests)
    ]


def ramping_trace(
    n_requests: int,
    input_shape: tuple[int, ...],
    n_tenants: int = 4,
    start_interarrival: float = 1e-2,
    end_interarrival: float = 2e-4,
    seed: int | None = 0,
) -> list[TraceRequest]:
    """Generate a trace whose offered load ramps between two rates.

    The mean inter-arrival gap interpolates log-linearly from
    ``start_interarrival`` to ``end_interarrival`` across the trace, so
    an adaptive deadline must keep re-learning the arrival process
    instead of converging once.
    """
    if n_requests < 1:
        raise ConfigurationError(f"trace needs >= 1 requests, got {n_requests}")
    if n_tenants < 1:
        raise ConfigurationError(f"trace needs >= 1 tenants, got {n_tenants}")
    if start_interarrival <= 0 or end_interarrival <= 0:
        raise ConfigurationError(
            "interarrival bounds must be > 0, got"
            f" start={start_interarrival} end={end_interarrival}"
        )
    rng = np.random.default_rng(seed)
    tenants = [f"tenant{i}" for i in range(n_tenants)]
    picks = rng.integers(0, n_tenants, size=n_requests)
    fractions = np.linspace(0.0, 1.0, num=n_requests)
    means = np.exp(
        (1.0 - fractions) * np.log(start_interarrival)
        + fractions * np.log(end_interarrival)
    )
    gaps = rng.exponential(means)
    times = np.cumsum(gaps)
    return [
        TraceRequest(
            time=float(times[i]),
            tenant=tenants[int(picks[i])],
            x=rng.normal(size=input_shape),
        )
        for i in range(n_requests)
    ]


def phased_trace(
    phases: list[tuple[int, float]],
    input_shape: tuple[int, ...],
    n_tenants: int = 4,
    seed: int | None = 0,
) -> list[TraceRequest]:
    """Generate a piecewise-constant-load trace (the autoscale stressor).

    ``phases`` is a list of ``(n_requests, mean_interarrival)`` segments
    played back to back: a heavy segment (tight gaps) that saturates a
    small deployment, then a lull (wide gaps) where provisioned capacity
    sits idle, and so on.  Diurnal traffic in miniature — exactly the
    regime where a static shard count is wrong in both directions and an
    elastic deployment should win on shard-hours without losing p99.
    """
    if not phases:
        raise ConfigurationError("phased trace needs >= 1 phase")
    if n_tenants < 1:
        raise ConfigurationError(f"trace needs >= 1 tenants, got {n_tenants}")
    for n, gap in phases:
        if n < 1:
            raise ConfigurationError(f"phase needs >= 1 requests, got {n}")
        if gap <= 0:
            raise ConfigurationError(f"phase interarrival must be > 0, got {gap}")
    rng = np.random.default_rng(seed)
    tenants = [f"tenant{i}" for i in range(n_tenants)]
    out: list[TraceRequest] = []
    t = 0.0
    for n, gap in phases:
        gaps = rng.exponential(gap, size=n)
        picks = rng.integers(0, n_tenants, size=n)
        for i in range(n):
            t += float(gaps[i])
            out.append(
                TraceRequest(
                    time=t,
                    tenant=tenants[int(picks[i])],
                    x=rng.normal(size=input_shape),
                )
            )
    return out


def trace_from_arrays(
    x: np.ndarray,
    tenants: list[str] | None = None,
    mean_interarrival: float = 1e-3,
    seed: int | None = 0,
) -> list[TraceRequest]:
    """Wrap an existing dataset as a round-robin multi-tenant trace.

    Useful for replaying real evaluation data (e.g. a CIFAR-like test set)
    through the server while keeping arrival dynamics synthetic.
    """
    x = np.asarray(x)
    if x.ndim < 2 or x.shape[0] == 0:
        raise ConfigurationError("trace needs a non-empty batch-major array")
    tenants = tenants or ["tenant0"]
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(mean_interarrival, size=x.shape[0]))
    return [
        TraceRequest(
            time=float(times[i]),
            tenant=tenants[i % len(tenants)],
            x=x[i],
        )
        for i in range(x.shape[0])
    ]
