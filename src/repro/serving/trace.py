"""Offline request traces: the serving driver's network substitute.

A trace is a time-ordered list of (arrival time, tenant, sample) tuples.
:func:`synthetic_trace` draws Poisson-process arrivals (exponential gaps)
across a configurable tenant mix — including a deliberately "hot" tenant
for fairness experiments — so benchmarks and tests can replay identical
load patterns deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TraceRequest:
    """One request in an offline trace."""

    time: float
    tenant: str
    x: np.ndarray


def synthetic_trace(
    n_requests: int,
    input_shape: tuple[int, ...],
    n_tenants: int = 4,
    mean_interarrival: float = 1e-3,
    seed: int | None = 0,
    hot_tenant_share: float | None = None,
) -> list[TraceRequest]:
    """Generate a Poisson-arrival multi-tenant request trace.

    Parameters
    ----------
    n_requests:
        Total requests in the trace.
    input_shape:
        Per-sample shape (no batch axis); samples are standard normal.
    n_tenants:
        Distinct tenants, named ``tenant0..tenant{n-1}``.
    mean_interarrival:
        Mean gap between consecutive arrivals in simulated seconds (the
        offered load is ``1 / mean_interarrival`` requests per second).
    seed:
        Makes the trace fully deterministic.
    hot_tenant_share:
        When set (0-1), ``tenant0`` issues that fraction of all requests
        and the rest spread uniformly — the saturating-tenant scenario.
    """
    if n_requests < 1:
        raise ConfigurationError(f"trace needs >= 1 requests, got {n_requests}")
    if n_tenants < 1:
        raise ConfigurationError(f"trace needs >= 1 tenants, got {n_tenants}")
    if mean_interarrival <= 0:
        raise ConfigurationError(
            f"mean interarrival must be > 0, got {mean_interarrival}"
        )
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_interarrival, size=n_requests)
    times = np.cumsum(gaps)
    tenants = [f"tenant{i}" for i in range(n_tenants)]
    if hot_tenant_share is None:
        picks = rng.integers(0, n_tenants, size=n_requests)
    else:
        if not 0.0 <= hot_tenant_share <= 1.0:
            raise ConfigurationError(
                f"hot tenant share must be in [0, 1], got {hot_tenant_share}"
            )
        hot = rng.random(n_requests) < hot_tenant_share
        cold = rng.integers(min(1, n_tenants - 1), n_tenants, size=n_requests)
        picks = np.where(hot, 0, cold)
    return [
        TraceRequest(
            time=float(times[i]),
            tenant=tenants[int(picks[i])],
            x=rng.normal(size=input_shape),
        )
        for i in range(n_requests)
    ]


def trace_from_arrays(
    x: np.ndarray,
    tenants: list[str] | None = None,
    mean_interarrival: float = 1e-3,
    seed: int | None = 0,
) -> list[TraceRequest]:
    """Wrap an existing dataset as a round-robin multi-tenant trace.

    Useful for replaying real evaluation data (e.g. a CIFAR-like test set)
    through the server while keeping arrival dynamics synthetic.
    """
    x = np.asarray(x)
    if x.ndim < 2 or x.shape[0] == 0:
        raise ConfigurationError("trace needs a non-empty batch-major array")
    tenants = tenants or ["tenant0"]
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(mean_interarrival, size=x.shape[0]))
    return [
        TraceRequest(
            time=float(times[i]),
            tenant=tenants[i % len(tenants)],
            x=x[i],
        )
        for i in range(x.shape[0])
    ]
