"""A single simulated accelerator holding exactly one masked share.

The device executes field bilinear kernels on whatever the enclave sends it,
keeps the encoded forward activations resident for the backward pass (the
paper's "Encoded Data Storage During Forward Pass" optimisation in
Section 6), counts bytes and multiply-accumulate operations for the
performance model, and routes every output through its fault injector so a
malicious device can be simulated without touching honest code paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.errors import GpuError
from repro.fieldmath import PrimeField
from repro.gpu.faults import HONEST, FaultInjector
from repro.gpu.kernels import FieldKernels, FloatKernels


@dataclass
class GpuLedger:
    """Operation/traffic counters for one device."""

    mac_ops: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    kernel_calls: int = 0
    ops_by_name: dict = dataclass_field(default_factory=dict)

    def record(self, op_name: str, macs: int, bytes_out: int) -> None:
        """Account one kernel invocation."""
        self.kernel_calls += 1
        self.mac_ops += macs
        self.bytes_sent += bytes_out
        self.ops_by_name[op_name] = self.ops_by_name.get(op_name, 0) + 1


class SimulatedGpu:
    """One untrusted accelerator in the DarKnight cluster.

    Parameters
    ----------
    device_id:
        Index in the cluster == the share index this GPU receives.
    field:
        Prime field for masked kernels.
    fault_injector:
        Adversarial behaviour; default honest.
    """

    def __init__(
        self,
        device_id: int,
        field: PrimeField,
        fault_injector: FaultInjector = HONEST,
    ) -> None:
        self.device_id = device_id
        self.field = field
        self.kernels = FieldKernels(field)
        self.float_kernels = FloatKernels()
        self.faults = fault_injector
        self.ledger = GpuLedger()
        #: Simulated clock: when this device finishes its current share.
        self.free_at = 0.0
        #: Simulated seconds this device has spent computing shares.
        self.busy_time = 0.0
        #: Weights are public in DarKnight's threat model and live on-device.
        self.weights: dict[str, np.ndarray] = {}
        #: Encoded activations kept for backward (Section 6 storage optimisation).
        self.stored_shares: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def load_weights(self, name: str, w: np.ndarray) -> None:
        """Install (public, quantized) model weights under ``name``."""
        self.weights[name] = np.asarray(w)
        self.ledger.bytes_received += self.weights[name].nbytes

    def receive_share(self, key: str, share: np.ndarray) -> None:
        """Accept one masked share from the enclave and keep it resident."""
        arr = np.asarray(share, dtype=np.int64)
        self.stored_shares[key] = arr
        self.ledger.bytes_received += arr.nbytes

    def stored_share(self, key: str) -> np.ndarray:
        """Look up a share stored during the forward pass."""
        try:
            return self.stored_shares[key]
        except KeyError as exc:
            raise GpuError(
                f"GPU {self.device_id} holds no share under key {key!r}"
            ) from exc

    def drop_share(self, key: str) -> None:
        """Free a stored share (end of a virtual batch)."""
        self.stored_shares.pop(key, None)

    # ------------------------------------------------------------------
    # simulated completion model
    # ------------------------------------------------------------------
    def reserve(self, not_before: float, duration: float) -> tuple[float, float]:
        """Occupy this device for ``duration`` simulated seconds.

        A device runs one share's kernel at a time: the reservation starts
        when both the dispatch (``not_before``) and the device's previous
        kernel allow, serializing virtual batches that land on the same GPU.
        Returns ``(start, end)``.
        """
        if duration < 0:
            raise GpuError(f"kernel duration must be >= 0, got {duration}")
        start = max(self.free_at, not_before)
        end = start + duration
        self.free_at = end
        self.busy_time += duration
        return start, end

    # ------------------------------------------------------------------
    # masked kernels
    # ------------------------------------------------------------------
    def _emit(self, op_name: str, result: np.ndarray, macs: int) -> np.ndarray:
        result = self.faults.corrupt(result, self.device_id, op_name)
        self.ledger.record(op_name, macs, int(np.asarray(result).nbytes))
        return result

    def dense_forward(self, share_key: str, weight_name: str) -> np.ndarray:
        """``x̄ @ W`` on the stored share."""
        x = self.stored_share(share_key)
        w = self.weights[weight_name]
        out = self.kernels.dense(x, w)
        return self._emit("dense_forward", out, macs=int(x.size) * int(w.shape[1]))

    def conv2d_forward(
        self, share_key: str, weight_name: str, stride: int = 1, pad: int = 0
    ) -> np.ndarray:
        """Convolution of the stored share with public weights."""
        x = self.stored_share(share_key)
        w = self.weights[weight_name]
        out = self.kernels.conv2d(x, w, stride, pad)
        macs = int(out.size) * int(w.shape[1] * w.shape[2] * w.shape[3])
        return self._emit("conv2d_forward", out, macs=macs)

    def backward_equation_dense(
        self, share_key: str, combined_delta: np.ndarray
    ) -> np.ndarray:
        """``Eq_j = x̄(j) ⊗ δ̄(j)`` for a dense layer."""
        x = self.stored_share(share_key)
        out = self.kernels.dense_grad_w(x, combined_delta)
        return self._emit(
            "backward_equation_dense", out, macs=int(x.size) * int(combined_delta.size)
        )

    def backward_equation_conv(
        self,
        share_key: str,
        combined_delta: np.ndarray,
        kh: int,
        kw: int,
        stride: int = 1,
        pad: int = 0,
    ) -> np.ndarray:
        """``Eq_j = <δ̄(j), x̄(j)>`` for conv weights."""
        x = self.stored_share(share_key)
        out = self.kernels.conv2d_grad_w(x, combined_delta, kh, kw, stride, pad)
        macs = int(combined_delta.size) * int(kh * kw * x.shape[0])
        return self._emit("backward_equation_conv", out, macs=macs)

    def combine_deltas(self, deltas: np.ndarray, beta_row: np.ndarray) -> np.ndarray:
        """``δ̄(j) = Σ_i B[j, i]·δ(i)`` — done GPU-side with the public ``B``."""
        out = self.kernels.scale_accumulate(deltas, beta_row)
        return self._emit("combine_deltas", out, macs=int(deltas.size))

    # ------------------------------------------------------------------
    # non-private kernels (δ propagation / GPU-only baseline)
    # ------------------------------------------------------------------
    def float_conv2d_grad_x(self, w, delta, x_shape, stride=1, pad=0) -> np.ndarray:
        """Unencoded ``δ`` propagation (carries no input data; Section 4.2)."""
        out = self.float_kernels.conv2d_grad_x(w, delta, x_shape, stride, pad)
        self.ledger.record("float_conv2d_grad_x", int(delta.size) * int(w.shape[1]), out.nbytes)
        return out

    def float_matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Raw float matmul for the non-private baseline."""
        out = self.float_kernels.matmul(a, b)
        self.ledger.record("float_matmul", int(a.size) * int(b.shape[-1]), out.nbytes)
        return out
