"""Adversarial fault models for the untrusted accelerators.

The paper's threat model (Section 3) allows malicious GPUs to "inject faults
in the computation to sabotage training or inference"; DarKnight must detect
any such tamper via the redundant-share check.  These injectors corrupt a
device's outputs under configurable policies so tests and examples can
exercise the integrity machinery.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.fieldmath import PrimeField


class FaultInjector:
    """Base class: honest device (never corrupts)."""

    def corrupt(self, tensor: np.ndarray, device_id: int, op_name: str) -> np.ndarray:
        """Return the (possibly tampered) tensor a device would emit."""
        return tensor

    @property
    def tamper_count(self) -> int:
        """How many outputs were actually modified so far."""
        return 0


class RandomTamper(FaultInjector):
    """Adds a uniform non-zero field offset at random positions.

    Parameters
    ----------
    field:
        Field the outputs live in (offsets are sampled mod p).
    probability:
        Chance that any given output tensor gets corrupted.
    n_entries:
        How many entries to perturb when a tensor is chosen.
    seed:
        Generator seed for reproducible sabotage.
    """

    def __init__(
        self,
        field: PrimeField,
        probability: float = 1.0,
        n_entries: int = 1,
        seed=None,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(f"probability must be in [0, 1], got {probability}")
        if n_entries < 1:
            raise ConfigurationError(f"n_entries must be >= 1, got {n_entries}")
        self.field = field
        self.probability = probability
        self.n_entries = n_entries
        self._rng = np.random.default_rng(seed)
        self._tampered = 0

    def corrupt(self, tensor: np.ndarray, device_id: int, op_name: str) -> np.ndarray:
        if self._rng.random() > self.probability:
            return tensor
        out = np.array(tensor, dtype=np.int64, copy=True)
        flat = out.reshape(-1)
        k = min(self.n_entries, flat.size)
        positions = self._rng.choice(flat.size, size=k, replace=False)
        offsets = self.field.nonzero_uniform((k,), self._rng)
        flat[positions] = self.field.add(flat[positions], offsets)
        self._tampered += 1
        return out

    @property
    def tamper_count(self) -> int:
        return self._tampered


class TargetedTamper(FaultInjector):
    """Corrupts only a specific operation (e.g. sabotage backward Eq only)."""

    def __init__(self, inner: FaultInjector, target_op: str) -> None:
        self.inner = inner
        self.target_op = target_op

    def corrupt(self, tensor: np.ndarray, device_id: int, op_name: str) -> np.ndarray:
        if op_name != self.target_op:
            return tensor
        return self.inner.corrupt(tensor, device_id, op_name)

    @property
    def tamper_count(self) -> int:
        return self.inner.tamper_count


HONEST = FaultInjector()
