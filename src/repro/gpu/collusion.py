"""Colluding-GPU adversary: pooled shares and reconstruction attempts.

Section 4.5 / Section 5 of the paper: with ``M`` noise vectors, *any* subset
of at most ``M`` GPUs pooling their shares sees only uniformly random data
(no linear combination cancels the noise because every ``<= M``-column subset
of ``A2`` is full rank).  Conversely, if an adversary corrals *more* than
``M`` shares **and** learns the secret coefficients, the system degrades to
solvable linear algebra.

:class:`CollusionPool` implements both sides so tests can certify the privacy
boundary exactly where the theorem puts it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EncodingError
from repro.fieldmath import PrimeField, field_matmul, inverse, rank
from repro.masking.coefficients import CoefficientSet


@dataclass(frozen=True)
class ReconstructionResult:
    """Outcome of a collusion attack attempt."""

    success: bool
    reason: str
    recovered: np.ndarray | None = None


class CollusionPool:
    """Shares gathered by a coalition of malicious GPUs.

    Parameters
    ----------
    field:
        The masking field.
    share_indices:
        Which GPUs collude (share ids).
    shares:
        The masked tensors those GPUs received, shape ``(len(indices), ...)``.
    """

    def __init__(
        self, field: PrimeField, share_indices: tuple[int, ...], shares: np.ndarray
    ) -> None:
        shares = np.asarray(shares, dtype=np.int64)
        if shares.shape[0] != len(share_indices):
            raise EncodingError(
                f"{len(share_indices)} colluders but {shares.shape[0]} share tensors"
            )
        self.field = field
        self.share_indices = tuple(share_indices)
        self.shares = shares

    @property
    def size(self) -> int:
        """Coalition size ``M'``."""
        return len(self.share_indices)

    # ------------------------------------------------------------------
    # information-theoretic attack with known coefficients
    # ------------------------------------------------------------------
    def attack_with_known_coefficients(
        self, coefficients: CoefficientSet
    ) -> ReconstructionResult:
        """Worst-case attack: coalition somehow learned the secret ``A``.

        The colluders hold the columns ``A[:, J]`` of the encoding and the
        shares ``X̄_J = [X R]·A_J``.  They can eliminate the ``M`` unknown
        noise vectors only if the noise block ``A2[:, J]`` has rank < its
        column count *plus* enough input columns remain solvable — in
        matrix terms, recovery of any input coordinate requires
        ``rank([A1_J; A2_J]) > rank(A2_J)`` with a pivot in the input rows.

        With an MDS ``A2`` and ``|J| <= M`` the noise rank equals ``|J|``,
        every linear combination of shares keeps a full-entropy noise
        component, and the attack provably fails.  With ``|J| = K + M``
        invertible columns the coalition decodes everything — the theorem's
        boundary, which tests assert from both sides.
        """
        a_j = coefficients.a[:, list(self.share_indices)]
        a2_j = a_j[coefficients.k :, :]
        noise_rank = rank(self.field, a2_j)
        if noise_rank >= self.size:
            return ReconstructionResult(
                success=False,
                reason=(
                    f"noise block spans all {self.size} pooled shares"
                    " (every linear combination keeps a uniform pad)"
                ),
            )
        if self.size < coefficients.n_sources:
            return ReconstructionResult(
                success=False,
                reason=(
                    f"only {self.size} shares for {coefficients.n_sources} unknowns;"
                    " system underdetermined even though noise is rank-deficient"
                ),
            )
        # Shares are stored row-wise: shares = A_Jᵀ · [X R]ᵀ, so recovery
        # needs (A_Jᵀ)^{-1}.
        try:
            decode = inverse(self.field, a_j[:, : coefficients.n_sources].T)
        except Exception:  # SingularMatrixError
            return ReconstructionResult(
                success=False, reason="pooled columns not invertible"
            )
        flat = self.shares[: coefficients.n_sources].reshape(
            coefficients.n_sources, -1
        )
        recovered = field_matmul(self.field, decode, flat)
        inputs = recovered[: coefficients.k].reshape(
            (coefficients.k,) + self.shares.shape[1:]
        )
        return ReconstructionResult(
            success=True,
            reason="coalition exceeded the collusion tolerance with known coefficients",
            recovered=inputs,
        )

    # ------------------------------------------------------------------
    # empirical uniformity
    # ------------------------------------------------------------------
    def uniformity_statistic(self, n_bins: int = 64) -> float:
        """Chi-square statistic of pooled share values against uniform.

        Under the privacy theorem each share is marginally uniform on
        ``F_p``; the statistic should stay near ``n_bins - 1``.  Exposed for
        the analysis module and property tests.
        """
        values = self.shares.reshape(-1)
        counts, _ = np.histogram(values, bins=n_bins, range=(0, self.field.p))
        expected = values.size / n_bins
        return float(np.sum((counts - expected) ** 2 / expected))
