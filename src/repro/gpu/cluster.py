"""Multi-GPU dispatch: one share per device, gather results by share id.

The cluster is deliberately thin — DarKnight's orchestration logic lives in
:mod:`repro.runtime`; this class only owns the device pool, enforces the
"each GPU receives at most one encoded data" rule, and stacks results in
share order for the decoders.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError, GpuError
from repro.fieldmath import PrimeField
from repro.gpu.device import SimulatedGpu
from repro.gpu.faults import HONEST, FaultInjector


class GpuCluster:
    """A pool of ``K'`` simulated accelerators.

    Parameters
    ----------
    field:
        Field shared by every device's masked kernels.
    n_devices:
        ``K'`` in the paper; must cover ``K + M (+1 for integrity)``.
    fault_injectors:
        Optional per-device adversaries (maps device id -> injector).
    """

    def __init__(
        self,
        field: PrimeField,
        n_devices: int,
        fault_injectors: dict[int, FaultInjector] | None = None,
    ) -> None:
        if n_devices < 2:
            raise ConfigurationError(
                f"DarKnight needs K' > 1 accelerators, got {n_devices}"
            )
        injectors = fault_injectors or {}
        unknown = set(injectors) - set(range(n_devices))
        if unknown:
            raise ConfigurationError(f"fault injectors for unknown devices: {unknown}")
        self.field = field
        self.devices = [
            SimulatedGpu(i, field, injectors.get(i, HONEST)) for i in range(n_devices)
        ]

    def __len__(self) -> int:
        return len(self.devices)

    def __getitem__(self, device_id: int) -> SimulatedGpu:
        return self.devices[device_id]

    # ------------------------------------------------------------------
    # broadcast / scatter
    # ------------------------------------------------------------------
    def broadcast_weights(self, name: str, w: np.ndarray) -> None:
        """Install public quantized weights on every device."""
        for device in self.devices:
            device.load_weights(name, w)

    def scatter_shares(self, key: str, shares: np.ndarray) -> None:
        """Send share ``j`` to device ``j`` (one share per GPU, Section 3.1)."""
        shares = np.asarray(shares)
        if shares.shape[0] > len(self.devices):
            raise GpuError(
                f"{shares.shape[0]} shares but only {len(self.devices)} devices;"
                " raise K' or lower K/M"
            )
        for j in range(shares.shape[0]):
            self.devices[j].receive_share(key, shares[j])

    def drop_shares(self, key: str) -> None:
        """Free a stored share key on all devices."""
        for device in self.devices:
            device.drop_share(key)

    # ------------------------------------------------------------------
    # fan-out execution
    # ------------------------------------------------------------------
    def map_shares(
        self, n_shares: int, op: Callable[[SimulatedGpu], np.ndarray]
    ) -> np.ndarray:
        """Run ``op`` on devices ``0..n_shares-1`` and stack by share id."""
        if n_shares > len(self.devices):
            raise GpuError(
                f"need {n_shares} devices, cluster has {len(self.devices)}"
            )
        return np.stack([op(self.devices[j]) for j in range(n_shares)])

    def map_with_rows(
        self,
        n_shares: int,
        rows: Sequence[np.ndarray],
        op: Callable[[SimulatedGpu, np.ndarray], np.ndarray],
    ) -> np.ndarray:
        """Like :meth:`map_shares` but hands device ``j`` its row (e.g. ``B[j]``)."""
        if len(rows) < n_shares:
            raise GpuError(f"need {n_shares} rows, got {len(rows)}")
        return np.stack(
            [op(self.devices[j], rows[j]) for j in range(n_shares)]
        )

    # ------------------------------------------------------------------
    # simulated completion model
    # ------------------------------------------------------------------
    def reserve_shares(
        self, n_shares: int, duration: float, not_before: float = 0.0
    ) -> tuple[float, float]:
        """Occupy devices ``0..n_shares-1`` for one dispatched virtual batch.

        Share ``j`` runs on device ``j`` for ``duration`` simulated seconds;
        a device still busy with an earlier batch's share delays its start.
        Returns ``(first_start, ready_at)`` where ``ready_at`` is when the
        *last* share completes — the gather/decode stage waits for it.
        """
        if n_shares > len(self.devices):
            raise GpuError(
                f"need {n_shares} devices, cluster has {len(self.devices)}"
            )
        starts, ends = zip(
            *(self.devices[j].reserve(not_before, duration) for j in range(n_shares))
        )
        return min(starts), max(ends)

    def max_busy_time(self) -> float:
        """Busiest single device's simulated compute seconds."""
        return max(d.busy_time for d in self.devices)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def total_mac_ops(self) -> int:
        """Sum of multiply-accumulate ops across devices."""
        return sum(d.ledger.mac_ops for d in self.devices)

    def total_bytes_moved(self) -> int:
        """Bytes received + sent across all devices."""
        return sum(d.ledger.bytes_received + d.ledger.bytes_sent for d in self.devices)
