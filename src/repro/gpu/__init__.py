"""Simulated untrusted accelerators: kernels, devices, faults, collusion."""

from repro.gpu.cluster import GpuCluster
from repro.gpu.collusion import CollusionPool, ReconstructionResult
from repro.gpu.device import GpuLedger, SimulatedGpu
from repro.gpu.faults import HONEST, FaultInjector, RandomTamper, TargetedTamper
from repro.gpu.kernels import FieldKernels, FloatKernels

__all__ = [
    "GpuCluster",
    "SimulatedGpu",
    "GpuLedger",
    "FieldKernels",
    "FloatKernels",
    "FaultInjector",
    "RandomTamper",
    "TargetedTamper",
    "HONEST",
    "CollusionPool",
    "ReconstructionResult",
]
