"""Linear-operator kernels executed by the simulated accelerators.

Two kernel sets share all shape logic with :mod:`repro.nn.functional`:

* :class:`FieldKernels` — the masked path: every op is a bilinear form over
  ``F_p`` computed with overflow-safe chunked reduction.  These are the only
  operations DarKnight ever offloads on private data.
* :class:`FloatKernels` — the raw float path used by the non-private GPU
  baseline and by gradient-of-loss ops that the paper offloads unencoded
  (``δ`` back-propagation carries no input information).

Share tensors are per-sample (no batch axis): each GPU holds exactly one
masked share.
"""

from __future__ import annotations

import numpy as np

from repro.fieldmath import PrimeField, field_matmul
from repro.nn import functional as F


class FieldKernels:
    """Bilinear ops over ``F_p`` on single-share tensors.

    Parameters
    ----------
    field:
        The prime field shares live in.
    backend:
        Field-op backend name (:mod:`repro.fieldmath.kernels`): ``None``
        follows the process default (normally ``"limb"`` — float64 BLAS
        GEMMs over 13-bit limbs, bit-identical to ``"generic"``), a name
        pins this kernel set regardless of the global default.
    """

    def __init__(self, field: PrimeField, backend: str | None = None) -> None:
        self.field = field
        self.backend = backend
        self._matmul = lambda a, b: field_matmul(field, a, b, backend=backend)

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Plain field matrix product."""
        return self._matmul(a, b)

    def dense(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        """``x @ w`` for a single share row ``x`` of shape ``(in_features,)``."""
        return self._matmul(x.reshape(1, -1), w).reshape(-1)

    def dense_grad_w(self, x: np.ndarray, delta: np.ndarray) -> np.ndarray:
        """Outer product ``x ⊗ delta`` — the dense-layer ``<δ, x>`` bilinear."""
        return self._matmul(x.reshape(-1, 1), delta.reshape(1, -1))

    def conv2d(
        self, x: np.ndarray, w: np.ndarray, stride: int = 1, pad: int = 0
    ) -> np.ndarray:
        """Convolution of one share ``(C, H, W)`` with weights ``(F, C, KH, KW)``."""
        out = F.conv2d_via_matmul(x[None], w, self._matmul, stride, pad)
        return out[0]

    def conv2d_grad_w(
        self,
        x: np.ndarray,
        delta: np.ndarray,
        kh: int,
        kw: int,
        stride: int = 1,
        pad: int = 0,
    ) -> np.ndarray:
        """``<δ, x>`` for conv weights on one share; result ``(F, C, KH, KW)``."""
        raw = F.conv2d_grad_w(x[None], delta[None], kh, kw, self._matmul, stride, pad)
        return self.field.element(raw)

    def conv2d_grad_x(
        self,
        w: np.ndarray,
        delta: np.ndarray,
        x_shape: tuple[int, int, int],
        stride: int = 1,
        pad: int = 0,
    ) -> np.ndarray:
        """Input gradient of conv on one share (field path, rarely needed)."""
        out = F.conv2d_grad_x(w, delta[None], (1,) + tuple(x_shape), self._matmul, stride, pad)
        return self.field.element(out[0])

    def scale_accumulate(self, tensors: np.ndarray, scalars: np.ndarray) -> np.ndarray:
        """``Σ_i scalars[i]·tensors[i]`` over the field (the ``Σ β·δ`` combine)."""
        flat = np.asarray(tensors, dtype=np.int64).reshape(tensors.shape[0], -1)
        row = np.asarray(scalars, dtype=np.int64).reshape(1, -1)
        return self._matmul(row, flat).reshape(tensors.shape[1:])


class FloatKernels:
    """Float64 versions of the same operators (non-private path)."""

    @staticmethod
    def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Plain float matrix product."""
        return np.matmul(a, b)

    @staticmethod
    def dense(x: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Row-vector times weight matrix."""
        return x.reshape(1, -1) @ w

    @staticmethod
    def conv2d(x: np.ndarray, w: np.ndarray, stride: int = 1, pad: int = 0) -> np.ndarray:
        """Batched float convolution."""
        return F.conv2d_via_matmul(x, w, np.matmul, stride, pad)

    @staticmethod
    def conv2d_grad_x(w, delta, x_shape, stride: int = 1, pad: int = 0) -> np.ndarray:
        """Batched input-gradient (the unencoded ``δ`` propagation offload)."""
        return F.conv2d_grad_x(w, delta, x_shape, np.matmul, stride, pad)
