"""Exception hierarchy for the DarKnight reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class FieldError(ReproError):
    """Invalid finite-field operation (bad modulus, non-invertible element...)."""


class SingularMatrixError(FieldError):
    """A matrix expected to be invertible over F_p is singular."""


class QuantizationError(ReproError):
    """Fixed-point conversion failed (overflow past the signed field range)."""


class EncodingError(ReproError):
    """Masking/encoding setup is inconsistent (dimension or coefficient errors)."""


class DecodingError(ReproError):
    """A decode could not recover the expected plaintext result."""


class IntegrityError(ReproError):
    """Redundant-share verification detected tampered GPU results."""


class EnclaveError(ReproError):
    """SGX-simulator failure (memory exhaustion, sealing, attestation...)."""


class AttestationError(EnclaveError):
    """Enclave measurement or quote verification failed."""


class SealingError(EnclaveError):
    """Sealed blob failed authentication on unseal."""


class CommunicationError(ReproError):
    """Secure-channel failure (bad MAC, no session established...)."""


class GpuError(ReproError):
    """Simulated accelerator failure."""


class ConfigurationError(ReproError):
    """A runtime / experiment configuration is invalid."""


class ServingError(ReproError):
    """Failure inside the multi-tenant private-inference serving subsystem."""


class BackpressureError(ServingError):
    """The server's bounded request queue is full; the request was shed."""


class QuotaExceededError(BackpressureError):
    """A class hit its admission quota (share of the queue); arrival shed."""


class AuditError(ReproError):
    """The verifiable serving audit trail detected tampering or misuse.

    Raised when a chained log fails its integrity walk, a proof does not
    authenticate, a replay diverges from the committed digests, or an
    audit API is asked something the log cannot answer.
    """


class ShardError(ServingError):
    """Failure inside the multi-enclave sharding subsystem."""


class ShardFailedError(ShardError):
    """An enclave shard died (or was killed) while work was assigned to it.

    Carries enough context for the dispatcher to account the batches the
    shard completed before dying and to fail the rest over to a survivor:

    Attributes
    ----------
    shard_id:
        The shard that failed.
    completed:
        ``(groups, stats)`` pairs for the window batches that finished
        before the failure, in window order.
    remaining_from:
        Index into the window of the first batch that did *not* complete.
    """

    def __init__(
        self,
        message: str,
        shard_id: int = -1,
        completed: list | None = None,
        remaining_from: int = 0,
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.completed = completed or []
        self.remaining_from = remaining_from
