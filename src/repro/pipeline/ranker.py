"""Pluggable stage-scheduling policies for the pipeline executor.

The executor's event loop repeatedly asks one question: *of every
in-flight job, whose next enclave task runs now?*  That policy used to be
a hardcoded method; it is now a :class:`StageRanker` object so serving
deployments can swap it without touching the event loop — the ROADMAP's
"pluggable stage schedulers" follow-on.

Two rankers ship:

* :class:`EarliestStartRanker` — the classic order: earliest feasible
  start on the simulated clock, decodes before encodes on ties (freeing
  GPU results keeps the pipe draining), then oldest job.  This is
  bit-and-schedule-identical to the pre-refactor executor.
* :class:`DeadlineAwareRanker` — jobs carrying the tightest remaining
  SLO deadline run first, with the classic order breaking ties.  A
  window mixing premium and best-effort batches therefore spends the
  serialized enclave on the premium frontier first.

Schedule order can reorder *time* but never *values*: masking decodes
exactly, so every ranker produces bit-identical outputs (asserted in the
tests and in ``benchmarks/bench_slo_classes.py``).  Jobs without a
deadline carry ``inf``, making the deadline-aware order collapse to the
classic one — so the default deployment is unchanged.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class StageRanker:
    """Orders an executor's runnable jobs; lowest key runs first.

    Subclasses implement :meth:`rank`; keys must be totally ordered and
    deterministic so schedules are reproducible.
    """

    #: Registry name (``DarKnightConfig.stage_ranker`` value).
    name = "base"

    def rank(self, job, timeline) -> tuple:
        """The job's scheduling key given the enclave ``timeline``."""
        raise NotImplementedError


class EarliestStartRanker(StageRanker):
    """Earliest feasible start, decodes first, then oldest job."""

    name = "earliest"

    def rank(self, job, timeline) -> tuple:
        if job.future is not None:
            return (max(timeline.free_at, job.future.ready_at), 0, job.index)
        return (max(timeline.free_at, job.ready_at), 1, job.index)


class DeadlineAwareRanker(EarliestStartRanker):
    """Among equally-early tasks, tightest remaining deadline first.

    A job's ``deadline`` is the minimum remaining SLO budget across the
    requests in its batch (``inf`` when none carries a contract), set by
    the serving worker pool when it dispatches a flush window.

    Feasibility stays the primary key: every task runnable *now*
    collapses to the same ``max(free_at, ready_at)`` start, so the
    deadline decides between them — but a tight-deadline job whose next
    stage is still blocked (shares on the GPUs, release time ahead)
    never outranks runnable work.  Ranking deadline-first would park the
    serialized enclave idle until the premium future landed, destroying
    the encode/compute overlap for everyone without finishing the
    premium job any sooner.
    """

    name = "deadline"

    def rank(self, job, timeline) -> tuple:
        start, kind, index = super().rank(job, timeline)
        return (start, job.deadline, kind, index)


#: Rankers selectable by name through ``DarKnightConfig.stage_ranker``.
STAGE_RANKERS: dict[str, type[StageRanker]] = {
    EarliestStartRanker.name: EarliestStartRanker,
    DeadlineAwareRanker.name: DeadlineAwareRanker,
}


def build_ranker(name: str) -> StageRanker:
    """Instantiate a registered ranker by name."""
    cls = STAGE_RANKERS.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown stage ranker {name!r} (available: {sorted(STAGE_RANKERS)})"
        )
    return cls()
