"""First-class stage objects for the encode -> dispatch -> decode split.

The synchronous backend hid the paper's three-phase structure inside one
blocking call; these dataclasses make each phase's hand-off explicit so a
scheduler can hold, reorder, and overlap them:

* :class:`StagedLinearOp` — one linear layer prepared for offload (weights
  quantized and broadcast, kernel chosen);
* :class:`EncodeTicket` — one virtual batch masked and scattered, waiting
  to be dispatched;
* :class:`GpuFuture` — shares in flight on the cluster; carries the real
  outputs plus the simulated completion time the decode stage must wait for.

The objects deliberately carry *both* worlds: the real tensors (masked
compute always runs for real) and the simulated-clock bookkeeping
(:mod:`repro.pipeline.timing`) that models where the time would go on
SGX + GPU hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.masking import CoefficientSet
from repro.quantization import Normalization


@dataclass
class StagedLinearOp:
    """A linear layer readied for staged execution.

    Created once per (layer, batch) by ``DarKnightBackend.stage_linear``:
    weights are normalised, quantized, and broadcast to every device, so
    each virtual batch only pays for its own encode/dispatch/decode.
    """

    kind: str  #: ``"conv2d"`` or ``"dense"``.
    key: str  #: Layer identity — pairs forward encodings with backward reuse.
    w_norm: Normalization
    bias: np.ndarray | None
    #: ``gpu_op(device, share_key) -> field tensor``: the share's kernel.
    gpu_op: Callable[[object, str], np.ndarray]
    #: Optional float reference over real rows (``validate_decode`` mode).
    validate: Callable[[np.ndarray, np.ndarray], None] | None = None
    #: Quantized-weight bytes freshly broadcast by this staging call; 0 when
    #: the encoding came from the precompute cache (prices weight staging).
    staged_bytes: int = 0

    def apply_bias(self, y: np.ndarray) -> np.ndarray:
        """Add the (public) bias after decode, matching the sync path."""
        if self.bias is None:
            return y
        if self.kind == "conv2d":
            return y + self.bias.reshape(1, -1, 1, 1)
        return y + self.bias


@dataclass
class EncodeTicket:
    """One virtual batch encoded and scattered, ready for GPU dispatch."""

    op: StagedLinearOp
    share_key: str  #: Where the shares live on each device.
    coefficients: CoefficientSet
    vb_index: int  #: Position of this virtual batch within the parent batch.
    indices: tuple[int, ...]  #: Real-row positions inside the parent batch.
    n_real: int  #: Leading rows that are real (the rest is padding).
    x_norm: Normalization
    encode_bytes: int  #: Bytes of masked shares produced (prices the encode).
    #: Noise bytes drawn inline (pool miss or precompute off); priced on the
    #: encode when the cost model sets ``maskgen_bandwidth``.
    inline_noise_bytes: int = 0


@dataclass
class GpuFuture:
    """Shares in flight: real outputs now, simulated completion later.

    The cluster computes eagerly (simulation has no real asynchrony) but
    the result is not *observable* until ``ready_at`` on the simulated
    clock — the decode stage serializes behind it.
    """

    ticket: EncodeTicket
    outputs: np.ndarray  #: Stacked per-share field results.
    macs_per_share: int  #: Real MAC count one device performed.
    output_bytes: int  #: Bytes the gather/decode stage must touch.
    ready_at: float = 0.0  #: Simulated completion (set by the scheduler).


@dataclass(frozen=True)
class StageSpan:
    """One scheduled interval — the unit of the stage-timeline diagram."""

    job: int  #: Virtual-batch (pipeline job) index.
    layer: str  #: Layer key (or name, for TEE-resident layers).
    stage: str  #: ``encode`` | ``gpu`` | ``decode`` | ``tee``.
    resource: str  #: ``enclave`` or ``gpu``.
    start: float
    end: float


@dataclass
class PipelineStats:
    """What one pipelined run cost on the simulated clock."""

    start: float  #: When the first stage began.
    finish: float  #: When the last stage completed.
    n_jobs: int  #: Virtual batches executed.
    enclave_busy: float  #: Enclave-occupied seconds within the run.
    gpu_busy: float  #: Busiest single device's occupied seconds.
    stage_totals: dict[str, float] = field(default_factory=dict)
    spans: list[StageSpan] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """End-to-end simulated seconds for the run."""
        return self.finish - self.start

    @property
    def enclave_utilization(self) -> float:
        """Fraction of the makespan the enclave was busy."""
        return self.enclave_busy / self.makespan if self.makespan > 0 else 0.0

    @property
    def gpu_utilization(self) -> float:
        """Fraction of the makespan the busiest device was busy."""
        return self.gpu_busy / self.makespan if self.makespan > 0 else 0.0
