"""Simulated-time cost model and the serialized-enclave clock.

DarKnight's pipelining argument (the paper's Fig. 7) is about *where time
goes*: the enclave masks/unmasks at memory bandwidth, the GPUs grind MACs,
and the two can overlap as long as the enclave — the single trusted,
serialized resource — is never idle while work is available.  This module
prices each stage from the *real* byte counts and MAC counts the run
produced (nothing here is a guess about tensor shapes; the backend hands
the model what actually moved), and tracks the enclave's one-lane clock.

Per-GPU clocks live on :class:`repro.gpu.device.SimulatedGpu` — each share
occupies its device for the kernel's simulated duration, so virtual batches
contend for devices exactly as they contend for the enclave.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StageCostModel:
    """Linear simulated-seconds model for every pipeline stage.

    Defaults are calibrated so a VGG-style conv layer's GPU kernel is the
    same order as its enclave encode+decode — the regime where the paper's
    overlap argument bites — while a tiny dense layer stays enclave-bound
    (launch overheads dominate), which is what the serving benchmark's
    coalescing win relies on.

    Parameters
    ----------
    encode_bandwidth / decode_bandwidth:
        Bytes/second the enclave masks (encodes) or unmasks (decodes) at;
        masking is memory-traffic bound (Section 6).
    tee_bandwidth:
        Bytes/second for TEE-resident non-linear layers (ReLU/pool/BN).
    gpu_mac_throughput:
        Field multiply-accumulates/second one device sustains on a share.
    gpu_launch_overhead:
        Fixed seconds per kernel dispatch on a device.
    stage_overhead:
        Fixed seconds per enclave stage invocation (ecall/ocall boundary
        crossing plus dispatch bookkeeping).
    transfer_bandwidth:
        Bytes/second for a sealed activation hand-off between enclave
        shards in a layer-partitioned pipeline (the consumer enclave
        receives, MAC-verifies, and unseals inside the TEE, so the cost
        lands on *its* timeline).
    maskgen_bandwidth:
        Bytes/second the enclave generates mask/noise material and
        (re-)stages weight encodings at.  ``None`` (the default) keeps
        the legacy model where this work is free on the simulated clock;
        setting it prices inline noise draws and per-window weight
        staging, which is what makes the offline/online split
        (``precompute`` mode) visible as a simulated-latency win.
    """

    encode_bandwidth: float = 2e9
    decode_bandwidth: float = 2e9
    tee_bandwidth: float = 2e9
    gpu_mac_throughput: float = 1e9
    gpu_launch_overhead: float = 2e-5
    stage_overhead: float = 2e-4
    transfer_bandwidth: float = 2e9
    maskgen_bandwidth: float | None = None

    def __post_init__(self) -> None:
        for name in (
            "encode_bandwidth",
            "decode_bandwidth",
            "tee_bandwidth",
            "gpu_mac_throughput",
            "transfer_bandwidth",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be > 0, got {getattr(self, name)}")
        if self.gpu_launch_overhead < 0 or self.stage_overhead < 0:
            raise ConfigurationError("stage overheads must be >= 0")
        if self.maskgen_bandwidth is not None and self.maskgen_bandwidth <= 0:
            raise ConfigurationError(
                f"maskgen_bandwidth must be > 0 or None, got {self.maskgen_bandwidth}"
            )

    # ------------------------------------------------------------------
    # per-stage durations
    # ------------------------------------------------------------------
    def encode_time(self, nbytes: int) -> float:
        """Enclave seconds to mask one virtual batch into shares."""
        return self.stage_overhead + nbytes / self.encode_bandwidth

    def decode_time(self, nbytes: int) -> float:
        """Enclave seconds to gather/verify/unmask stacked GPU outputs."""
        return self.stage_overhead + nbytes / self.decode_bandwidth

    def local_time(self, nbytes: int) -> float:
        """Enclave seconds for one TEE-resident (non-linear) layer."""
        return self.stage_overhead + nbytes / self.tee_bandwidth

    def gpu_time(self, macs_per_share: int) -> float:
        """Device seconds for one share's bilinear kernel."""
        return self.gpu_launch_overhead + macs_per_share / self.gpu_mac_throughput

    def transfer_time(self, nbytes: int) -> float:
        """Consumer-enclave seconds to receive + unseal a cross-shard
        activation envelope."""
        return self.stage_overhead + nbytes / self.transfer_bandwidth

    def maskgen_time(self, nbytes: int) -> float:
        """Enclave seconds to quantize/broadcast a weight encoding.

        Priced only when :attr:`maskgen_bandwidth` is set; includes the
        ecall overhead because staging crosses the enclave boundary.
        Background pool refills deliberately do *not* use this — they
        run inside already-open enclave idle time, so they pay bytes
        only (see the executor's gap filler).
        """
        if self.maskgen_bandwidth is None:
            return 0.0
        return self.stage_overhead + nbytes / self.maskgen_bandwidth


#: Shared default so every entry point prices stages identically.
DEFAULT_STAGE_COSTS = StageCostModel()


class EnclaveTimeline:
    """The enclave's serialized simulated clock.

    One lane: every encode, decode, and TEE-resident layer reserves an
    exclusive interval.  The timeline persists across batches when shared
    (the serving worker pool holds one), which is what lets batch ``n+1``'s
    encode run — in simulated time — while batch ``n``'s shares are still
    on the GPUs.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.free_at = float(start)
        self.busy_time = 0.0

    def reserve(self, not_before: float, duration: float) -> tuple[float, float]:
        """Claim the next exclusive interval; returns ``(start, end)``."""
        if duration < 0:
            raise ConfigurationError(f"duration must be >= 0, got {duration}")
        start = max(self.free_at, not_before)
        end = start + duration
        self.free_at = end
        self.busy_time += duration
        return start, end
