"""Layer-pipelined private execution: encode/compute/decode as a schedule.

DarKnight's headline speedup comes from overlapping enclave encode/decode
with GPU linear compute (the paper's Fig. 7).  This package makes that
overlap a first-class, inspectable schedule instead of an implementation
accident: stage objects (:mod:`repro.pipeline.stages`), a simulated-time
cost model and the serialized enclave clock (:mod:`repro.pipeline.timing`),
and the event-driven :class:`~repro.pipeline.executor.PipelineExecutor`
that interleaves stages across in-flight virtual batches.

Scheduling policy is pluggable by construction — adaptive batching and
multi-enclave sharding slot in as alternative stage schedulers rather than
rewrites of the execution path.

Relationship to :mod:`repro.perf`: that package *predicts* schedules from
analytical architecture specs (the paper's tables/figures); this package
*executes* real masked compute and accounts the stages it actually ran.
The two answer different questions and deliberately do not share state.
"""

from repro.pipeline.executor import GroupResult, PipelineExecutor, PipelineResult
from repro.pipeline.ranker import (
    STAGE_RANKERS,
    DeadlineAwareRanker,
    EarliestStartRanker,
    StageRanker,
    build_ranker,
)
from repro.pipeline.stages import (
    EncodeTicket,
    GpuFuture,
    PipelineStats,
    StagedLinearOp,
    StageSpan,
)
from repro.pipeline.timing import DEFAULT_STAGE_COSTS, EnclaveTimeline, StageCostModel

__all__ = [
    "PipelineExecutor",
    "PipelineResult",
    "GroupResult",
    "StageRanker",
    "EarliestStartRanker",
    "DeadlineAwareRanker",
    "STAGE_RANKERS",
    "build_ranker",
    "StagedLinearOp",
    "EncodeTicket",
    "GpuFuture",
    "StageSpan",
    "PipelineStats",
    "StageCostModel",
    "DEFAULT_STAGE_COSTS",
    "EnclaveTimeline",
]
