"""Event-driven pipeline executor: layer-pipelined encode/compute/decode.

The paper's Fig. 7 threading argument, made schedulable: each virtual batch
is a *job* that flows through the network's execution plan, and the enclave
— the single serialized trusted resource — picks the next stage to run from
every in-flight job's frontier.  While job ``n``'s shares grind on the GPUs,
the enclave encodes job ``n+1``'s next layer (or decodes whichever future
completed first), so enclave and accelerator time overlap instead of
serializing.

Scheduling policy: pluggable (:mod:`repro.pipeline.ranker`).  The default
:class:`~repro.pipeline.ranker.EarliestStartRanker` runs, among all
runnable enclave tasks, the one that can start earliest on the simulated
clock; ties break toward decodes (freeing GPU results keeps the pipe
draining) and then toward older jobs.  The deadline-aware ranker instead
runs the job carrying the tightest remaining SLO deadline first.  With
``pipeline_depth=1`` exactly one job is in flight and every ranker
collapses to the classic synchronous order.

Real values and simulated time are deliberately decoupled: kernels execute
eagerly in program order, but every stage *reserves* simulated intervals on
the enclave timeline and device clocks, and decodes are not scheduled before
their future's ``ready_at``.  Masking decodes exactly, so schedule order can
never change a logit — pipelined output is bit-identical to the synchronous
path by construction (and asserted in the tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.masking import iter_virtual_batches
from repro.masking.virtual_batch import VirtualBatch
from repro.nn.layers import BranchJoin
from repro.nn.network import PLAN_INPUT
from repro.pipeline.ranker import EarliestStartRanker, StageRanker
from repro.pipeline.stages import GpuFuture, PipelineStats, StagedLinearOp, StageSpan
from repro.pipeline.timing import DEFAULT_STAGE_COSTS, EnclaveTimeline, StageCostModel


def plan_live_out(plan, end: int) -> tuple[int, ...]:
    """Value indices a partition cut at ``end`` must hand to the consumer.

    These are the producers (``PLAN_INPUT`` or step indices ``< end``)
    that some step ``>= end`` still depends on — for a linear plan just
    the last step of the range, but a cut through a flattened residual
    block also carries the pending skip branch.
    """
    live = {
        dep
        for step in plan[end:]
        for dep in step.deps
        if dep < end
    }
    return tuple(sorted(live))


@dataclass
class _Job:
    """One virtual batch in flight through the (sub-)plan DAG."""

    index: int
    indices: tuple[int, ...]  #: Row positions inside the parent batch.
    n_real: int
    activation: np.ndarray  #: Real rows only, current step's input.
    values: dict  #: Produced step outputs still needed (``PLAN_INPUT`` = input).
    step_idx: int = 0  #: Next execution-plan step to run.
    ready_at: float = 0.0  #: When the activation became available.
    future: GpuFuture | None = None  #: Set while shares are on the GPUs.
    deadline: float = math.inf  #: Tightest SLO deadline in the job's group.
    transfer_bytes: int = 0  #: Pending sealed-envelope bytes to unseal first.

    def padded(self, k: int) -> VirtualBatch:
        """Re-pad the activation to a full ``K``-slot virtual batch."""
        data = self.activation
        if self.n_real < k:
            pad = np.zeros((k - self.n_real,) + data.shape[1:], dtype=data.dtype)
            data = np.concatenate([data, pad], axis=0)
        return VirtualBatch(data=data, indices=self.indices, n_real=self.n_real)


@dataclass
class GroupResult:
    """One input group's (e.g. one scheduled batch's) pipelined outcome.

    ``output`` is the final activation batch for a full-plan run; a
    sub-range run (``step_range`` ending before the last step) instead
    yields the *live value set* at the cut — ``{producer step: batch}`` —
    which the next partition shard consumes.
    """

    output: np.ndarray | dict
    start: float  #: When the group's first stage began.
    finish: float  #: When the group's last stage completed.


@dataclass
class PipelineResult:
    """Output batch plus the simulated-time account of producing it."""

    output: np.ndarray
    stats: PipelineStats


class PipelineExecutor:
    """Walks a :class:`~repro.nn.network.Sequential`'s execution plan with
    up to ``pipeline_depth`` virtual batches in flight.

    Parameters
    ----------
    network:
        The model whose :meth:`~repro.nn.network.Sequential.execution_plan`
        is walked.
    backend:
        A staged backend (``stage_linear``/``encode``/``dispatch``/``decode``
        plus the blocking ops for TEE-resident layers) sharing the enclave
        and GPU cluster.  Inference only — training drives the synchronous
        path, whose backward pass reuses stored forward encodings in place.
    pipeline_depth:
        Maximum virtual batches in flight; ``1`` reproduces the synchronous
        schedule exactly.
    costs:
        Stage pricing; defaults to :data:`~repro.pipeline.timing.DEFAULT_STAGE_COSTS`.
    timeline:
        The enclave's serialized clock.  Pass a shared instance to overlap
        consecutive engine batches (the serving pool does); defaults to a
        fresh clock at zero.
    ranker:
        The stage-scheduling policy (:mod:`repro.pipeline.ranker`).
        Defaults to :class:`~repro.pipeline.ranker.EarliestStartRanker`,
        the pre-refactor order; every ranker is bit-identical in values.
    """

    def __init__(
        self,
        network,
        backend,
        pipeline_depth: int = 1,
        costs: StageCostModel | None = None,
        timeline: EnclaveTimeline | None = None,
        ranker: StageRanker | None = None,
    ) -> None:
        if pipeline_depth < 1:
            raise ConfigurationError(
                f"pipeline depth must be >= 1, got {pipeline_depth}"
            )
        for op_name in ("stage_linear", "encode", "dispatch", "decode"):
            if not callable(getattr(backend, op_name, None)):
                raise ConfigurationError(
                    f"backend {type(backend).__name__} lacks staged op {op_name!r};"
                    " pipelined execution needs a StagedLinearBackend"
                )
        self.network = network
        self.backend = backend
        self.pipeline_depth = pipeline_depth
        self.costs = costs or DEFAULT_STAGE_COSTS
        self.timeline = timeline or EnclaveTimeline()
        self.ranker = ranker or EarliestStartRanker()
        # Backends exposing the precompute interface get their mask pools
        # refilled during enclave idle gaps (the ``stage_precompute`` op).
        self._can_refill = callable(
            getattr(backend, "precompute_pending", None)
        ) and callable(getattr(backend, "precompute_refill", None))

    # ------------------------------------------------------------------
    # plan preparation
    # ------------------------------------------------------------------
    def _stage_ops(self, start: int = 0, end: int | None = None) -> dict[int, StagedLinearOp]:
        """Prepare every offloaded layer in the range once (weights
        broadcast per batch)."""
        plan = self.network.execution_plan()
        ops: dict[int, StagedLinearOp] = {}
        for step in plan[start : end if end is not None else len(plan)]:
            if not step.offloaded:
                continue
            layer = step.layer
            if hasattr(layer, "kernel_size"):
                ops[step.index] = self.backend.stage_linear(
                    "conv2d",
                    layer.params["w"],
                    layer.params.get("b"),
                    layer.name,
                    stride=layer.stride,
                    pad=layer.pad,
                )
            else:
                ops[step.index] = self.backend.stage_linear(
                    "dense", layer.params["w"], layer.params.get("b"), layer.name
                )
        return ops

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(self, x: np.ndarray, release_time: float = 0.0) -> PipelineResult:
        """Execute one batch, interleaving stages across virtual batches.

        ``release_time`` is when the batch's data becomes available on the
        simulated clock (a serving batch's flush time); no stage is
        scheduled before it.
        """
        groups, stats = self.run_grouped([(x, release_time)])
        return PipelineResult(output=groups[0].output, stats=stats)

    def run_grouped(
        self, items: list[tuple], step_range: tuple[int, int] | None = None
    ) -> tuple[list[GroupResult], PipelineStats]:
        """Pipeline several input groups through one event loop.

        Each item is ``(batch, release_time)``, ``(batch, release_time,
        deadline)``, or ``(batch, release_time, deadline,
        transfer_bytes)``; a group's rows split into virtual batches
        (jobs) released at the group's time and carrying the group's SLO
        deadline (``inf`` when omitted — only the deadline-aware ranker
        reads it).  All jobs — across groups — share the in-flight
        window, so the enclave encodes group ``n+1``'s first layer while
        group ``n``'s shares are still on the GPUs: this is the serving
        pool's cross-batch overlap.  Returns per-group outputs with their
        own start/finish times, plus the window-wide stats.

        ``step_range`` restricts execution to the plan slice ``[start,
        end)`` — one partition shard's stage range.  A mid-plan entry's
        ``batch`` is then the producer's live value dict (``{step index:
        rows}``); a positive ``transfer_bytes`` prices the sealed
        activation hand-off as a *transfer op* on this shard's enclave
        timeline before the first compute stage — it competes for the
        enclave through the same :class:`~repro.pipeline.ranker
        .StageRanker` as every other stage.
        """
        k = self.backend.config.virtual_batch_size
        plan = self.network.execution_plan()
        start_idx, end_idx = step_range if step_range is not None else (0, len(plan))
        if not (0 <= start_idx < end_idx <= len(plan)):
            raise ConfigurationError(
                f"step range [{start_idx}, {end_idx}) outside plan of {len(plan)} steps"
            )
        ops = self._stage_ops(start_idx, end_idx)
        # Producers each step still needs, and when a value dies.
        last_use: dict[int, int] = {}
        for step in plan:
            for dep in step.deps:
                last_use[dep] = step.index
        live_out = plan_live_out(plan, end_idx) if end_idx < len(plan) else ()

        jobs: list[_Job] = []
        group_of: dict[int, int] = {}
        for g, item in enumerate(items):
            x, release_time = item[0], item[1]
            deadline = item[2] if len(item) > 2 else math.inf
            transfer_bytes = int(item[3]) if len(item) > 3 else 0
            for values in self._iter_payload(x, k):
                rows = next(iter(values.values()))
                job = _Job(
                    index=len(jobs),
                    indices=rows.indices,
                    n_real=rows.n_real,
                    activation=rows.data[: rows.n_real],
                    values={
                        key: vb.data[: vb.n_real] for key, vb in values.items()
                    },
                    step_idx=start_idx,
                    ready_at=release_time,
                    deadline=deadline,
                    transfer_bytes=transfer_bytes,
                )
                group_of[job.index] = g
                jobs.append(job)

        enclave_busy_before = self.timeline.busy_time
        gpu_busy_before = self.backend.cluster.max_busy_time()
        spans: list[StageSpan] = []
        stage_totals: dict[str, float] = {}
        outputs: dict[int, np.ndarray | dict] = {}

        first_release = min((item[1] for item in items), default=0.0)
        # Freshly staged weight encodings (quantize + broadcast) occupy the
        # enclave before the window's first compute stage; a precompute
        # cache hit leaves ``staged_bytes`` at 0 and costs nothing here.
        if self.costs.maskgen_bandwidth is not None:
            for op in ops.values():
                if op.staged_bytes:
                    start, end = self.timeline.reserve(
                        first_release, self.costs.maskgen_time(op.staged_bytes)
                    )
                    self._account(
                        spans, stage_totals, -1, op.key, "stage_weights",
                        "enclave", start, end,
                    )
                    op.staged_bytes = 0

        waiting = list(jobs)
        active: list[_Job] = []
        while waiting or active:
            while waiting and len(active) < self.pipeline_depth:
                active.append(waiting.pop(0))
            job = min(active, key=self._task_rank)
            if self._can_refill:
                self._fill_idle_gap(job, spans, stage_totals)
            if job.transfer_bytes:
                self._run_transfer(job, spans, stage_totals)
            elif job.future is not None:
                self._run_decode(job, last_use, spans, stage_totals)
            elif plan[job.step_idx].offloaded:
                job.activation = job.values[plan[job.step_idx].deps[0]]
                self._run_encode(job, k, ops[job.step_idx], spans, stage_totals)
            else:
                self._run_tee(job, plan[job.step_idx], last_use, spans, stage_totals)
            if (
                job.future is None
                and not job.transfer_bytes
                and job.step_idx == end_idx
            ):
                if end_idx == len(plan):
                    outputs[job.index] = job.values[plan[-1].index]
                else:
                    outputs[job.index] = {i: job.values[i] for i in live_out}
                active.remove(job)

        stats = PipelineStats(
            start=min((s.start for s in spans), default=first_release),
            finish=max((s.end for s in spans), default=first_release),
            n_jobs=len(jobs),
            enclave_busy=self.timeline.busy_time - enclave_busy_before,
            gpu_busy=self.backend.cluster.max_busy_time() - gpu_busy_before,
            stage_totals=stage_totals,
            spans=spans,
        )
        groups: list[GroupResult] = []
        for g, item in enumerate(items):
            release_time = item[1]
            members = [j for j in range(len(jobs)) if group_of[j] == g]
            # ``.get``: precompute/staging spans carry job=-1 (no group).
            group_spans = [s for s in spans if group_of.get(s.job) == g]
            if end_idx == len(plan):
                output = np.concatenate([outputs[j] for j in members], axis=0)
            else:
                output = {
                    i: np.concatenate([outputs[j][i] for j in members], axis=0)
                    for i in live_out
                }
            groups.append(
                GroupResult(
                    output=output,
                    start=min((s.start for s in group_spans), default=release_time),
                    finish=max((s.end for s in group_spans), default=release_time),
                )
            )
        return groups, stats

    def _iter_payload(self, x, k: int):
        """Split one group's payload into per-job value dicts.

        A plain array is the network input (keyed :data:`PLAN_INPUT`); a
        dict is a mid-plan live value set — every entry shares the same
        leading batch dimension, so all split into identical row ranges.
        """
        if isinstance(x, dict):
            keys = sorted(x)
            splits = [list(iter_virtual_batches(x[key], k)) for key in keys]
            for parts in zip(*splits):
                yield dict(zip(keys, parts))
        else:
            for vb in iter_virtual_batches(x, k):
                yield {PLAN_INPUT: vb}

    # ------------------------------------------------------------------
    # task selection and execution
    # ------------------------------------------------------------------
    def _task_rank(self, job: _Job) -> tuple:
        """Order enclave candidates through the pluggable ranker —
        deterministic keys, so schedules are reproducible."""
        return self.ranker.rank(job, self.timeline)

    def _account(
        self,
        spans: list[StageSpan],
        totals: dict[str, float],
        job: int,
        layer: str,
        stage: str,
        resource: str,
        start: float,
        end: float,
    ) -> None:
        spans.append(
            StageSpan(
                job=job, layer=layer, stage=stage, resource=resource,
                start=start, end=end,
            )
        )
        totals[stage] = totals.get(stage, 0.0) + (end - start)

    def _fill_idle_gap(
        self,
        job: _Job,
        spans: list[StageSpan],
        totals: dict[str, float],
    ) -> None:
        """Run mask-pool refills in the gap before the chosen task starts.

        The paper's offline phase as a schedulable op: a refill unit runs
        only when it fits *entirely* before the next real stage's feasible
        start, so pregeneration can never delay online work.  Refills pay
        bytes-only time (no ecall overhead — the enclave is already open
        and idle); with no ``maskgen_bandwidth`` they are free on the
        simulated clock but still fill the pool for real.
        """
        if job.future is not None and not job.transfer_bytes:
            next_start = job.future.ready_at
        else:
            next_start = job.ready_at
        gap_end = max(self.timeline.free_at, next_start)
        bw = self.costs.maskgen_bandwidth
        while True:
            nbytes = self.backend.precompute_pending()
            if not nbytes:
                return
            duration = 0.0 if bw is None else nbytes / bw
            if self.timeline.free_at + duration > gap_end:
                return
            self.backend.precompute_refill()
            if duration > 0.0:
                start, end = self.timeline.reserve(self.timeline.free_at, duration)
                self._account(
                    spans, totals, -1, "mask_pool", "precompute", "enclave", start, end
                )

    def _run_encode(
        self,
        job: _Job,
        k: int,
        op: StagedLinearOp,
        spans: list[StageSpan],
        totals: dict[str, float],
    ) -> None:
        """Encode the job's next layer and put its shares in flight."""
        ticket = self.backend.encode(op, job.padded(k), job.index)
        duration = self.costs.encode_time(ticket.encode_bytes)
        if self.costs.maskgen_bandwidth is not None and ticket.inline_noise_bytes:
            # Inline noise generation (pool miss or precompute off) rides
            # the encode's ecall — bytes-only surcharge, no extra overhead.
            duration += ticket.inline_noise_bytes / self.costs.maskgen_bandwidth
        start, end = self.timeline.reserve(job.ready_at, duration)
        self._account(spans, totals, job.index, op.key, "encode", "enclave", start, end)
        future = self.backend.dispatch(ticket)
        gpu_start, ready_at = self.backend.cluster.reserve_shares(
            ticket.coefficients.n_shares,
            self.costs.gpu_time(future.macs_per_share),
            not_before=end,
        )
        future.ready_at = ready_at
        self._account(spans, totals, job.index, op.key, "gpu", "gpu", gpu_start, ready_at)
        job.future = future

    def _finish_step(
        self, job: _Job, step, value: np.ndarray, last_use: dict[int, int]
    ) -> None:
        """Record a step's output and drop values nothing later needs.

        ``last_use`` spans the *full* plan, so a value some step beyond
        this executor's range still depends on (a partition cut's live
        set) is never freed here.
        """
        job.values[step.index] = value
        for dep in step.deps:
            if last_use.get(dep) == step.index:
                job.values.pop(dep, None)
        job.step_idx = step.index + 1

    def _run_transfer(
        self,
        job: _Job,
        spans: list[StageSpan],
        totals: dict[str, float],
    ) -> None:
        """Price a sealed cross-shard activation hand-off on this enclave.

        The producer shard already sealed the live values (the host only
        ever relays ciphertext); what lands here is the consumer-side
        receive + MAC-verify + unseal, an enclave-serialized stage like
        any other.
        """
        start, end = self.timeline.reserve(
            job.ready_at, self.costs.transfer_time(job.transfer_bytes)
        )
        self._account(
            spans, totals, job.index, "handoff", "transfer", "enclave", start, end
        )
        job.transfer_bytes = 0
        job.ready_at = end

    def _run_decode(
        self,
        job: _Job,
        last_use: dict[int, int],
        spans: list[StageSpan],
        totals: dict[str, float],
    ) -> None:
        """Decode a completed future and advance the job one layer."""
        future = job.future
        op = future.ticket.op
        y = self.backend.decode(future)
        if op.validate is not None:
            op.validate(y, job.activation)
        start, end = self.timeline.reserve(
            future.ready_at, self.costs.decode_time(future.output_bytes)
        )
        self._account(spans, totals, job.index, op.key, "decode", "enclave", start, end)
        step = self.network.execution_plan()[job.step_idx]
        job.future = None
        self._finish_step(job, step, op.apply_bias(y), last_use)
        job.ready_at = end

    def _run_tee(
        self,
        job: _Job,
        step,
        last_use: dict[int, int],
        spans: list[StageSpan],
        totals: dict[str, float],
    ) -> None:
        """Run one TEE-resident step on the real rows.

        A two-input :class:`~repro.nn.layers.BranchJoin` merges its DAG
        dependencies here.  Composite layers may still offload inner
        convolutions through the *blocking* backend path while executing;
        that work is detected via the cluster's MAC counter and priced
        honestly (devices reserved, enclave blocked for the duration).
        """
        if isinstance(step.layer, BranchJoin):
            a, b = (job.values[d] for d in step.deps)
            nbytes = int(a.nbytes) + int(b.nbytes)
            macs_before = self.backend.cluster.total_mac_ops()
            out = step.layer.join(a, b, training=False)
        else:
            x = job.values[step.deps[0]]
            nbytes = int(np.asarray(x).nbytes)
            macs_before = self.backend.cluster.total_mac_ops()
            out = step.layer.forward(x, self.backend, training=False)
        macs = self.backend.cluster.total_mac_ops() - macs_before
        duration = self.costs.local_time(nbytes)
        if macs > 0:
            n_shares = self.backend.config.n_shares
            gpu_duration = self.costs.gpu_time(macs // n_shares)
            self.backend.cluster.reserve_shares(
                n_shares, gpu_duration, not_before=max(self.timeline.free_at, job.ready_at)
            )
            duration += gpu_duration
        start, end = self.timeline.reserve(job.ready_at, duration)
        self._account(spans, totals, job.index, step.name, "tee", "enclave", start, end)
        self._finish_step(job, step, out, last_use)
        job.ready_at = end
