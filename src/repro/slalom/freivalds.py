"""Freivalds' probabilistic verification of outsourced matrix products.

Slalom+Integrity (Fig. 6a) checks each claimed ``Y = W·X`` with Freivalds'
algorithm: sample a random field vector ``s`` and compare ``sᵀY`` with
``(sᵀW)·X`` — O(n²) instead of the O(n³) recompute, with error probability
``1/p`` per trial.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IntegrityError
from repro.fieldmath import FieldRng, PrimeField, field_matmul


def freivalds_check(
    field: PrimeField,
    w_flat: np.ndarray,
    x_cols: np.ndarray,
    y_claimed: np.ndarray,
    rng: FieldRng,
    trials: int = 1,
) -> bool:
    """Verify ``y_claimed == w_flat @ x_cols (mod p)`` probabilistically.

    Parameters
    ----------
    w_flat:
        ``(F, D)`` operator matrix (e.g. flattened conv weights).
    x_cols:
        ``(D, P)`` input columns (e.g. im2col patches).
    y_claimed:
        ``(F, P)`` the GPU's claimed product.
    trials:
        Independent repetitions; failure escape probability is ``p^-trials``.

    Returns
    -------
    ``True`` when every trial passes.
    """
    if w_flat.shape[1] != x_cols.shape[0] or y_claimed.shape != (
        w_flat.shape[0],
        x_cols.shape[1],
    ):
        raise IntegrityError(
            f"shape mismatch: W {w_flat.shape}, X {x_cols.shape}, Y {y_claimed.shape}"
        )
    for _ in range(max(1, trials)):
        s = rng.uniform((1, w_flat.shape[0]))
        lhs = field_matmul(field, s, y_claimed)  # (1, P)
        sw = field_matmul(field, s, w_flat)  # (1, D)
        rhs = field_matmul(field, sw, x_cols)  # (1, P)
        if not np.array_equal(lhs, rhs):
            return False
    return True


def freivalds_macs(f: int, d: int, p: int, trials: int = 1) -> int:
    """MAC count of the check (the cost model prices it directly)."""
    return trials * (f * p + f * d + d * p)
