"""Slalom inference backend: blinded offload with optional Freivalds checks.

Implements the :class:`~repro.nn.backends.LinearBackend` forward surface so
the same model code that runs under DarKnight runs under Slalom — and the
backward surface raises, reproducing the paper's Section 7.2 argument that
precomputed blinding cannot follow weight updates.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.comm import LinkModel
from repro.enclave import Enclave
from repro.errors import IntegrityError
from repro.gpu import GpuCluster
from repro.nn import functional as F
from repro.quantization import DynamicNormalizer, QuantizationConfig
from repro.slalom.blinding import BlindingStore
from repro.slalom.freivalds import freivalds_check


class SlalomTrainingError(NotImplementedError):
    """Raised when a training op hits the Slalom backend."""

    def __init__(self, op: str) -> None:
        super().__init__(
            f"Slalom cannot compute {op}: its unblinding factors W·r are"
            " precomputed offline, and training updates W after every batch"
            " (paper Section 7.2). Use DarKnightBackend for training."
        )


class SlalomBackend:
    """Blinded-inference backend (one GPU, per-sample one-time pads).

    Parameters
    ----------
    enclave / cluster / link:
        Simulation substrates (created on demand).
    integrity:
        Verify every GPU result with Freivalds' algorithm
        (the Slalom+Integrity bars of Fig. 6a).
    fractional_bits:
        Fixed-point precision (Slalom also uses ~8-bit fixed point).
    pool_size:
        Blinding pairs precomputed per layer whenever the pool runs dry.
    """

    def __init__(
        self,
        enclave: Enclave | None = None,
        cluster: GpuCluster | None = None,
        link: LinkModel | None = None,
        integrity: bool = False,
        fractional_bits: int = 8,
        pool_size: int = 32,
    ) -> None:
        self.enclave = enclave or Enclave(code_identity="slalom-enclave-v1", seed=0)
        self.field = self.enclave.field
        self.cluster = cluster or GpuCluster(self.field, 2)
        self.link = link or LinkModel()
        self.integrity = integrity
        self.pool_size = pool_size
        self.quantizer = QuantizationConfig(fractional_bits=fractional_bits, field=self.field)
        self.store = BlindingStore(self.enclave)
        self._normalizer = DynamicNormalizer()
        self._weight_versions: dict[str, int] = {}
        self._weight_prints: dict[str, bytes] = {}

    # ------------------------------------------------------------------
    # weight versioning — the mechanism that forbids training
    # ------------------------------------------------------------------
    def _weight_version(self, key: str, w: np.ndarray) -> int:
        print_ = hashlib.blake2b(np.ascontiguousarray(w).tobytes(), digest_size=16).digest()
        if self._weight_prints.get(key) != print_:
            self._weight_prints[key] = print_
            self._weight_versions[key] = self._weight_versions.get(key, -1) + 1
        return self._weight_versions[key]

    # ------------------------------------------------------------------
    # forward ops
    # ------------------------------------------------------------------
    def _blinded_linear(
        self,
        x: np.ndarray,
        w: np.ndarray,
        key: str,
        field_op,
        macs_per_sample: int,
        verify,
    ) -> np.ndarray:
        """Shared blinded path: per-sample blind -> GPU -> unblind."""
        x_scaled, x_norm = self._normalizer.normalize(x)
        w_scaled, w_norm = self._normalizer.normalize(w)
        w_q = self.quantizer.quantize(w_scaled)
        version = self._weight_version(key, w)
        if self.store.pool_version(key) not in (None, version):
            # Weights changed since the pool was built: every precomputed
            # W·r is stale. A fresh *offline* phase can rebuild it — which
            # is exactly what a training loop cannot afford per step.
            self.store.invalidate(key)
        sample_shape = tuple(x.shape[1:])
        needed = x.shape[0] - self.store.pairs_available(key)
        if needed > 0:
            self.store.precompute(
                key,
                max(needed, self.pool_size),
                sample_shape,
                lambda r: field_op(r, w_q),
                macs_per_op=macs_per_sample,
                weight_version=version,
            )
        outputs = []
        device = self.cluster[0]
        for i in range(x.shape[0]):
            x_q = self.quantizer.quantize(x_scaled[i])
            pair = self.store.next_pair(key, weight_version=version)
            blinded = self.store.blind(x_q, pair)
            self.link.transfer("enclave", "gpu0", int(blinded.nbytes))
            y_blinded = field_op(blinded, w_q)
            device.ledger.record(f"slalom:{key}", macs_per_sample, int(y_blinded.nbytes))
            self.link.transfer("gpu0", "enclave", int(y_blinded.nbytes))
            if self.integrity and not verify(w_q, blinded, y_blinded):
                raise IntegrityError(
                    f"Freivalds check failed for layer {key!r} sample {i}"
                )
            y_q = self.store.unblind(y_blinded, pair)
            outputs.append(self.quantizer.dequantize_product(y_q))
        out = np.stack(outputs) * (x_norm.factor * w_norm.factor)
        return out

    def conv2d_forward(self, x, w, b, stride, pad, key):
        """Blinded convolution, one sample per blinding pair."""
        kh, kw = w.shape[2], w.shape[3]
        out_c = w.shape[0]

        def field_op(sample, w_q):
            return self.cluster[0].kernels.conv2d(sample, w_q, stride, pad)

        def verify(w_q, blinded, y_blinded):
            cols = F.im2col(blinded[None], kh, kw, stride, pad)[0]
            w_flat = w_q.reshape(out_c, -1)
            y_flat = y_blinded.reshape(out_c, -1)
            return freivalds_check(self.field, w_flat, cols, y_flat, self.enclave.rng)

        macs = None
        oh = F.conv_output_size(x.shape[2], kh, stride, pad)
        ow = F.conv_output_size(x.shape[3], kw, stride, pad)
        macs = oh * ow * out_c * x.shape[1] * kh * kw
        out = self._blinded_linear(x, w, key, field_op, macs, verify)
        if b is not None:
            out = out + b.reshape(1, -1, 1, 1)
        return out

    def dense_forward(self, x, w, b, key):
        """Blinded dense layer."""

        def field_op(sample, w_q):
            return self.cluster[0].kernels.dense(sample, w_q)

        def verify(w_q, blinded, y_blinded):
            return freivalds_check(
                self.field,
                w_q.T,
                blinded.reshape(-1, 1),
                y_blinded.reshape(-1, 1),
                self.enclave.rng,
            )

        macs = int(w.shape[0]) * int(w.shape[1])
        out = self._blinded_linear(x, w, key, field_op, macs, verify)
        if b is not None:
            out = out + b
        return out

    # ------------------------------------------------------------------
    # training ops — impossible by design
    # ------------------------------------------------------------------
    def conv2d_grad_w(self, x, delta, kh, kw, stride, pad, key):
        raise SlalomTrainingError("conv2d_grad_w")

    def conv2d_grad_x(self, w, delta, x_shape, stride, pad, key):
        raise SlalomTrainingError("conv2d_grad_x")

    def dense_grad_w(self, x, delta, key):
        raise SlalomTrainingError("dense_grad_w")

    def dense_grad_x(self, w, delta, key):
        raise SlalomTrainingError("dense_grad_x")

    def end_batch(self) -> None:
        """Blinding pairs are one-time; nothing else to clear."""
