"""Slalom baseline: precomputed blinding inference + Freivalds integrity."""

from repro.slalom.blinding import BlindingPair, BlindingStore
from repro.slalom.freivalds import freivalds_check, freivalds_macs
from repro.slalom.runtime import SlalomBackend, SlalomTrainingError

__all__ = [
    "BlindingStore",
    "BlindingPair",
    "SlalomBackend",
    "SlalomTrainingError",
    "freivalds_check",
    "freivalds_macs",
]
