"""Slalom's additive stream-cipher blinding with precomputed unblinding.

Slalom [Tramèr & Boneh, ICLR 2019] protects inference inputs by adding a
one-time random field vector: the GPU sees ``x + r`` and computes
``W·(x + r)``; the enclave recovers ``W·x`` by subtracting a *precomputed*
``u = W·r``.  The precomputation is the crux: it is done offline, the pairs
``(r, u)`` are encrypted and parked in untrusted memory, and each layer
fetches + decrypts its pair during inference (that reload/decrypt traffic is
exactly where DarKnight's ~30% inference edge in Fig. 6a comes from).

And it is why Slalom cannot train (Section 7.2): after every optimiser step
``W`` changes, invalidating every precomputed ``u`` — recomputing ``W·r``
inside SGX per batch would defeat the offload entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.enclave import Enclave
from repro.errors import EncodingError
from repro.fieldmath import PrimeField


@dataclass(frozen=True)
class BlindingPair:
    """One precomputed ``(r, u = f(r))`` pair for a specific layer+weights."""

    r: np.ndarray
    u: np.ndarray
    weight_version: int


class BlindingStore:
    """Offline-precomputed blinding state, sealed into untrusted memory.

    Parameters
    ----------
    enclave:
        Supplies randomness, sealing and the untrusted store.
    """

    def __init__(self, enclave: Enclave) -> None:
        self.enclave = enclave
        self.field: PrimeField = enclave.field
        self._counters: dict[str, int] = {}
        self._precomputed: dict[str, int] = {}
        self._versions: dict[str, int] = {}
        #: MACs spent in the offline phase (reported separately, as Slalom does).
        self.offline_macs = 0

    # ------------------------------------------------------------------
    # offline phase
    # ------------------------------------------------------------------
    def precompute(
        self,
        layer_key: str,
        n_pairs: int,
        input_shape: tuple[int, ...],
        linear_op: Callable[[np.ndarray], np.ndarray],
        macs_per_op: int,
        weight_version: int = 0,
    ) -> None:
        """Generate ``n_pairs`` blinding pairs for a layer and seal them out.

        ``linear_op`` is the layer's bilinear op bound to its (quantized)
        weights — computing it on ``r`` is the offline work.
        """
        if n_pairs < 1:
            raise EncodingError(f"need at least one pair, got {n_pairs}")
        start = self._precomputed.get(layer_key, 0)
        for i in range(start, start + n_pairs):
            r = self.enclave.rng.uniform(input_shape)
            u = linear_op(r)
            self.offline_macs += macs_per_op
            self.enclave.seal_and_evict(
                f"slalom/{layer_key}/r{i}", r, label=layer_key.encode()
            )
            self.enclave.seal_and_evict(
                f"slalom/{layer_key}/u{i}", u, label=layer_key.encode()
            )
        self._precomputed[layer_key] = start + n_pairs
        # Weight version is implicit in the op closure; remember it so a
        # retrained layer invalidates its pool.
        self._versions[layer_key] = weight_version

    def pairs_available(self, layer_key: str) -> int:
        """Unconsumed pairs for a layer."""
        return self._precomputed.get(layer_key, 0) - self._counters.get(layer_key, 0)

    def pool_version(self, layer_key: str) -> int | None:
        """Weight version the layer's pool was built for (None = no pool)."""
        return self._versions.get(layer_key)

    def invalidate(self, layer_key: str) -> None:
        """Discard a layer's pool (weights changed — all ``u`` are stale)."""
        for i in range(self._counters.get(layer_key, 0), self._precomputed.get(layer_key, 0)):
            self.enclave.drop_evicted(f"slalom/{layer_key}/r{i}")
            self.enclave.drop_evicted(f"slalom/{layer_key}/u{i}")
        self._counters[layer_key] = 0
        self._precomputed[layer_key] = 0
        self._versions.pop(layer_key, None)

    # ------------------------------------------------------------------
    # online phase
    # ------------------------------------------------------------------
    def next_pair(self, layer_key: str, weight_version: int = 0) -> BlindingPair:
        """Reload + unseal the next one-time pair (each is used exactly once)."""
        if self._versions.get(layer_key, 0) != weight_version:
            raise EncodingError(
                f"blinding pool for {layer_key!r} was precomputed for weight"
                f" version {self._versions.get(layer_key)} but weights are at"
                f" {weight_version}; Slalom cannot train (Section 7.2)"
            )
        index = self._counters.get(layer_key, 0)
        if index >= self._precomputed.get(layer_key, 0):
            raise EncodingError(
                f"blinding pool for {layer_key!r} exhausted; precompute more"
            )
        self._counters[layer_key] = index + 1
        r = self.enclave.reload_and_unseal(f"slalom/{layer_key}/r{index}")
        u = self.enclave.reload_and_unseal(f"slalom/{layer_key}/u{index}")
        return BlindingPair(r=r, u=u, weight_version=weight_version)

    def blind(self, x_q: np.ndarray, pair: BlindingPair) -> np.ndarray:
        """``x̄ = (x + r) mod p`` — information-theoretic one-time pad."""
        if x_q.shape != pair.r.shape:
            raise EncodingError(
                f"input shape {x_q.shape} != blinding shape {pair.r.shape}"
            )
        return self.field.add(x_q, pair.r)

    def unblind(self, y_blinded: np.ndarray, pair: BlindingPair) -> np.ndarray:
        """``y = (f(x̄) - u) mod p`` — exact by linearity."""
        if y_blinded.shape != pair.u.shape:
            raise EncodingError(
                f"GPU output shape {y_blinded.shape} != precomputed {pair.u.shape}"
            )
        return self.field.sub(y_blinded, pair.u)
