"""Pipelined vs. non-pipelined execution timelines (Fig. 5's two settings).

The paper's non-pipelined design serialises TEE encoding, transfers and GPU
compute; the pipelined design (Section 7.1) encodes virtual batch ``v+1``
and streams data "under the shadow of GPUs execution time".  In steady
state the three resources — TEE, link, GPUs — each process one virtual
batch per stage, so the per-sample wall time collapses to the slowest
stream plus a negligible pipeline fill.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.costs import PhaseBreakdown


@dataclass(frozen=True)
class TimelineSummary:
    """Per-sample wall times under both execution disciplines."""

    tee_stream: float
    gpu_stream: float
    link_stream: float
    non_pipelined: float
    pipelined: float

    @property
    def pipeline_gain(self) -> float:
        """Speedup of pipelining over the serialised schedule."""
        return self.non_pipelined / self.pipelined if self.pipelined > 0 else float("inf")


def build_timeline(breakdown: PhaseBreakdown) -> TimelineSummary:
    """Map a phase breakdown onto the three hardware streams.

    TEE stream = non-linear ops + encode/decode; GPU stream = offloaded
    linear ops; link stream = transfers.  Non-pipelined executes them
    back-to-back; pipelined overlaps them completely in steady state.
    """
    tee = breakdown.nonlinear + breakdown.encode_decode
    gpu = breakdown.linear
    link = breakdown.communication
    return TimelineSummary(
        tee_stream=tee,
        gpu_stream=gpu,
        link_stream=link,
        non_pipelined=tee + gpu + link,
        pipelined=max(tee, gpu, link),
    )


def pipelined_linear_time(breakdown: PhaseBreakdown) -> float:
    """The paper's "total linear operation time" under pipelining.

    Non-pipelined linear time includes communication (Section 7.1's
    definition); pipelining hides the transfers, leaving pure GPU compute.
    """
    return breakdown.linear


def non_pipelined_linear_time(breakdown: PhaseBreakdown) -> float:
    """Linear + communication, the paper's non-pipelined linear category."""
    return breakdown.linear + breakdown.communication
