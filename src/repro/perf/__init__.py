"""Performance model: device profiles, cost model, timelines, experiments."""

from repro.perf.calibration import (
    Table1Targets,
    calibrate_sgx_from_table1,
    verify_calibration,
)
from repro.perf.costs import EPC_KNEE_SAMPLES, CostModel, PhaseBreakdown
from repro.perf.devices import (
    DEFAULT_SYSTEM,
    KERNEL_EFFICIENCY,
    GpuProfile,
    LinkProfile,
    SgxProfile,
    SystemProfile,
    kernel_efficiency,
)
from repro.perf.experiments import (
    TABLE2_HEADERS,
    TRAINING_SPECS,
    fig3_series,
    fig4_series,
    fig5_series,
    fig6a_series,
    fig6b_series,
    fig7_series,
    headline_speedups,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
)
from repro.perf.simulator import (
    SimulationResult,
    Stage,
    darknight_stage_chain,
    simulate,
    simulate_darknight_training,
)
from repro.perf.timeline import (
    TimelineSummary,
    build_timeline,
    non_pipelined_linear_time,
    pipelined_linear_time,
)

__all__ = [
    "CostModel",
    "PhaseBreakdown",
    "Table1Targets",
    "calibrate_sgx_from_table1",
    "verify_calibration",
    "EPC_KNEE_SAMPLES",
    "SystemProfile",
    "SgxProfile",
    "GpuProfile",
    "LinkProfile",
    "DEFAULT_SYSTEM",
    "KERNEL_EFFICIENCY",
    "kernel_efficiency",
    "TimelineSummary",
    "build_timeline",
    "pipelined_linear_time",
    "non_pipelined_linear_time",
    "Stage",
    "SimulationResult",
    "simulate",
    "simulate_darknight_training",
    "darknight_stage_chain",
    "table1_rows",
    "table2_rows",
    "TABLE2_HEADERS",
    "table3_rows",
    "table4_rows",
    "fig3_series",
    "fig4_series",
    "fig5_series",
    "fig6a_series",
    "fig6b_series",
    "fig7_series",
    "headline_speedups",
    "TRAINING_SPECS",
]
