"""Analytical cost model: architecture specs + device profiles -> seconds.

All times are **per training sample** (or per inference sample) unless a
method says otherwise.  The model prices four phases, mirroring the paper's
Table 3 categories:

* ``linear``      — bilinear ops on the executing device;
* ``nonlinear``   — TEE-resident ops (ReLU/pool/BN/softmax);
* ``encode_decode`` — masking/unmasking traffic + field MACs in the TEE;
* ``communication`` — TEE<->GPU transfers over per-GPU dedicated links.

Execution-model assumptions (documented here once, used everywhere):

* Every GPU holds exactly one share, so a virtual batch of ``K`` samples is
  processed by ``S = K + M (+1)`` GPUs *in parallel* — per-sample GPU wall
  time is the single-share kernel time divided by ``K``.
* Encode/decode in the enclave is memory-traffic bound (the per-element
  coefficient MACs are register-resident): cost = max(traffic, field MACs).
  This is what makes per-sample masking cost *fall* as K grows (Fig. 6b)
  until the EPC knee.
* The enclave's virtual-batch working set is modelled as ``K/KNEE`` of the
  usable EPC with ``KNEE = 4.6``: the paper measures K=4 as the largest
  virtual batch that avoids SGX paging for all three models (Fig. 3/6b);
  beyond it the excess pages at the profile's paging bandwidth.
* Backward ``δ``-propagation (input gradients) runs unencoded on GPUs and
  its tensors travel in the backward communication budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models.specs import ModelSpec
from repro.perf.devices import DEFAULT_SYSTEM, SystemProfile, kernel_efficiency
from repro.runtime.config import DarKnightConfig

#: Virtual-batch EPC knee (samples) calibrated to the paper's K=4 optimum.
EPC_KNEE_SAMPLES = 4.6

#: Mild fixed per-virtual-batch TEE overhead factor: op time is scaled by
#: ``1 + BATCH_OVERHEAD / K`` (dispatch, boundary crossings), which gives
#: the small ReLU/MaxPool gains with larger K visible in Fig. 6b.
BATCH_OVERHEAD = 0.25

_BYTES_PER_ELEM = 4  # float32 activations and 25-bit field words alike


@dataclass(frozen=True)
class PhaseBreakdown:
    """Per-sample seconds by phase (the paper's Table 3 categories)."""

    linear: float
    nonlinear: float
    encode_decode: float = 0.0
    communication: float = 0.0

    @property
    def total(self) -> float:
        """Sum of all phases (non-pipelined execution)."""
        return self.linear + self.nonlinear + self.encode_decode + self.communication

    def fractions(self) -> dict[str, float]:
        """Phase fractions of the total (Table 3's reported numbers)."""
        t = self.total
        if t <= 0:
            raise ConfigurationError("cannot take fractions of a zero breakdown")
        return {
            "linear": self.linear / t,
            "nonlinear": self.nonlinear / t,
            "encode_decode": self.encode_decode / t,
            "communication": self.communication / t,
        }


class CostModel:
    """Prices workloads described by :class:`~repro.models.specs.ModelSpec`."""

    def __init__(self, system: SystemProfile | None = None) -> None:
        self.system = system or DEFAULT_SYSTEM

    # ------------------------------------------------------------------
    # element inventories
    # ------------------------------------------------------------------
    @staticmethod
    def _linear_in_out_elems(spec: ModelSpec) -> tuple[int, int]:
        """Input and output element totals across offloadable layers."""
        f_in = 0
        f_out = 0
        for layer in spec.layers:
            if not layer.is_linear:
                continue
            in_elems = 1
            for d in layer.in_shape:
                in_elems *= d
            f_in += in_elems
            f_out += layer.counts.activation_elems
        return f_in, f_out

    # ------------------------------------------------------------------
    # linear op times
    # ------------------------------------------------------------------
    def _linear_seconds(self, spec: ModelSpec, rate: float, backward: bool) -> float:
        total = 0.0
        for layer in spec.layers:
            if not layer.is_linear:
                continue
            eff = kernel_efficiency(
                layer.kind,
                layer.in_shape[0] if len(layer.in_shape) == 3 else layer.in_shape[0],
                layer.counts.macs_forward,
                layer.counts.activation_elems,
            )
            macs = (
                layer.counts.macs_grad_w + layer.counts.macs_grad_x
                if backward
                else layer.counts.macs_forward
            )
            total += macs / (rate * eff)
        return total

    def gpu_linear_time(self, spec: ModelSpec, backward: bool = False) -> float:
        """Single-GPU, single-sample linear time."""
        return self._linear_seconds(spec, self.system.gpu.linear_rate(backward), backward)

    def sgx_linear_time(self, spec: ModelSpec, backward: bool = False) -> float:
        """In-enclave single-sample linear time."""
        return self._linear_seconds(spec, self.system.sgx.linear_macs_per_s, backward)

    # ------------------------------------------------------------------
    # non-linear op times
    # ------------------------------------------------------------------
    def gpu_nonlinear_time(self, spec: ModelSpec) -> float:
        """Non-linear element ops on a GPU (non-private baseline only)."""
        ops = spec.elementwise_ops()
        return ops / self.system.gpu.elementwise_ops_per_s

    def sgx_nonlinear_time(
        self,
        spec: ModelSpec,
        resident: bool,
        backward: bool = False,
        virtual_batch: int | None = None,
    ) -> float:
        """TEE non-linear time; ``resident`` picks the paged/unpaged regime.

        Backward elementwise work is counted at forward op counts (gradient
        kernels touch the same tensors) with the resident-rate asymmetry
        Table 1 measures.
        """
        sgx = self.system.sgx
        relu_resident = resident or backward
        pool_resident = resident or backward
        relu = spec.elementwise_ops(frozenset({"relu"})) / sgx.relu_rate(relu_resident)
        pool = spec.elementwise_ops(frozenset({"maxpool"})) / sgx.pool_rate(pool_resident)
        bn = spec.elementwise_ops(frozenset({"batchnorm"})) / sgx.bn_rate(resident)
        other = (
            spec.elementwise_ops(frozenset({"avgpool", "global_avgpool", "add", "softmax"}))
            / sgx.other_ops_per_s
        )
        total = relu + pool + bn + other
        if virtual_batch is not None:
            total *= 1.0 + BATCH_OVERHEAD / max(1, virtual_batch)
        return total

    # ------------------------------------------------------------------
    # masking / communication
    # ------------------------------------------------------------------
    def masking_time(
        self, spec: ModelSpec, cfg: DarKnightConfig, training: bool = True
    ) -> float:
        """Per-sample encode + decode time in the TEE (max of traffic/MACs)."""
        sgx = self.system.sgx
        k = cfg.virtual_batch_size
        sources = k + cfg.collusion_tolerance
        shares = cfg.n_shares
        f_in, f_out = self._linear_in_out_elems(spec)
        # Forward: encode f_in into `shares` share tensors; decode f_out from
        # `sources` of them (field words stream as 4-byte int32 lanes).
        enc_traffic = shares * f_in * _BYTES_PER_ELEM / k / sgx.mask_bytes_per_s
        enc_macs = f_in * sources * shares / k / sgx.field_macs_per_s
        dec_traffic = sources * f_out * _BYTES_PER_ELEM / k / sgx.mask_bytes_per_s
        dec_macs = f_out * sources * sources / k / sgx.field_macs_per_s
        total = max(enc_traffic, enc_macs) + max(dec_traffic, dec_macs)
        if training:
            # Backward decode: Σ γ_j Eq_j streams `shares` parameter-shaped
            # equations in and one aggregate out.
            grad_elems = sum(l.counts.params for l in spec.layers if l.is_linear)
            bwd_traffic = (
                (shares + 1) * grad_elems * _BYTES_PER_ELEM / k / sgx.mask_bytes_per_s
            )
            bwd_macs = grad_elems * shares / k / sgx.field_macs_per_s
            total += max(bwd_traffic, bwd_macs)
        total += self.epc_overflow_penalty(spec, cfg.virtual_batch_size)
        return total

    def darknight_comm_time(
        self, spec: ModelSpec, cfg: DarKnightConfig, training: bool = True
    ) -> float:
        """Per-sample TEE<->GPU transfer wall time over dedicated links.

        Each link carries: one input share out + one output share back per
        virtual batch (forward); the K quantized gradients out + one
        parameter-shaped ``Eq_j`` back (backward).
        """
        link = self.system.link
        k = cfg.virtual_batch_size
        f_in, f_out = self._linear_in_out_elems(spec)
        fwd_bytes_per_link = (f_in + f_out) * link.bytes_per_element
        total = fwd_bytes_per_link / k / link.bytes_per_s
        if training:
            grad_elems = sum(l.counts.params for l in spec.layers if l.is_linear)
            bwd_bytes_per_link = (
                k * f_out * link.bytes_per_element  # quantized deltas broadcast
                + grad_elems * link.bytes_per_element  # Eq_j result back
            )
            total += bwd_bytes_per_link / k / link.bytes_per_s
        if cfg.integrity and training:
            # The redundant-B verification repeats the Eq exchange once.
            grad_elems = sum(l.counts.params for l in spec.layers if l.is_linear)
            total += grad_elems * link.bytes_per_element / k / link.bytes_per_s
        return total

    def epc_overflow_penalty(self, spec: ModelSpec, virtual_batch: int) -> float:
        """Paging seconds per sample once the virtual batch exceeds the knee."""
        sgx = self.system.sgx
        occupancy = virtual_batch / EPC_KNEE_SAMPLES * sgx.epc_usable_bytes
        excess = occupancy - sgx.epc_usable_bytes
        if excess <= 0:
            return 0.0
        # The excess round-trips through encrypted DRAM once per pass.
        return 2.0 * excess / sgx.paging_bytes_per_s / virtual_batch

    # ------------------------------------------------------------------
    # composite systems — training
    # ------------------------------------------------------------------
    def darknight_training(self, spec: ModelSpec, cfg: DarKnightConfig) -> PhaseBreakdown:
        """Per-sample DarKnight training breakdown (Table 3 / Fig. 5)."""
        k = cfg.virtual_batch_size
        # Forward + Eq_j: every GPU runs one sample-shaped kernel per virtual
        # batch in parallel -> per-sample wall time is single-share time / K.
        fwd = self.gpu_linear_time(spec, backward=False) / k
        # Eq_j is grad_w-shaped work; δ-propagation is grad_x-shaped and runs
        # batch-parallel across the S GPUs.
        grad_w = self._linear_seconds(
            spec, self.system.gpu.linear_rate(backward=True), backward=False
        ) / k
        grad_x = self._linear_seconds(
            spec, self.system.gpu.linear_rate(backward=True), backward=False
        ) / cfg.n_shares
        linear = fwd + grad_w + grad_x
        if cfg.integrity:
            linear += grad_w  # redundant Eq pass
        nonlinear = self.sgx_nonlinear_time(
            spec, resident=True, backward=False, virtual_batch=k
        ) + self.sgx_nonlinear_time(spec, resident=True, backward=True, virtual_batch=k)
        nonlinear += self._activation_eviction_time(spec, k)
        encode_decode = self.masking_time(spec, cfg, training=True)
        communication = self.darknight_comm_time(spec, cfg, training=True)
        return PhaseBreakdown(
            linear=linear,
            nonlinear=nonlinear,
            encode_decode=encode_decode,
            communication=communication,
        )

    def _activation_eviction_time(self, spec: ModelSpec, virtual_batch: int) -> float:
        """Per-sample seal/reload traffic for retained pre-activations.

        Training needs every layer's pre-activation inside the TEE for the
        non-linear backward (ReLU masks, pool argmax); at ImageNet scale the
        retained set exceeds the EPC and must round-trip encrypted.  The
        0.35 factor models the fraction still live at eviction time (the
        rest is consumed in place) and is part of the Table-3 calibration.
        """
        sgx = self.system.sgx
        retained = 2.0 * virtual_batch * spec.activation_bytes()
        excess = max(0.0, retained - sgx.epc_usable_bytes)
        return 0.35 * excess / virtual_batch / sgx.aead_bytes_per_s

    def sgx_baseline_training(self, spec: ModelSpec) -> PhaseBreakdown:
        """Everything in the enclave (the paper's baseline)."""
        linear = self.sgx_linear_time(spec, backward=False) + self.sgx_linear_time(
            spec, backward=True
        )
        nonlinear = self.sgx_nonlinear_time(spec, resident=False) + self.sgx_nonlinear_time(
            spec, resident=False, backward=True
        )
        return PhaseBreakdown(linear=linear, nonlinear=nonlinear)

    def gpu_only_training(
        self, spec: ModelSpec, n_gpus: int = 3, batch_size: int = 128
    ) -> float:
        """Per-sample non-private data-parallel training time (Table 4)."""
        if n_gpus < 1:
            raise ConfigurationError(f"need >= 1 GPU, got {n_gpus}")
        compute = (
            self.gpu_linear_time(spec, backward=False)
            + self.gpu_linear_time(spec, backward=True)
            + self.gpu_nonlinear_time(spec) * 2
        ) / n_gpus
        # Ring all-reduce of gradients once per batch, amortised per sample.
        allreduce = (
            2.0 * spec.param_bytes * (n_gpus - 1) / n_gpus / self.system.link.bytes_per_s
        ) / batch_size
        return compute + allreduce

    # ------------------------------------------------------------------
    # composite systems — inference
    # ------------------------------------------------------------------
    def sgx_baseline_inference(self, spec: ModelSpec) -> PhaseBreakdown:
        """Forward-only, fully inside the enclave."""
        return PhaseBreakdown(
            linear=self.sgx_linear_time(spec, backward=False),
            nonlinear=self.sgx_nonlinear_time(spec, resident=False),
        )

    def darknight_inference(self, spec: ModelSpec, cfg: DarKnightConfig) -> PhaseBreakdown:
        """Per-sample DarKnight inference breakdown (Fig. 6a/6b)."""
        k = cfg.virtual_batch_size
        linear = self.gpu_linear_time(spec, backward=False) / k
        nonlinear = self.sgx_nonlinear_time(
            spec, resident=True, backward=False, virtual_batch=k
        )
        encode_decode = self.masking_time(spec, cfg, training=False)
        if cfg.integrity:
            # Integrity decodes from a second share subset: one extra decode.
            sources = k + cfg.collusion_tolerance
            _, f_out = self._linear_in_out_elems(spec)
            extra = max(
                sources * f_out * 8 / k / self.system.sgx.mask_bytes_per_s,
                f_out * sources * sources / k / self.system.sgx.field_macs_per_s,
            )
            encode_decode += extra
        communication = self.darknight_comm_time(spec, cfg, training=False)
        return PhaseBreakdown(
            linear=linear,
            nonlinear=nonlinear,
            encode_decode=encode_decode,
            communication=communication,
        )

    def slalom_inference(self, spec: ModelSpec, integrity: bool = False) -> PhaseBreakdown:
        """Per-sample Slalom inference breakdown (Fig. 6a comparator).

        One GPU, per-sample blinding, and — the structural difference to
        DarKnight — every layer reloads and decrypts its precomputed
        unblinding factors from untrusted memory.
        """
        sgx = self.system.sgx
        link = self.system.link
        f_in, f_out = self._linear_in_out_elems(spec)
        linear = self.gpu_linear_time(spec, backward=False)
        nonlinear = self.sgx_nonlinear_time(spec, resident=True, virtual_batch=1)
        # Blind (add r) + unblind (subtract u): traffic bound.
        blind = (f_in + f_out) * 8 / sgx.mask_bytes_per_s
        # Reload + AEAD-decrypt the u = W·r factors (per sample, per layer).
        reload = f_out * _BYTES_PER_ELEM / sgx.aead_bytes_per_s
        encode_decode = blind + reload
        if integrity:
            # Freivalds on Y = W_flat (F x D) @ cols (D x P): cost is
            # F·D + F·P + D·P instead of the F·D·P recompute.  From spec
            # counts: F = out channels, P = act/F, D = macs/act.
            freivalds_macs = 0
            for layer in spec.layers:
                if not layer.is_linear:
                    continue
                act = max(1, layer.counts.activation_elems)
                f = max(1, layer.out_shape[0])
                p = max(1, act // f)
                d = max(1, layer.counts.macs_forward // act)
                freivalds_macs += f * d + f * p + d * p
            encode_decode += freivalds_macs / sgx.field_macs_per_s
        communication = (f_in + f_out) * link.bytes_per_element / link.bytes_per_s
        return PhaseBreakdown(
            linear=linear,
            nonlinear=nonlinear,
            encode_decode=encode_decode,
            communication=communication,
        )

    # ------------------------------------------------------------------
    # Fig. 3 — aggregation, Fig. 7 — multithreading
    # ------------------------------------------------------------------
    def aggregation_time(
        self, spec: ModelSpec, virtual_batch: int, batch_size: int = 128, n_shards: int = 8
    ) -> float:
        """Seconds to aggregate one large batch's weight update (Algorithm 2).

        Per virtual batch: seal + evict ``▽W_v``; at batch end: reload,
        decrypt, and sum all of them shard-wise.  Larger K means fewer
        crypto round trips but a bigger encoding working set — past the EPC
        knee the paging penalty claws the gains back (Fig. 3's K=5 dip).
        """
        if virtual_batch < 1 or batch_size < virtual_batch:
            raise ConfigurationError(
                f"invalid sizes: K={virtual_batch}, batch={batch_size}"
            )
        sgx = self.system.sgx
        n_vb = -(-batch_size // virtual_batch)
        grad_bytes = spec.param_bytes
        seal_time = grad_bytes / sgx.aead_bytes_per_s  # seal+evict per vb
        reload_time = grad_bytes / sgx.aead_bytes_per_s  # reload+unseal per vb
        sum_time = grad_bytes / sgx.mask_bytes_per_s
        per_vb = seal_time + reload_time + sum_time
        # Per-sample TEE encode work that does NOT shrink with K (the fixed
        # part that caps Fig. 3 speedups below ideal K-for-free scaling).
        per_sample_fixed = self.masking_time(
            spec, DarKnightConfig(virtual_batch_size=virtual_batch), training=True
        ) * virtual_batch / 3.0
        # Past the EPC knee the encode buffers + resident ▽W_v shard page:
        # the traffic scales with the model's update footprint.
        over = max(0.0, virtual_batch / EPC_KNEE_SAMPLES - 1.0)
        paging_per_vb = (
            over * 1.5 * (grad_bytes + sgx.epc_usable_bytes) * 2.0 / sgx.paging_bytes_per_s
        )
        del n_shards  # sharding pipelines transfers; totals unchanged
        return n_vb * (per_vb + per_sample_fixed + paging_per_vb)

    def multithread_latency(self, spec: ModelSpec, threads: int) -> float:
        """Relative per-batch latency of ``threads`` concurrent SGX trainers.

        Each thread's working set (weights + a batch of activations) already
        exceeds the EPC for large models; concurrent threads multiply the
        paging traffic through the shared memory-encryption engine, so
        latency *rises* with threads (Fig. 7's inversion).
        """
        if threads < 1:
            raise ConfigurationError(f"threads must be >= 1, got {threads}")
        sgx = self.system.sgx
        compute = self.sgx_baseline_training(spec).total
        working_set = spec.param_bytes + spec.activation_bytes() * 2
        total_ws = threads * working_set
        excess = max(0.0, total_ws - sgx.epc_usable_bytes)
        # Every thread's critical path sees the full contended paging stream.
        paging = threads * excess / sgx.paging_bytes_per_s
        return compute + paging
