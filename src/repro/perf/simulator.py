"""Event-driven execution simulator for the DarKnight schedule.

The analytical timeline (:mod:`repro.perf.timeline`) collapses pipelining to
``max(stream)``; this module *earns* that number by actually scheduling the
per-virtual-batch stage chain

    encode (TEE) -> scatter (link) -> compute (GPU) -> gather (link)
    -> decode+nonlinear (TEE)

onto three exclusive resources and measuring the makespan.  Virtual batches
are independent, so under the pipelined discipline stage ``s`` of batch
``v+1`` may start as soon as its resource is free and its predecessor stage
finished — the classic k-stage pipeline whose steady-state throughput is
set by the slowest stage, with a fill/drain transient the analytical model
ignores.  The simulator exposes both disciplines so tests can verify:

* non-pipelined makespan == sum of all stage durations;
* pipelined makespan -> max-stream x n_batches + fill, i.e. the analytical
  prediction is the correct asymptote.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field as dataclass_field

from repro.errors import ConfigurationError

#: The resources a DarKnight stage can occupy.
RESOURCES = ("tee", "link", "gpu")


@dataclass(frozen=True)
class Stage:
    """One unit of work bound to a resource."""

    name: str
    resource: str
    duration: float

    def __post_init__(self) -> None:
        if self.resource not in RESOURCES:
            raise ConfigurationError(
                f"unknown resource {self.resource!r}; expected one of {RESOURCES}"
            )
        if self.duration < 0:
            raise ConfigurationError(f"stage {self.name!r} has negative duration")


@dataclass(frozen=True)
class ScheduledStage:
    """A stage placed on the timeline."""

    batch: int
    stage: Stage
    start: float
    end: float


@dataclass
class SimulationResult:
    """Outcome of one simulated schedule."""

    makespan: float
    events: list = dataclass_field(default_factory=list)

    def resource_busy_time(self, resource: str) -> float:
        """Total busy time of one resource."""
        return sum(e.end - e.start for e in self.events if e.stage.resource == resource)

    def utilisation(self, resource: str) -> float:
        """Busy fraction of the makespan for one resource."""
        if self.makespan <= 0:
            return 0.0
        return self.resource_busy_time(resource) / self.makespan


def darknight_stage_chain(
    encode: float, scatter: float, compute: float, gather: float, decode_nonlinear: float
) -> list[Stage]:
    """The per-virtual-batch stage chain of Section 3.1."""
    return [
        Stage("encode", "tee", encode),
        Stage("scatter", "link", scatter),
        Stage("compute", "gpu", compute),
        Stage("gather", "link", gather),
        Stage("decode+nonlinear", "tee", decode_nonlinear),
    ]


def simulate(
    chain: list[Stage], n_batches: int, pipelined: bool
) -> SimulationResult:
    """Schedule ``n_batches`` copies of ``chain`` onto the three resources.

    Non-pipelined: batches execute strictly one after another (the paper's
    serialized design).  Pipelined: list scheduling — each stage starts at
    ``max(resource free, predecessor done)``, processed in dependency order
    via an event heap, which yields the canonical pipeline overlap.
    """
    if not chain:
        raise ConfigurationError("stage chain is empty")
    if n_batches < 1:
        raise ConfigurationError(f"need >= 1 batch, got {n_batches}")

    events: list[ScheduledStage] = []
    if not pipelined:
        clock = 0.0
        for batch in range(n_batches):
            for stage in chain:
                events.append(
                    ScheduledStage(batch, stage, clock, clock + stage.duration)
                )
                clock += stage.duration
        return SimulationResult(makespan=clock, events=events)

    resource_free = {r: 0.0 for r in RESOURCES}
    # (ready_time, batch, stage_index) — heap pops the earliest ready work;
    # ties resolve by batch so earlier batches keep priority.
    heap: list[tuple[float, int, int]] = [(0.0, b, 0) for b in range(n_batches)]
    heapq.heapify(heap)
    makespan = 0.0
    while heap:
        ready, batch, index = heapq.heappop(heap)
        stage = chain[index]
        start = max(ready, resource_free[stage.resource])
        end = start + stage.duration
        resource_free[stage.resource] = end
        events.append(ScheduledStage(batch, stage, start, end))
        makespan = max(makespan, end)
        if index + 1 < len(chain):
            heapq.heappush(heap, (end, batch, index + 1))
    return SimulationResult(makespan=makespan, events=events)


def simulate_darknight_training(
    breakdown, n_batches: int = 16, pipelined: bool = True
) -> SimulationResult:
    """Simulate a :class:`~repro.perf.costs.PhaseBreakdown` as a pipeline.

    The breakdown's per-sample phase times are mapped onto the stage chain:
    TEE work splits into encode (the encode/decode phase) and
    decode+non-linear; link time splits evenly between scatter and gather.
    """
    chain = darknight_stage_chain(
        encode=breakdown.encode_decode / 2,
        scatter=breakdown.communication / 2,
        compute=breakdown.linear,
        gather=breakdown.communication / 2,
        decode_nonlinear=breakdown.encode_decode / 2 + breakdown.nonlinear,
    )
    return simulate(chain, n_batches, pipelined)
