"""Device performance profiles for the analytical cost model.

Calibration policy (DESIGN.md §5): the SGX and GPU constants below are set
*once* so that Table 1's measured GPU-vs-SGX ratios on VGG16 emerge, then
every other table and figure is predicted from the same constants.  They are
effective throughputs, not datasheet peaks — e.g. the SGX forward-ReLU rate
folds in the encrypted paging of large feature maps that the paper blames
for its 119x gap, while the "enclave-resident" rates describe DarKnight-mode
execution whose working set fits the EPC.

Per-kernel efficiency factors capture that depthwise and 1x1 convolutions
are memory-bound on both devices (the reason MobileNet is the paper's
worst case).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.enclave.epc import EPC_USABLE_BYTES
from repro.errors import ConfigurationError

#: Arithmetic-intensity efficiency by linear-layer flavour (both devices).
KERNEL_EFFICIENCY = {
    "conv": 1.0,  # dense 3x3+ convolutions: compute bound
    "conv1x1": 0.35,  # pointwise convs: memory bound
    "depthwise_conv": 0.08,  # depthwise: severely memory bound
    "dense": 0.7,  # big GEMMs, slightly under conv efficiency
}


@dataclass(frozen=True)
class GpuProfile:
    """Effective throughput of one accelerator (GTX 1080 Ti class)."""

    name: str = "gtx1080ti"
    #: Forward linear MACs/s (calibrated: Table 1 forward linear = 126.9x).
    linear_macs_per_s_forward: float = 5.71e12
    #: Backward linear MACs/s (calibrated: Table 1 backward linear = 149.1x).
    linear_macs_per_s_backward: float = 6.71e12
    #: Element-ops/s for relu/pool/bn (bandwidth bound).
    elementwise_ops_per_s: float = 2.0e10

    def linear_rate(self, backward: bool = False) -> float:
        """MACs/s for the requested direction."""
        return (
            self.linear_macs_per_s_backward if backward else self.linear_macs_per_s_forward
        )


@dataclass(frozen=True)
class SgxProfile:
    """Effective throughput of the SGX CPU (Coffee Lake E-2174G class).

    Two regimes per non-linear op: ``paged`` rates describe the baseline
    that streams oversized feature maps through encrypted paging (Table 1's
    measurement); ``resident`` rates describe DarKnight-mode TEE work whose
    virtual-batch working set fits the EPC.
    """

    name: str = "sgx-coffeelake"
    #: Linear MACs/s inside the enclave (calibrated: 126.9x/149.1x vs GPU).
    linear_macs_per_s: float = 4.5e10
    #: ReLU element-ops/s, paged (Table 1 forward: 119.6x slower than GPU).
    relu_ops_per_s_paged: float = 1.672e8
    #: ReLU element-ops/s, enclave-resident (backward / DarKnight mode).
    relu_ops_per_s_resident: float = 3.035e9
    #: MaxPool ops/s, paged (Table 1 forward: 11.86x).
    pool_ops_per_s_paged: float = 1.686e9
    #: MaxPool ops/s, resident (Table 1 backward: 5.47x).
    pool_ops_per_s_resident: float = 3.656e9
    #: BatchNorm ops/s, paged (baseline) — calibrated to Table 3 fractions.
    bn_ops_per_s_paged: float = 1.0e9
    #: BatchNorm ops/s, resident (DarKnight mode).
    bn_ops_per_s_resident: float = 1.6e9
    #: Other elementwise (softmax/add/avgpool) ops/s.
    other_ops_per_s: float = 2.0e9
    #: Field MACs/s for encode/decode (int64 mul+add+mod, AVX-512 lanes);
    #: high enough that masking stays traffic-bound for small K — the
    #: regime behind Fig. 6b's rising blinding/unblinding speedups.
    field_macs_per_s: float = 6.0e10
    #: Enclave memory bandwidth for streaming masked shares (encode/decode
    #: is traffic-bound: coefficients are tiny, share tensors are not; the
    #: working set is EPC-resident so this runs at near-DRAM speed).
    mask_bytes_per_s: float = 4.0e10
    #: AEAD throughput for sealing/eviction (AES-NI class).
    aead_bytes_per_s: float = 3.0e9
    #: Encrypted paging bandwidth once the EPC overflows.
    paging_bytes_per_s: float = 1.45e9
    #: Usable protected memory.
    epc_usable_bytes: int = EPC_USABLE_BYTES

    def relu_rate(self, resident: bool) -> float:
        """ReLU throughput for the given residency regime."""
        return self.relu_ops_per_s_resident if resident else self.relu_ops_per_s_paged

    def pool_rate(self, resident: bool) -> float:
        """Pooling throughput for the given residency regime."""
        return self.pool_ops_per_s_resident if resident else self.pool_ops_per_s_paged

    def bn_rate(self, resident: bool) -> float:
        """BatchNorm throughput for the given residency regime."""
        return self.bn_ops_per_s_resident if resident else self.bn_ops_per_s_paged


@dataclass(frozen=True)
class LinkProfile:
    """Per-GPU dedicated interconnect (40 Gbps Infiniband, Section 7)."""

    name: str = "infiniband-40g"
    bytes_per_s: float = 5.0e9
    latency_s: float = 2e-6
    #: Wire bytes per field element (25-bit values ride in 4-byte words).
    bytes_per_element: int = 4

    def time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` over one link."""
        if nbytes < 0:
            raise ConfigurationError(f"cannot transfer {nbytes} bytes")
        return self.latency_s + nbytes / self.bytes_per_s


@dataclass(frozen=True)
class SystemProfile:
    """The full testbed: one SGX host, K' GPUs, dedicated links."""

    sgx: SgxProfile = dataclass_field(default_factory=SgxProfile)
    gpu: GpuProfile = dataclass_field(default_factory=GpuProfile)
    link: LinkProfile = dataclass_field(default_factory=LinkProfile)


DEFAULT_SYSTEM = SystemProfile()


def kernel_efficiency(kind: str, in_channels: int, macs: int, out_elems: int) -> float:
    """Efficiency factor for a linear layer, inferring 1x1 convs from counts.

    A conv layer whose MACs equal ``out_elems * in_channels`` has a 1x1
    kernel (pointwise), which both devices execute memory-bound.
    """
    if kind == "conv" and out_elems > 0 and macs == out_elems * in_channels:
        return KERNEL_EFFICIENCY["conv1x1"]
    return KERNEL_EFFICIENCY.get(kind, 1.0)
