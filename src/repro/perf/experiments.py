"""One harness per paper table/figure: workload, sweep, baseline, rows.

Each ``table*_rows`` / ``fig*_series`` function regenerates the content of
the corresponding exhibit in the paper's evaluation section, returning
structured data; benchmarks render them with :mod:`repro.reporting` and
EXPERIMENTS.md records paper-vs-measured.  Timing exhibits come from the
calibrated :class:`~repro.perf.costs.CostModel`; the accuracy figure
(Fig. 4) actually trains Mini models through the real masked runtime.
"""

from __future__ import annotations

import numpy as np

from repro.data import cifar_like
from repro.models import (
    build_mini_mobilenet,
    build_mini_resnet,
    build_mini_vgg,
    mobilenet_v1_spec,
    mobilenet_v2_spec,
    resnet50_spec,
    vgg16_spec,
)
from repro.nn import PlainBackend
from repro.perf.costs import CostModel
from repro.perf.devices import SystemProfile
from repro.perf.timeline import build_timeline
from repro.runtime import DarKnightConfig, Trainer
from repro.runtime.darknight import DarKnightBackend

#: The three training models of Tables 3-4 / Figs 3-5.
TRAINING_SPECS = {
    "VGG16": vgg16_spec,
    "ResNet50": resnet50_spec,
    "MobileNetV2": mobilenet_v2_spec,
}


def _model(system: SystemProfile | None) -> CostModel:
    return CostModel(system)


# ----------------------------------------------------------------------
# Table 1 — GPU vs SGX speedup per operation class (VGG16, ImageNet)
# ----------------------------------------------------------------------
def table1_rows(system: SystemProfile | None = None) -> list[dict]:
    """Rows: operation class x {forward, backward} GPU-over-SGX speedup."""
    cm = _model(system)
    spec = vgg16_spec()
    sgx, gpu = cm.system.sgx, cm.system.gpu
    rows = []
    for direction, backward in (("Forward Pass", False), ("Backward Propagation", True)):
        lin = cm.sgx_linear_time(spec, backward) / cm.gpu_linear_time(spec, backward)
        relu_ops = spec.elementwise_ops(frozenset({"relu"}))
        pool_ops = spec.elementwise_ops(frozenset({"maxpool"}))
        relu = (relu_ops / sgx.relu_rate(backward)) / (relu_ops / gpu.elementwise_ops_per_s)
        pool = (pool_ops / sgx.pool_rate(backward)) / (pool_ops / gpu.elementwise_ops_per_s)
        sgx_total = (
            cm.sgx_linear_time(spec, backward)
            + relu_ops / sgx.relu_rate(backward)
            + pool_ops / sgx.pool_rate(backward)
        )
        gpu_total = (
            cm.gpu_linear_time(spec, backward)
            + (relu_ops + pool_ops) / gpu.elementwise_ops_per_s
        )
        rows.append(
            {
                "operation": direction,
                "linear": lin,
                "maxpool": pool,
                "relu": relu,
                "total": sgx_total / gpu_total,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 2 — qualitative comparison of prior techniques
# ----------------------------------------------------------------------
#: (method, training, inference, DP, MPC, HE, TEE, data-privacy,
#:  model-privacy-client, model-privacy-server, integrity, gpu-accel, large-DNNs)
TABLE2_FEATURES = [
    ("SecureNN", 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 1, 0),
    ("Chiron", 1, 1, 0, 0, 0, 1, 1, 1, 1, 1, 0, 0),
    ("MSP", 1, 1, 0, 0, 0, 1, 1, 1, 1, 1, 0, 0),
    ("Gazelle", 0, 1, 0, 0, 1, 0, 1, 0, 0, 0, 1, 1),
    ("MiniONN", 0, 1, 0, 1, 1, 0, 1, 1, 0, 0, 1, 1),
    ("CryptoNets", 0, 1, 0, 1, 1, 0, 1, 1, 0, 0, 1, 1),
    ("Slalom", 0, 1, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1),
    ("Origami", 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1, 1),
    ("Occlumency", 0, 1, 0, 0, 0, 1, 1, 1, 1, 1, 0, 1),
    ("Delphi", 0, 1, 0, 1, 1, 0, 1, 1, 0, 0, 1, 1),
    ("DarKnight", 1, 1, 0, 1, 0, 1, 1, 1, 0, 1, 1, 1),
]

TABLE2_HEADERS = [
    "Method", "Training", "Inference", "DP", "MPC", "HE", "TEE",
    "Data Privacy", "Model Priv (Client)", "Model Priv (Server)",
    "Integrity", "GPU Accel", "Large DNNs",
]


def table2_rows() -> list[list[str]]:
    """The paper's feature matrix with •/◦ markers."""
    return [
        [row[0]] + ["•" if flag else "◦" for flag in row[1:]] for row in TABLE2_FEATURES
    ]


# ----------------------------------------------------------------------
# Table 3 — training time breakdown
# ----------------------------------------------------------------------
def table3_rows(
    system: SystemProfile | None = None, virtual_batch: int = 2
) -> list[dict]:
    """Fractions of training time per phase, DarKnight vs SGX baseline."""
    cm = _model(system)
    cfg = DarKnightConfig(virtual_batch_size=virtual_batch)
    rows = []
    for name, spec_fn in TRAINING_SPECS.items():
        spec = spec_fn()
        dk = cm.darknight_training(spec, cfg).fractions()
        bl = cm.sgx_baseline_training(spec).fractions()
        rows.append(
            {
                "model": name,
                "darknight": dk,
                "baseline": bl,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 4 — non-private GPU training speedups
# ----------------------------------------------------------------------
def table4_rows(
    system: SystemProfile | None = None, n_gpus: int = 3, virtual_batch: int = 2
) -> list[dict]:
    """Non-private 3-GPU speedup over DarKnight and over SGX-only."""
    cm = _model(system)
    cfg = DarKnightConfig(virtual_batch_size=virtual_batch)
    rows = []
    for name, spec_fn in TRAINING_SPECS.items():
        spec = spec_fn()
        dk = cm.darknight_training(spec, cfg).total
        bl = cm.sgx_baseline_training(spec).total
        gp = cm.gpu_only_training(spec, n_gpus)
        rows.append(
            {
                "model": name,
                "speedup_over_darknight": dk / gp,
                "speedup_over_sgx": bl / gp,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 3 — virtual batch size vs aggregation speedup
# ----------------------------------------------------------------------
def fig3_series(
    system: SystemProfile | None = None,
    batch_size: int = 128,
    virtual_batches: tuple[int, ...] = (2, 3, 4, 5),
) -> dict[str, dict[int, float]]:
    """Aggregation (decoding) speedup relative to K=1, per model."""
    cm = _model(system)
    series: dict[str, dict[int, float]] = {}
    for name, spec_fn in TRAINING_SPECS.items():
        spec = spec_fn()
        base = cm.aggregation_time(spec, 1, batch_size)
        series[name] = {
            k: base / cm.aggregation_time(spec, k, batch_size) for k in virtual_batches
        }
    return series


# ----------------------------------------------------------------------
# Fig. 4 — training accuracy, raw vs DarKnight (real masked training)
# ----------------------------------------------------------------------
MINI_BUILDERS = {
    "MiniVGG": build_mini_vgg,
    "MiniResNet": build_mini_resnet,
    "MiniMobileNet": build_mini_mobilenet,
}


def fig4_series(
    models: tuple[str, ...] = ("MiniVGG", "MiniResNet", "MiniMobileNet"),
    epochs: int = 3,
    n_train: int = 96,
    n_test: int = 48,
    batch_size: int = 16,
    virtual_batch: int = 2,
    image_size: int = 8,
    width: int = 8,
    seed: int = 0,
) -> dict[str, dict[str, list[float]]]:
    """Train each Mini model twice — plain float vs masked DarKnight —
    on identical synthetic CIFAR-like data and return accuracy curves.

    This is the one experiment that runs the *functional* masked pipeline
    rather than the cost model, reproducing Fig. 4's claim that encoding +
    quantization cost ~no accuracy (the curves should track each other).
    """
    data = cifar_like(n_train, n_test, seed=seed, size=image_size)
    results: dict[str, dict[str, list[float]]] = {}
    for model_name in models:
        builder = MINI_BUILDERS[model_name]
        curves: dict[str, list[float]] = {}
        for mode in ("raw", "darknight"):
            rng = np.random.default_rng(seed)  # identical init both runs
            net = builder(
                input_shape=data.input_shape, n_classes=data.n_classes,
                rng=rng, width=width,
            )
            if mode == "raw":
                backend = PlainBackend()
            else:
                backend = DarKnightBackend(
                    DarKnightConfig(virtual_batch_size=virtual_batch, seed=seed)
                )
            trainer = Trainer(net, backend, lr=0.08, momentum=0.9)
            history = trainer.fit(
                data.x_train,
                data.y_train,
                epochs=epochs,
                batch_size=batch_size,
                val_x=data.x_test,
                val_y=data.y_test,
                shuffle_seed=seed,
            )
            curves[mode] = history.val_accuracy
        results[model_name] = curves
    return results


# ----------------------------------------------------------------------
# Fig. 5 — training speedup, non-pipelined and pipelined
# ----------------------------------------------------------------------
def fig5_series(
    system: SystemProfile | None = None, virtual_batch: int = 2
) -> dict[str, dict[str, float]]:
    """Overall and linear-op speedups for both execution disciplines."""
    cm = _model(system)
    cfg = DarKnightConfig(virtual_batch_size=virtual_batch)
    series: dict[str, dict[str, float]] = {}
    for name, spec_fn in TRAINING_SPECS.items():
        spec = spec_fn()
        dk = cm.darknight_training(spec, cfg)
        bl = cm.sgx_baseline_training(spec)
        timeline = build_timeline(dk)
        sgx_linear = cm.sgx_linear_time(spec) + cm.sgx_linear_time(spec, backward=True)
        series[name] = {
            "non_pipelined": bl.total / timeline.non_pipelined,
            "pipelined": bl.total / timeline.pipelined,
            "linear_speedup_non_pipelined": sgx_linear
            / (dk.linear + dk.communication),
            "linear_speedup_pipelined": sgx_linear / dk.linear,
        }
    return series


# ----------------------------------------------------------------------
# Fig. 6(a) — inference speedup comparison (VGG16, MobileNetV1)
# ----------------------------------------------------------------------
def fig6a_series(system: SystemProfile | None = None) -> dict[str, dict[str, float]]:
    """Speedup over the SGX-only baseline for five configurations."""
    cm = _model(system)
    series: dict[str, dict[str, float]] = {}
    for name, spec_fn in (("VGG16", vgg16_spec), ("MobileNetV1", mobilenet_v1_spec)):
        spec = spec_fn()
        base = cm.sgx_baseline_inference(spec).total
        series[name] = {
            "SGX": 1.0,
            "Slalom": base / cm.slalom_inference(spec).total,
            "DarKnight(4)": base
            / cm.darknight_inference(spec, DarKnightConfig(virtual_batch_size=4)).total,
            "Slalom+Integrity": base / cm.slalom_inference(spec, integrity=True).total,
            "DarKnight(3)+Integrity": base
            / cm.darknight_inference(
                spec, DarKnightConfig(virtual_batch_size=3, integrity=True)
            ).total,
        }
    return series


# ----------------------------------------------------------------------
# Fig. 6(b) — per-operation inference speedup vs virtual batch size
# ----------------------------------------------------------------------
def fig6b_series(
    system: SystemProfile | None = None,
    virtual_batches: tuple[int, ...] = (1, 2, 4, 6),
) -> dict[str, dict[int, float]]:
    """Unblinding/blinding/relu/maxpool/total speedup vs DarKnight(1), VGG16."""
    cm = _model(system)
    spec = vgg16_spec()
    sgx = cm.system.sgx

    def components(k: int) -> dict[str, float]:
        cfg = DarKnightConfig(virtual_batch_size=k)
        sources = k + cfg.collusion_tolerance
        shares = cfg.n_shares
        f_in, f_out = cm._linear_in_out_elems(spec)
        encode = max(
            shares * f_in * 4 / k / sgx.mask_bytes_per_s,
            f_in * sources * shares / k / sgx.field_macs_per_s,
        )
        decode = max(
            sources * f_out * 4 / k / sgx.mask_bytes_per_s,
            f_out * sources * sources / k / sgx.field_macs_per_s,
        )
        overflow = cm.epc_overflow_penalty(spec, k)
        relu = spec.elementwise_ops(frozenset({"relu"})) / sgx.relu_rate(True)
        pool = spec.elementwise_ops(frozenset({"maxpool"})) / sgx.pool_rate(True)
        batch_factor = 1.0 + 0.25 / max(1, k)
        return {
            "Blinding": encode + overflow / 2,
            "Unblinding": decode + overflow / 2,
            "Relu": relu * batch_factor,
            "Maxpooling": pool * batch_factor,
            "Total": cm.darknight_inference(spec, cfg).total,
        }

    base = components(1)
    series: dict[str, dict[int, float]] = {op: {} for op in base}
    for k in virtual_batches:
        comp = components(k)
        for op in base:
            series[op][k] = base[op] / comp[op]
    return series


# ----------------------------------------------------------------------
# Fig. 7 — SGX multithreading latency
# ----------------------------------------------------------------------
def fig7_series(
    system: SystemProfile | None = None, threads: tuple[int, ...] = (1, 2, 3, 4)
) -> dict[int, float]:
    """Per-batch training latency of t concurrent SGX threads, rel. t=1."""
    cm = _model(system)
    spec = vgg16_spec()
    base = cm.multithread_latency(spec, 1)
    return {t: cm.multithread_latency(spec, t) / base for t in threads}


# ----------------------------------------------------------------------
# headline summary (abstract: 6.5x training, 12.5x inference averages)
# ----------------------------------------------------------------------
def headline_speedups(system: SystemProfile | None = None) -> dict[str, float]:
    """Average training and inference speedups across evaluated models."""
    train = fig5_series(system)
    train_avg = float(np.mean([v["non_pipelined"] for v in train.values()]))
    inf = fig6a_series(system)
    inf_avg = float(
        np.mean([series["DarKnight(4)"] for series in inf.values()])
    )
    return {"training_speedup_avg": train_avg, "inference_speedup_avg": inf_avg}
