"""Re-calibration utilities for the cost model's device constants.

The shipped :data:`~repro.perf.devices.DEFAULT_SYSTEM` is calibrated to the
paper's Table 1.  Anyone reproducing on different hardware claims (or
checking our procedure) can re-derive an :class:`~repro.perf.devices.SgxProfile`
from a Table-1-shaped measurement with :func:`calibrate_sgx_from_table1`:
given target GPU-over-SGX ratios and a fixed GPU profile, the SGX op rates
are solved in closed form — the ratios are rate quotients, independent of
the workload.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.perf.devices import GpuProfile, SgxProfile


@dataclass(frozen=True)
class Table1Targets:
    """GPU-over-SGX speedups per op class and direction (Table 1's layout)."""

    linear_forward: float = 126.85
    linear_backward: float = 149.13
    maxpool_forward: float = 11.86
    maxpool_backward: float = 5.47
    relu_forward: float = 119.60
    relu_backward: float = 6.59

    def __post_init__(self) -> None:
        for name in (
            "linear_forward",
            "linear_backward",
            "maxpool_forward",
            "maxpool_backward",
            "relu_forward",
            "relu_backward",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"ratio {name} must be positive")


def calibrate_sgx_from_table1(
    targets: Table1Targets,
    gpu: GpuProfile | None = None,
    base: SgxProfile | None = None,
) -> tuple[SgxProfile, GpuProfile]:
    """Solve device rates so the target ratios emerge exactly.

    The SGX linear rate is pinned by the *forward* ratio; the backward
    linear ratio is then absorbed into the GPU's backward rate (SGX linear
    throughput is direction-independent, as in the shipped calibration).
    Non-linear rates divide the GPU elementwise rate by each target.
    """
    gpu = gpu or GpuProfile()
    base = base or SgxProfile()
    sgx_linear = gpu.linear_macs_per_s_forward / targets.linear_forward
    gpu_backward = sgx_linear * targets.linear_backward
    sgx = replace(
        base,
        linear_macs_per_s=sgx_linear,
        relu_ops_per_s_paged=gpu.elementwise_ops_per_s / targets.relu_forward,
        relu_ops_per_s_resident=gpu.elementwise_ops_per_s / targets.relu_backward,
        pool_ops_per_s_paged=gpu.elementwise_ops_per_s / targets.maxpool_forward,
        pool_ops_per_s_resident=gpu.elementwise_ops_per_s / targets.maxpool_backward,
    )
    gpu_out = replace(gpu, linear_macs_per_s_backward=gpu_backward)
    return sgx, gpu_out


def verify_calibration(
    sgx: SgxProfile, gpu: GpuProfile, targets: Table1Targets, tolerance: float = 1e-9
) -> bool:
    """Check that a profile pair hits every Table-1 target ratio."""
    checks = [
        (gpu.linear_macs_per_s_forward / sgx.linear_macs_per_s, targets.linear_forward),
        (gpu.linear_macs_per_s_backward / sgx.linear_macs_per_s, targets.linear_backward),
        (gpu.elementwise_ops_per_s / sgx.relu_ops_per_s_paged, targets.relu_forward),
        (gpu.elementwise_ops_per_s / sgx.relu_ops_per_s_resident, targets.relu_backward),
        (gpu.elementwise_ops_per_s / sgx.pool_ops_per_s_paged, targets.maxpool_forward),
        (gpu.elementwise_ops_per_s / sgx.pool_ops_per_s_resident, targets.maxpool_backward),
    ]
    return all(abs(got - want) / want <= tolerance for got, want in checks)
