"""Finite-field substrate: ``F_p`` arithmetic, linear algebra, seeded sampling.

The public surface of this subpackage is:

* :class:`~repro.fieldmath.prime.PrimeField` — element-wise field ops;
* :func:`~repro.fieldmath.linalg.field_matmul` and friends — overflow-safe
  matrix algebra mod ``p``;
* :class:`~repro.fieldmath.random.FieldRng` — seeded mask/coefficient sampling;
* :mod:`~repro.fieldmath.kernels` — pluggable field-op backends (the default
  ``"limb"`` backend runs ``field_matmul`` as float64 BLAS GEMMs over 13-bit
  limbs with Barrett reduction, bit-identical to the ``"generic"`` oracle).
"""

from repro.fieldmath.kernels import (
    BarrettReducer,
    default_backend_name,
    get_backend,
    set_default_backend,
    use_backend,
)
from repro.fieldmath.linalg import (
    all_column_subsets_full_rank,
    determinant,
    field_dot,
    field_matmul,
    inverse,
    is_invertible,
    rank,
    solve,
    vandermonde,
)
from repro.fieldmath.prime import DEFAULT_PRIME, SAFE_ACCUMULATION, PrimeField
from repro.fieldmath.random import FieldRng

__all__ = [
    "DEFAULT_PRIME",
    "SAFE_ACCUMULATION",
    "PrimeField",
    "FieldRng",
    "field_matmul",
    "field_dot",
    "inverse",
    "solve",
    "rank",
    "determinant",
    "is_invertible",
    "vandermonde",
    "all_column_subsets_full_rank",
    "BarrettReducer",
    "default_backend_name",
    "get_backend",
    "set_default_backend",
    "use_backend",
]
