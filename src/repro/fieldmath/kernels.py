"""Pluggable field-op backends: BLAS-backed limb GEMM + Barrett reduction.

``np.matmul`` on ``int64`` never dispatches to BLAS — numpy runs a generic
C loop — so the chunked reduction in :func:`repro.fieldmath.linalg.field_matmul`
pays a 10-50x tax over hardware-speed float64 GEMM.  This module closes that
gap behind a bit-identical API:

**Limb decomposition.**  For a modulus ``p < 2**26`` every canonical element
``b`` splits into two 13-bit limbs ``b = b1 * 8192 + b0``.  The fast path
computes ``(a @ b) mod p`` from float64 GEMMs over the limbs; float64 holds
every integer below ``2**53`` exactly, so as long as the contraction stays
under that bound the BLAS result is the *exact* integer product — order of
accumulation (and therefore BLAS blocking) cannot change a single bit.

* ``K <= two_gemm_limit(p)`` (32 770 for the paper's ``p = 2**25 - 39``):
  split only ``b``.  ``a @ b0`` and ``a @ b1`` are two GEMMs with products
  ``<= (p-1) * 8191 < 2**39``; recombine as ``low + 8192 * high  (mod p)``.
* ``K <= karatsuba_limit(p)`` (~3.4e7): split both operands and use the
  Karatsuba identity ``a1b0 + a0b1 = (a0+a1)(b0+b1) - a0b0 - a1b1`` — three
  GEMMs whose products stay ``<= 16382**2 < 2**28``.
* beyond that (or ``p >= 2**26``): fall back to the generic chunked path.

**Barrett reduction.**  The reductions between GEMMs run entirely in
float64: ``q = floor(x * invp); r = x - q * p`` with a deliberately
*undershooting* inverse ``invp = (1 - 2**-50) / p`` so ``q`` never exceeds
the true quotient — ``r`` lands in ``[0, 2p)`` and one conditional subtract
canonicalises it.  No integer division anywhere on the fast path.  (For
element-wise ``int64 mod p`` numpy's own scalar-modulus kernel already
lowers to a libdivide multiply+shift, i.e. Barrett; the explicit int64
``BarrettReducer.reduce_int64`` here is the property-tested reference, and
:class:`repro.fieldmath.prime.PrimeField` uses the division-free
conditional-correction forms for add/sub/mul instead.)

The generic backend is kept as the oracle: every fast kernel is
property-tested bit-identical against it (``tests/test_fieldmath_kernels``).
Select a backend globally (:func:`set_default_backend`, wired to
``DarKnightConfig.field_backend`` / ``serve --field-backend``), per call
(``field_matmul(..., backend=...)``), or lexically (:func:`use_backend`).
"""

from __future__ import annotations

from contextlib import contextmanager
from functools import lru_cache

import numpy as np

from repro.errors import FieldError
from repro.precompute.scratch import active_scratch

#: Limb geometry: 13-bit limbs cover any modulus below 2**26.
LIMB_BITS = 13
LIMB_BASE = 1 << LIMB_BITS
LIMB_MASK = LIMB_BASE - 1

#: Loss of precision floor: every integer below this is exact in float64.
_F64_EXACT = 2**53


def two_gemm_limit(p: int) -> int:
    """Longest contraction the 2-GEMM split-B path computes exactly.

    ``a @ b0`` accumulates ``K`` products ``<= (p-1) * LIMB_MASK``; the
    recombination adds ``LIMB_BASE * high`` with ``high < 2p`` (lazy
    reduction), so exactness needs
    ``K * (p-1) * LIMB_MASK + 2 * LIMB_BASE * p < 2**53``.
    """
    return (_F64_EXACT - 2 * LIMB_BASE * p) // ((p - 1) * LIMB_MASK)


def karatsuba_limit(p: int) -> int:
    """Longest contraction the 3-GEMM Karatsuba path computes exactly.

    The binding term is the middle GEMM ``(a0+a1) @ (b0+b1)`` whose
    products reach ``(2 * LIMB_MASK)**2``; its ``K``-term accumulation
    must stay below ``2**53``.
    """
    return _F64_EXACT // ((2 * LIMB_MASK) ** 2)


class BarrettReducer:
    """Division-free reduction mod ``p`` in float64 and int64.

    The float64 form is the hot path: between limb GEMMs every value is an
    exactly-represented integer below ``2**53``, and ``floor(x * invp)``
    with the undershooting inverse is at most the true quotient and at most
    one short of it — so ``x - q*p`` lands in ``[0, 2p)`` ("lazy") and a
    single conditional subtract finishes the job.

    The int64 form is the classic ``q = ((x >> (n-1)) * m) >> (n+1)``
    multiply+shift with ``m = floor(2**(2n) / p)``; exact for
    ``0 <= x < 2**(2n)``.  It exists as the property-tested reference —
    numpy's own ``np.remainder(array, scalar)`` kernel already lowers to
    the same multiply+shift via libdivide, and (measured) beats any
    multi-pass reimplementation, which is why :class:`PrimeField` keeps it
    for the arbitrary-range ``element`` reduction.
    """

    def __init__(self, p: int) -> None:
        if p < 3:
            raise FieldError(f"modulus must be >= 3, got {p}")
        self.p = int(p)
        self.pf = float(p)
        #: Undershooting inverse: (1 - 2**-50)/p rounds q down, never up.
        self.invp = (1.0 - 2.0**-50) / p
        self.shift_bits = p.bit_length()
        if self.shift_bits <= 30:
            self.multiplier = (1 << (2 * self.shift_bits)) // p
        else:  # (x >> (n-1)) * m would overflow int64
            self.multiplier = None

    # -- float64 ------------------------------------------------------
    def reduce_f64_lazy(self, x: np.ndarray) -> np.ndarray:
        """In-place Barrett step on exact-integer float64: result in [0, 2p)."""
        q = np.floor(x * self.invp)
        q *= self.pf
        x -= q
        return x

    def reduce_f64(self, x: np.ndarray) -> np.ndarray:
        """In-place full reduction of exact-integer float64 into [0, p)."""
        self.reduce_f64_lazy(x)
        np.subtract(x, self.pf, out=x, where=x >= self.pf)
        return x

    # -- int64 (reference) --------------------------------------------
    def reduce_int64(self, x: np.ndarray) -> np.ndarray:
        """Multiply+shift reduction of ``0 <= x < 2**(2n)`` into [0, p)."""
        if self.multiplier is None:
            raise FieldError(
                f"int64 Barrett needs p < 2**30, got bit length {self.shift_bits}"
            )
        x = np.asarray(x, dtype=np.int64)
        q = ((x >> (self.shift_bits - 1)) * self.multiplier) >> (self.shift_bits + 1)
        r = x - q * self.p
        np.subtract(r, self.p, out=r, where=r >= self.p)
        np.subtract(r, self.p, out=r, where=r >= self.p)
        return r


@lru_cache(maxsize=64)
def barrett(p: int) -> BarrettReducer:
    """Cached per-modulus reducer (the constants are pure functions of p)."""
    return BarrettReducer(p)


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------


class GenericBackend:
    """The oracle: chunked int64 products, reduced with numpy's modulus.

    A single field product is below ``p**2 < 2**62``; summing more than
    ``floor(2**63 / p**2)`` of them can overflow int64, so the contraction
    axis is split into ``chunk``-sized blocks, each partial reduced mod
    ``p`` and the (now ``< p``) partials accumulated and reduced again.
    Exact for any ``p < 2**31``, any shape — and therefore the reference
    every fast path is property-tested against.
    """

    name = "generic"

    def matmul(self, field, a: np.ndarray, b: np.ndarray, chunk: int) -> np.ndarray:
        n = a.shape[-1]
        out_shape = a.shape[:-1] + b.shape[1:]
        result = np.zeros(out_shape, dtype=np.int64)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            partial = np.matmul(a[..., start:stop], b[start:stop])
            result += np.mod(partial, field.p)
        return np.mod(result, field.p)


class LimbBackend:
    """13-bit-limb float64 GEMMs: exact ``(a @ b) mod p`` at BLAS speed.

    Dispatch by contraction length ``K`` (bounds proven in the module
    docstring; overridable caps exist purely so tests can force each
    branch on small operands):

    * ``K <= two_gemm_limit(p)`` — split-B, 2 GEMMs;
    * ``K <= karatsuba_limit(p)`` — both operands split, 3 GEMMs;
    * otherwise, or ``p >= 2**26``, or stacked (>2-D) ``b`` — generic.
    """

    name = "limb"

    def __init__(
        self,
        two_gemm_cap: int | None = None,
        karatsuba_cap: int | None = None,
    ) -> None:
        self._two_gemm_cap = two_gemm_cap
        self._karatsuba_cap = karatsuba_cap
        self._generic = GenericBackend()

    def matmul(self, field, a: np.ndarray, b: np.ndarray, chunk: int) -> np.ndarray:
        p = field.p
        k = a.shape[-1]
        if p >= 1 << (2 * LIMB_BITS) or b.ndim > 2 or k == 0:
            # Limbs no longer fit 13 bits / stacked-matmul semantics /
            # empty contraction: the oracle handles all of them.
            return self._generic.matmul(field, a, b, chunk)
        two_gemm_max = (
            self._two_gemm_cap if self._two_gemm_cap is not None else two_gemm_limit(p)
        )
        kara_max = (
            self._karatsuba_cap
            if self._karatsuba_cap is not None
            else karatsuba_limit(p)
        )
        out_shape = a.shape[:-1] + b.shape[1:]
        if k <= two_gemm_max:
            flat = self._two_gemm(barrett(p), a.reshape(-1, k), b.reshape(k, -1))
        elif k <= kara_max:
            flat = self._karatsuba(barrett(p), a.reshape(-1, k), b.reshape(k, -1))
        else:
            return self._generic.matmul(field, a, b, chunk)
        return flat.astype(np.int64).reshape(out_shape)

    @staticmethod
    def _two_gemm(red: BarrettReducer, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Split-B path: products <= (p-1)*LIMB_MASK, 2 GEMMs, 2 reductions.

        With the precompute scratch pool enabled every intermediate —
        limb planes and both GEMM outputs — lives in recycled per-shape
        buffers (``out=`` GEMM variants); the ``beta=0`` BLAS call and
        in-place ufuncs make the result bit-identical either way.  The
        returned array may alias pool memory: the sole caller copies it
        out via ``astype(np.int64)`` immediately.
        """
        scratch = active_scratch()
        if scratch is None:
            af = a.astype(np.float64)
            low = np.matmul(af, (b & LIMB_MASK).astype(np.float64))
            high = np.matmul(af, (b >> LIMB_BITS).astype(np.float64))
        else:
            af = scratch.cast("2g_a", a, np.float64)
            b_int = scratch.get("2g_bi", b.shape, np.int64)
            b_f = scratch.get("2g_bf", b.shape, np.float64)
            low = scratch.get("2g_lo", (a.shape[0], b.shape[1]), np.float64)
            high = scratch.get("2g_hi", (a.shape[0], b.shape[1]), np.float64)
            np.bitwise_and(b, LIMB_MASK, out=b_int)
            np.copyto(b_f, b_int, casting="unsafe")
            np.matmul(af, b_f, out=low)
            np.right_shift(b, LIMB_BITS, out=b_int)
            np.copyto(b_f, b_int, casting="unsafe")
            np.matmul(af, b_f, out=high)
        red.reduce_f64_lazy(high)  # [0, 2p): keeps the recombination < 2**53
        high *= float(LIMB_BASE)
        low += high
        return red.reduce_f64(low)

    @staticmethod
    def _karatsuba(red: BarrettReducer, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Both operands split; 3 GEMMs via the Karatsuba middle term."""
        a0 = (a & LIMB_MASK).astype(np.float64)
        a1 = (a >> LIMB_BITS).astype(np.float64)
        b0 = (b & LIMB_MASK).astype(np.float64)
        b1 = (b >> LIMB_BITS).astype(np.float64)
        c00 = np.matmul(a0, b0)
        c11 = np.matmul(a1, b1)
        a0 += a1
        b0 += b1
        mid = np.matmul(a0, b0)
        mid -= c00
        mid -= c11  # exact: a0b1 + a1b0, still an integer < 2**53
        # x = c00 + 2**13 * mid + 2**26 * c11 (mod p), recombined in two
        # lazy steps so every float64 intermediate stays an exact integer:
        # c00, mid reduced to [0, 2p) keep c00 + 2**13*mid < 2**15 * p,
        # and (2**26 mod p) * c11_r < 2p**2 < 2**53 for p < 2**26.
        red.reduce_f64_lazy(mid)
        mid *= float(LIMB_BASE)
        red.reduce_f64_lazy(c00)
        c00 += mid
        red.reduce_f64_lazy(c00)
        red.reduce_f64_lazy(c11)
        c11 *= float((1 << (2 * LIMB_BITS)) % red.p)
        red.reduce_f64_lazy(c11)
        c00 += c11
        return red.reduce_f64(c00)


#: Registry consulted by name lookups (config validation imports this).
BACKENDS: dict[str, object] = {
    "generic": GenericBackend(),
    "limb": LimbBackend(),
}

_default_name = "limb"


def get_backend(name: str):
    """Backend instance by registry name."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise FieldError(
            f"unknown field backend {name!r} (available: {sorted(BACKENDS)})"
        ) from None


def default_backend():
    """The backend ``field_matmul`` uses when none is passed explicitly."""
    return BACKENDS[_default_name]


def default_backend_name() -> str:
    """Registry name of the current default backend."""
    return _default_name


def set_default_backend(name: str) -> str:
    """Switch the process-wide default backend; returns the previous name."""
    global _default_name
    get_backend(name)  # validate before committing
    previous = _default_name
    _default_name = name
    return previous


@contextmanager
def use_backend(name: str):
    """Lexically scoped default-backend override (tests and benchmarks)."""
    previous = set_default_backend(name)
    try:
        yield get_backend(name)
    finally:
        set_default_backend(previous)
