"""Seeded randomness helpers for field-valued masks and coefficients.

DarKnight regenerates fresh coefficient matrices (``A``, ``B``, ``Gamma``)
and noise vectors ``R`` for *every* virtual batch (Section 4: "dynamically
generated for each virtual batch and securely stored inside SGX").  This
module centralises that sampling behind a single seeded generator so
experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FieldError
from repro.fieldmath import linalg
from repro.fieldmath.prime import PrimeField


class FieldRng:
    """Seeded sampler of field elements, vectors and structured matrices.

    Parameters
    ----------
    field:
        The prime field to sample in.
    seed:
        Anything acceptable to :func:`numpy.random.default_rng`; ``None``
        draws OS entropy (fine for applications, avoid in tests).
    """

    #: Give up on rejection sampling of invertible matrices after this many
    #: draws; for a large prime a single draw succeeds with probability
    #: > 1 - n/p, so hitting the cap indicates a logic error.
    MAX_REJECTIONS = 64

    def __init__(self, field: PrimeField, seed=None) -> None:
        self.field = field
        self._rng = np.random.default_rng(seed)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator (for interop with other samplers)."""
        return self._rng

    def spawn(self) -> "FieldRng":
        """Independent child stream (deterministic given the parent's state)."""
        return FieldRng(self.field, self._rng.spawn(1)[0])

    # ------------------------------------------------------------------
    # elements and vectors
    # ------------------------------------------------------------------
    def uniform(self, shape=()) -> np.ndarray:
        """Uniform field elements — the one-time-pad noise source."""
        return self.field.uniform(shape, self._rng)

    def nonzero(self, shape=()) -> np.ndarray:
        """Uniform non-zero field elements (for diagonals like ``Gamma``)."""
        return self.field.nonzero_uniform(shape, self._rng)

    def noise_matrix(self, n_features: int, n_vectors: int) -> np.ndarray:
        """The ``R`` block of Section 4.5: ``n_vectors`` uniform noise columns."""
        if n_features < 1 or n_vectors < 0:
            raise FieldError(
                f"invalid noise shape ({n_features}, {n_vectors}); features must be"
                " positive and vector count non-negative"
            )
        return self.uniform((n_features, n_vectors))

    def distinct_nonzero(self, count: int) -> np.ndarray:
        """``count`` distinct non-zero elements (Vandermonde evaluation points)."""
        if count >= self.field.p:
            raise FieldError(f"cannot draw {count} distinct elements from F_{self.field.p}")
        chosen = self._rng.choice(self.field.p - 1, size=count, replace=False)
        return np.asarray(chosen + 1, dtype=np.int64)

    # ------------------------------------------------------------------
    # structured matrices
    # ------------------------------------------------------------------
    def invertible_matrix(self, n: int) -> np.ndarray:
        """Uniformly-ish random invertible ``n x n`` matrix (rejection sampling)."""
        for _ in range(self.MAX_REJECTIONS):
            candidate = self.uniform((n, n))
            if linalg.is_invertible(self.field, candidate):
                return candidate
        raise FieldError(f"failed to sample an invertible {n}x{n} matrix")

    def invertible_diagonal(self, n: int) -> np.ndarray:
        """Random diagonal matrix with non-zero entries (the ``Gamma`` shape)."""
        return np.diag(self.nonzero((n,)))

    def mds_matrix(self, n_rows: int, n_cols: int) -> np.ndarray:
        """Vandermonde MDS matrix: every ``<= n_rows``-column subset full rank."""
        points = self.distinct_nonzero(n_cols)
        return linalg.vandermonde(self.field, points, n_rows)
