"""Prime-field arithmetic over ``F_p`` vectorised with numpy.

DarKnight performs all masking, GPU linear algebra and decoding over the
finite field ``F_p`` with ``p = 2**25 - 39`` (the largest 25-bit prime; see
Section 5 of the paper).  This module provides a :class:`PrimeField` value
object exposing element-wise field operations on ``int64`` numpy arrays.

Overflow discipline
-------------------
Field elements live in ``[0, p)`` so a single product is below ``p**2 < 2**50``
and fits comfortably in ``int64``.  Accumulating more than ``2**13`` products
before reduction can overflow, which is why matrix products must go through
:func:`repro.fieldmath.linalg.field_matmul` (chunked reduction) rather than a
raw ``np.dot`` on field elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import FieldError

#: Largest 25-bit prime, the modulus used throughout the paper.
DEFAULT_PRIME: int = 2**25 - 39

#: Maximum number of p^2-bounded products that can be summed in int64
#: without overflow: floor(2**63 / p**2) with a 2x safety margin.
SAFE_ACCUMULATION = 4096


@lru_cache(maxsize=64)
def _reducer(p: int):
    """Cached Barrett reducer for ``p`` (import deferred to avoid a cycle)."""
    from repro.fieldmath.kernels import barrett

    return barrett(p)


#: Element-count band where the float64 Barrett product reduction beats
#: numpy's libdivide-backed scalar modulus (measured: below it, per-call
#: ufunc overhead dominates; above it, the int64<->float64 conversions
#: turn memory-bound).  Feature-sized masking/quantization tensors land
#: squarely inside the band.
_F64_MUL_BAND = (1024, 1 << 17)


def _is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin, exact for n < 3.3e24."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for sp in small_primes:
        if n % sp == 0:
            return n == sp
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in small_primes:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


@dataclass(frozen=True)
class PrimeField:
    """Element-wise arithmetic in the prime field ``F_p``.

    Arrays handled by this class are ``int64`` numpy arrays whose entries lie
    in ``[0, p)``.  The class is stateless apart from the modulus, so a single
    instance can be shared freely across threads and components.

    Parameters
    ----------
    p:
        Field modulus.  Must be an odd prime small enough that ``p**2`` fits
        in ``int64`` (i.e. ``p < 2**31``), which every 25-bit prime satisfies.
    """

    p: int = DEFAULT_PRIME

    def __post_init__(self) -> None:
        if self.p < 3 or self.p >= 2**31:
            raise FieldError(f"modulus must be an odd prime < 2**31, got {self.p}")
        if not _is_prime(self.p):
            raise FieldError(f"modulus {self.p} is not prime")

    # ------------------------------------------------------------------
    # element construction
    # ------------------------------------------------------------------
    def element(self, values) -> np.ndarray:
        """Reduce arbitrary integers (array-like) into canonical ``[0, p)``.

        Uses numpy's scalar-modulus kernel, which already lowers to a
        libdivide multiply+shift (Barrett) — the full ``int64`` range it
        must accept exceeds the float64 reducer's ``2**53`` exactness
        domain, and (measured) no multi-pass reimplementation beats it.
        """
        arr = np.asarray(values, dtype=np.int64)
        return np.mod(arr, self.p)

    def zeros(self, shape) -> np.ndarray:
        """All-zero field array."""
        return np.zeros(shape, dtype=np.int64)

    def ones(self, shape) -> np.ndarray:
        """All-one field array."""
        return np.ones(shape, dtype=np.int64)

    def eye(self, n: int) -> np.ndarray:
        """Identity matrix over the field."""
        return np.eye(n, dtype=np.int64)

    def is_canonical(self, values: np.ndarray) -> bool:
        """True when every entry already lies in ``[0, p)``."""
        arr = np.asarray(values)
        if arr.dtype.kind not in "iu":
            return False
        return bool(np.all(arr >= 0) and np.all(arr < self.p))

    # ------------------------------------------------------------------
    # ring operations
    # ------------------------------------------------------------------
    def add(self, a, b) -> np.ndarray:
        """Element-wise ``(a + b) mod p`` — division-free.

        Canonical inputs sum into ``[0, 2p)``, so a single conditional
        subtract canonicalises the result without any modulus at all.
        Non-canonical inputs fall back to the generic reduction.
        """
        total = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
        if total.ndim == 0 or np.any(total < 0) or np.any(total >= 2 * self.p):
            return np.mod(total, self.p)
        np.subtract(total, self.p, out=total, where=total >= self.p)
        return total

    def sub(self, a, b) -> np.ndarray:
        """Element-wise ``(a - b) mod p`` — division-free.

        Canonical inputs difference into ``(-p, p)``; one conditional add
        of ``p`` canonicalises it.
        """
        diff = np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64)
        if diff.ndim == 0 or np.any(diff <= -self.p) or np.any(diff >= self.p):
            return np.mod(diff, self.p)
        np.add(diff, self.p, out=diff, where=diff < 0)
        return diff

    def neg(self, a) -> np.ndarray:
        """Element-wise additive inverse (conditional correction, no modulus)."""
        flipped = -np.asarray(a, dtype=np.int64)
        if flipped.ndim == 0 or np.any(flipped > 0) or np.any(flipped <= -self.p):
            return np.mod(flipped, self.p)
        np.add(flipped, self.p, out=flipped, where=flipped < 0)
        return flipped

    def mul(self, a, b) -> np.ndarray:
        """Element-wise ``(a * b) mod p``.

        Inputs must be canonical (``< p``) so the product stays below
        ``p**2 < 2**50`` and cannot overflow ``int64``.  In the measured
        sweet spot (see :data:`_F64_MUL_BAND`) the product is reduced by
        the float64 Barrett multiply+shift — products below ``2**52`` are
        exact in float64, so the result is bit-identical; outside the
        band numpy's own libdivide multiply+shift kernel wins and is kept.
        """
        prod = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
        if (
            self.p < (1 << 26)
            and _F64_MUL_BAND[0] <= prod.size <= _F64_MUL_BAND[1]
        ):
            reduced = _reducer(self.p).reduce_f64(prod.astype(np.float64))
            return reduced.astype(np.int64)
        return np.mod(prod, self.p)

    def square(self, a) -> np.ndarray:
        """Element-wise ``a**2 mod p``."""
        return self.mul(a, a)

    def power(self, base, exponent: int) -> np.ndarray:
        """Element-wise modular exponentiation by a non-negative integer.

        Uses square-and-multiply with reduction after every step, so any
        array shape is supported.
        """
        if exponent < 0:
            return self.power(self.inv(base), -exponent)
        result = self.ones(np.shape(base))
        acc = self.element(base)
        e = exponent
        while e:
            if e & 1:
                result = self.mul(result, acc)
            acc = self.square(acc)
            e >>= 1
        return result

    def inv(self, a) -> np.ndarray:
        """Element-wise multiplicative inverse via Fermat's little theorem.

        Raises
        ------
        FieldError
            If any entry is zero (zero has no inverse).
        """
        arr = self.element(a)
        if np.any(arr == 0):
            raise FieldError("zero has no multiplicative inverse in F_p")
        return self.power(arr, self.p - 2)

    def scalar_inv(self, a: int) -> int:
        """Inverse of a single scalar, returned as a Python int."""
        a = int(a) % self.p
        if a == 0:
            raise FieldError("zero has no multiplicative inverse in F_p")
        return pow(a, self.p - 2, self.p)

    # ------------------------------------------------------------------
    # signed lift (two's-complement-style centering)
    # ------------------------------------------------------------------
    @property
    def half(self) -> int:
        """Threshold separating 'positive' from 'negative' representatives."""
        return self.p // 2

    @property
    def signed_min(self) -> int:
        """Most negative integer representable by the signed lift."""
        return -(self.p // 2)

    @property
    def signed_max(self) -> int:
        """Most positive integer representable by the signed lift."""
        return self.p // 2

    def from_signed(self, values) -> np.ndarray:
        """Map signed integers into ``[0, p)`` (negatives get ``+p``).

        This is the ``Field`` procedure of the paper's Algorithm 1.  Values
        outside ``[-p/2, p/2]`` wrap and become ambiguous on the way back,
        which callers guard against via :mod:`repro.quantization`.
        """
        return self.element(values)

    def to_signed(self, values) -> np.ndarray:
        """Centre-lift canonical elements back to signed integers.

        Entries above ``p/2`` are interpreted as negatives (the paper's
        post-GPU "subtract p" step).
        """
        arr = self.element(values)
        return np.where(arr > self.half, arr - self.p, arr)

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------
    def uniform(self, shape, rng: np.random.Generator) -> np.ndarray:
        """Uniformly random canonical field elements (the one-time-pad source)."""
        return rng.integers(0, self.p, size=shape, dtype=np.int64)

    def nonzero_uniform(self, shape, rng: np.random.Generator) -> np.ndarray:
        """Uniformly random *non-zero* field elements."""
        return rng.integers(1, self.p, size=shape, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PrimeField(p={self.p})"
