"""Linear algebra over ``F_p``: overflow-safe products, inverses, rank, MDS.

Everything DarKnight offloads to GPUs is a bilinear form over the field, and
everything the enclave does to decode is small dense linear algebra over the
same field.  This module provides both:

* :func:`field_matmul` — matrix product with chunked reduction so int64 never
  overflows, used by the simulated GPU kernels;
* Gauss-Jordan :func:`inverse` / :func:`solve` / :func:`rank` used when
  generating and applying DarKnight coefficient matrices;
* :func:`vandermonde` — the MDS construction guaranteeing that *every*
  ``<= M``-column subset of the noise-coefficient block ``A2`` is full rank
  (Section 4.5's collusion requirement, which random matrices only satisfy
  with high probability).
"""

from __future__ import annotations

import numpy as np

from repro.errors import FieldError, SingularMatrixError
from repro.fieldmath import kernels
from repro.fieldmath.prime import SAFE_ACCUMULATION, PrimeField


def _as_matrix(a: np.ndarray) -> np.ndarray:
    arr = np.asarray(a, dtype=np.int64)
    if arr.ndim != 2:
        raise FieldError(f"expected a 2-D matrix, got shape {arr.shape}")
    return arr


def field_matmul(
    field: PrimeField,
    a: np.ndarray,
    b: np.ndarray,
    chunk: int = SAFE_ACCUMULATION,
    backend: str | None = None,
) -> np.ndarray:
    """``(a @ b) mod p``, dispatched to the selected field-op backend.

    The ``"generic"`` backend is the original chunked reduction: a single
    field product is below ``p**2 < 2**50``, summing more than ``~2**13``
    of them overflows int64, so the shared axis is split into
    ``chunk``-sized blocks, each partial reduced mod ``p`` and the (now
    ``< p``) partials reduced again at the end.  The default ``"limb"``
    backend (:mod:`repro.fieldmath.kernels`) computes the same product —
    bit-identical, property-tested — as float64 BLAS GEMMs over 13-bit
    limbs, roughly an order of magnitude faster, falling back to the
    generic path beyond its exactness bound.

    Accepts any ``a`` of shape ``(..., n)`` against ``b`` of shape
    ``(n, ...)`` the way ``np.matmul`` of 2-D operands does; the common case
    is plain 2-D x 2-D.  ``backend=None`` uses the process default
    (:func:`repro.fieldmath.kernels.set_default_backend`, wired to
    ``DarKnightConfig.field_backend``).
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape[-1] != b.shape[0]:
        raise FieldError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    if chunk < 1:
        raise FieldError(f"chunk must be positive, got {chunk}")
    ops = kernels.default_backend() if backend is None else kernels.get_backend(backend)
    return ops.matmul(field, a, b, chunk)


def field_dot(field: PrimeField, a: np.ndarray, b: np.ndarray) -> int:
    """Inner product of two 1-D field vectors, reduced safely.

    Vectorized: the element-wise products (each ``< p**2``) are reduced in
    one reshaped chunked sum — ``SAFE_ACCUMULATION`` terms per chunk keeps
    every partial below int64 overflow — instead of a Python loop of
    ``np.dot`` calls.
    """
    a = np.asarray(a, dtype=np.int64).ravel()
    b = np.asarray(b, dtype=np.int64).ravel()
    if a.shape != b.shape:
        raise FieldError(f"vector lengths differ: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 0
    prods = a * b
    pad = (-prods.size) % SAFE_ACCUMULATION
    if pad:
        prods = np.concatenate([prods, np.zeros(pad, dtype=np.int64)])
    partials = np.mod(prods.reshape(-1, SAFE_ACCUMULATION).sum(axis=1), field.p)
    # n_chunks partials each < p: the final sum stays far below int64.
    return int(partials.sum() % field.p)


def _eliminate(field: PrimeField, matrix: np.ndarray, augment: np.ndarray | None):
    """Gauss-Jordan elimination mod p.

    Returns ``(reduced, augment_reduced, pivot_columns)``.  ``augment`` may be
    ``None`` when only rank information is needed.

    The inner loop eliminates *all* non-pivot rows at once with one
    outer-product update per pivot column — ``m -= factors ⊗ pivot_row``
    over the field — instead of a per-row Python loop.  Field arithmetic
    is exact, so the result is bit-identical to row-at-a-time elimination.
    """
    m = field.element(matrix).copy()
    aug = None if augment is None else field.element(augment).copy()
    rows, cols = m.shape
    pivots: list[int] = []
    row = 0
    for col in range(cols):
        if row >= rows:
            break
        pivot_candidates = np.nonzero(m[row:, col])[0]
        if pivot_candidates.size == 0:
            continue
        pivot_row = row + int(pivot_candidates[0])
        if pivot_row != row:
            m[[row, pivot_row]] = m[[pivot_row, row]]
            if aug is not None:
                aug[[row, pivot_row]] = aug[[pivot_row, row]]
        inv_pivot = field.scalar_inv(int(m[row, col]))
        m[row] = field.mul(m[row], inv_pivot)
        if aug is not None:
            aug[row] = field.mul(aug[row], inv_pivot)
        factors = m[:, col].copy()
        factors[row] = 0  # the pivot row eliminates everyone but itself
        if np.any(factors):
            m = field.sub(m, field.mul(factors[:, None], m[row][None, :]))
            if aug is not None:
                aug = field.sub(aug, field.mul(factors[:, None], aug[row][None, :]))
        pivots.append(col)
        row += 1
    return m, aug, pivots


def rank(field: PrimeField, matrix: np.ndarray) -> int:
    """Rank of ``matrix`` over ``F_p``."""
    _, _, pivots = _eliminate(field, _as_matrix(matrix), None)
    return len(pivots)


def is_invertible(field: PrimeField, matrix: np.ndarray) -> bool:
    """True when a square matrix has full rank over ``F_p``."""
    m = _as_matrix(matrix)
    if m.shape[0] != m.shape[1]:
        return False
    return rank(field, m) == m.shape[0]


def inverse(field: PrimeField, matrix: np.ndarray) -> np.ndarray:
    """Matrix inverse over ``F_p`` via Gauss-Jordan.

    Raises
    ------
    SingularMatrixError
        If the matrix is not square or not full rank.
    """
    m = _as_matrix(matrix)
    if m.shape[0] != m.shape[1]:
        raise SingularMatrixError(f"cannot invert non-square matrix {m.shape}")
    n = m.shape[0]
    reduced, aug, pivots = _eliminate(field, m, field.eye(n))
    if len(pivots) != n:
        raise SingularMatrixError(f"matrix of shape {m.shape} is singular mod {field.p}")
    del reduced
    return aug


def solve(field: PrimeField, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``a @ x = b`` over ``F_p`` for square invertible ``a``."""
    a = _as_matrix(a)
    b_arr = field.element(b)
    vector_input = b_arr.ndim == 1
    if vector_input:
        b_arr = b_arr.reshape(-1, 1)
    if a.shape[0] != b_arr.shape[0]:
        raise FieldError(f"incompatible shapes {a.shape} and {b_arr.shape}")
    x = field_matmul(field, inverse(field, a), b_arr)
    return x.ravel() if vector_input else x


def determinant(field: PrimeField, matrix: np.ndarray) -> int:
    """Determinant over ``F_p`` (fraction-free elimination with pivot tracking)."""
    m = field.element(_as_matrix(matrix)).copy()
    n = m.shape[0]
    if n != m.shape[1]:
        raise FieldError(f"determinant of non-square matrix {m.shape}")
    det = 1
    for col in range(n):
        pivot_candidates = np.nonzero(m[col:, col])[0]
        if pivot_candidates.size == 0:
            return 0
        pivot_row = col + int(pivot_candidates[0])
        if pivot_row != col:
            m[[col, pivot_row]] = m[[pivot_row, col]]
            det = (-det) % field.p
        pivot = int(m[col, col])
        det = det * pivot % field.p
        inv_pivot = field.scalar_inv(pivot)
        for other in range(col + 1, n):
            if m[other, col] == 0:
                continue
            factor = field.mul(int(m[other, col]), inv_pivot)
            m[other] = field.sub(m[other], field.mul(m[col], int(factor)))
    return int(det)


def vandermonde(field: PrimeField, points: np.ndarray, n_rows: int) -> np.ndarray:
    """Vandermonde matrix ``V[i, j] = points[j]**i`` of shape ``(n_rows, len(points))``.

    With distinct evaluation points, every ``n_rows x n_rows`` column
    submatrix is invertible — exactly the MDS property DarKnight needs for
    the collusion-tolerant noise block ``A2`` (any ``M`` colluding GPUs see
    noise coefficients of full rank, so no linear combination cancels the
    masks).
    """
    pts = field.element(points).ravel()
    if len(set(int(v) for v in pts)) != pts.size:
        raise FieldError("Vandermonde points must be distinct")
    if n_rows < 1:
        raise FieldError(f"need at least one row, got {n_rows}")
    # Cumulative-power doubling: with rows 0..f-1 filled, rows f..2f-1 are
    # the first f rows scaled by pts**f — one vectorized field multiply per
    # doubling instead of a per-row append loop.
    out = np.empty((n_rows, pts.size), dtype=np.int64)
    out[0] = 1
    filled = 1
    while filled < n_rows:
        take = min(filled, n_rows - filled)
        base = field.mul(out[filled - 1], pts)  # pts**filled
        out[filled : filled + take] = field.mul(out[:take], base[None, :])
        filled += take
    return out


def all_column_subsets_full_rank(
    field: PrimeField, matrix: np.ndarray, subset_size: int, max_checks: int | None = 5000
) -> bool:
    """Verify every ``subset_size``-column subset of ``matrix`` has full rank.

    Used by tests and by the strict coefficient generator to certify the
    collusion-privacy condition of Section 4.5.  ``max_checks`` bounds the
    combinatorial explosion for wide matrices; ``None`` means exhaustive.

    Implemented as a lexicographic DFS over column prefixes that keeps an
    incrementally-reduced basis per prefix, instead of re-running full
    Gauss-Jordan on every subset:

    * adding one column costs one elimination step against the shared
      prefix basis (subsets sharing a prefix share all that work);
    * the moment any prefix reduces to a dependent column the search
      stops — every superset of a dependent set is dependent, and with
      ``>= subset_size`` columns available some full-size subset contains
      it, so the certificate already failed.  (This also catches
      dependencies the old sampled-at-``max_checks`` walk could miss.)

    ``max_checks`` still counts *completed* subsets, visited in the same
    lexicographic order as before.
    """
    m = _as_matrix(matrix)
    if subset_size > m.shape[0]:
        raise FieldError(
            f"subset size {subset_size} exceeds row count {m.shape[0]}; rank cannot be full"
        )
    n_cols = m.shape[1]
    if n_cols < subset_size:
        return True  # no subsets exist; vacuously certified (as before)
    cols = field.element(m)
    counter = {"checked": 0}

    def _reduce(col: np.ndarray, basis: list[tuple[int, np.ndarray]]) -> np.ndarray:
        """One incremental elimination step: clear col's basis pivots."""
        vec = col.copy()
        for pivot_idx, pivot_vec in basis:
            factor = int(vec[pivot_idx])
            if factor:
                vec = field.sub(vec, field.mul(pivot_vec, factor))
        return vec

    def _extend(start: int, basis: list[tuple[int, np.ndarray]]) -> bool:
        depth = len(basis)
        if depth == subset_size:
            counter["checked"] += 1
            return True
        for j in range(start, n_cols - (subset_size - depth) + 1):
            vec = _reduce(cols[:, j], basis)
            nonzero = np.nonzero(vec)[0]
            if nonzero.size == 0:
                return False  # dependent prefix => some full subset fails
            pivot_idx = int(nonzero[0])
            pivot_vec = field.mul(vec, field.scalar_inv(int(vec[pivot_idx])))
            basis.append((pivot_idx, pivot_vec))
            ok = _extend(j + 1, basis)
            basis.pop()
            if not ok:
                return False
            if max_checks is not None and counter["checked"] >= max_checks:
                break
        return True

    return _extend(0, [])
