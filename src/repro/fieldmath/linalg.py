"""Linear algebra over ``F_p``: overflow-safe products, inverses, rank, MDS.

Everything DarKnight offloads to GPUs is a bilinear form over the field, and
everything the enclave does to decode is small dense linear algebra over the
same field.  This module provides both:

* :func:`field_matmul` — matrix product with chunked reduction so int64 never
  overflows, used by the simulated GPU kernels;
* Gauss-Jordan :func:`inverse` / :func:`solve` / :func:`rank` used when
  generating and applying DarKnight coefficient matrices;
* :func:`vandermonde` — the MDS construction guaranteeing that *every*
  ``<= M``-column subset of the noise-coefficient block ``A2`` is full rank
  (Section 4.5's collusion requirement, which random matrices only satisfy
  with high probability).
"""

from __future__ import annotations

import numpy as np

from repro.errors import FieldError, SingularMatrixError
from repro.fieldmath.prime import SAFE_ACCUMULATION, PrimeField


def _as_matrix(a: np.ndarray) -> np.ndarray:
    arr = np.asarray(a, dtype=np.int64)
    if arr.ndim != 2:
        raise FieldError(f"expected a 2-D matrix, got shape {arr.shape}")
    return arr


def field_matmul(
    field: PrimeField,
    a: np.ndarray,
    b: np.ndarray,
    chunk: int = SAFE_ACCUMULATION,
) -> np.ndarray:
    """``(a @ b) mod p`` with the contraction axis reduced in chunks.

    A single field product is below ``p**2 < 2**50``; summing more than
    ``~2**13`` of them overflows int64.  We therefore split the shared axis
    into ``chunk``-sized blocks, reduce each partial product mod ``p`` and
    accumulate the (now ``< p``) partials, reducing again at the end.

    Accepts any ``a`` of shape ``(..., n)`` against ``b`` of shape
    ``(n, ...)`` the way ``np.matmul`` of 2-D operands does; the common case
    is plain 2-D x 2-D.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape[-1] != b.shape[0]:
        raise FieldError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    if chunk < 1:
        raise FieldError(f"chunk must be positive, got {chunk}")
    n = a.shape[-1]
    out_shape = a.shape[:-1] + b.shape[1:]
    result = np.zeros(out_shape, dtype=np.int64)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        partial = np.matmul(a[..., start:stop], b[start:stop])
        result += np.mod(partial, field.p)
    return np.mod(result, field.p)


def field_dot(field: PrimeField, a: np.ndarray, b: np.ndarray) -> int:
    """Inner product of two 1-D field vectors, reduced safely."""
    a = np.asarray(a, dtype=np.int64).ravel()
    b = np.asarray(b, dtype=np.int64).ravel()
    if a.shape != b.shape:
        raise FieldError(f"vector lengths differ: {a.shape} vs {b.shape}")
    total = 0
    for start in range(0, a.size, SAFE_ACCUMULATION):
        stop = min(start + SAFE_ACCUMULATION, a.size)
        total = (total + int(np.dot(a[start:stop], b[start:stop])) % field.p) % field.p
    return total


def _eliminate(field: PrimeField, matrix: np.ndarray, augment: np.ndarray | None):
    """Gauss-Jordan elimination mod p.

    Returns ``(reduced, augment_reduced, pivot_columns)``.  ``augment`` may be
    ``None`` when only rank information is needed.
    """
    m = field.element(matrix).copy()
    aug = None if augment is None else field.element(augment).copy()
    rows, cols = m.shape
    pivots: list[int] = []
    row = 0
    for col in range(cols):
        if row >= rows:
            break
        pivot_candidates = np.nonzero(m[row:, col])[0]
        if pivot_candidates.size == 0:
            continue
        pivot_row = row + int(pivot_candidates[0])
        if pivot_row != row:
            m[[row, pivot_row]] = m[[pivot_row, row]]
            if aug is not None:
                aug[[row, pivot_row]] = aug[[pivot_row, row]]
        inv_pivot = field.scalar_inv(int(m[row, col]))
        m[row] = field.mul(m[row], inv_pivot)
        if aug is not None:
            aug[row] = field.mul(aug[row], inv_pivot)
        for other in range(rows):
            if other == row or m[other, col] == 0:
                continue
            factor = int(m[other, col])
            m[other] = field.sub(m[other], field.mul(m[row], factor))
            if aug is not None:
                aug[other] = field.sub(aug[other], field.mul(aug[row], factor))
        pivots.append(col)
        row += 1
    return m, aug, pivots


def rank(field: PrimeField, matrix: np.ndarray) -> int:
    """Rank of ``matrix`` over ``F_p``."""
    _, _, pivots = _eliminate(field, _as_matrix(matrix), None)
    return len(pivots)


def is_invertible(field: PrimeField, matrix: np.ndarray) -> bool:
    """True when a square matrix has full rank over ``F_p``."""
    m = _as_matrix(matrix)
    if m.shape[0] != m.shape[1]:
        return False
    return rank(field, m) == m.shape[0]


def inverse(field: PrimeField, matrix: np.ndarray) -> np.ndarray:
    """Matrix inverse over ``F_p`` via Gauss-Jordan.

    Raises
    ------
    SingularMatrixError
        If the matrix is not square or not full rank.
    """
    m = _as_matrix(matrix)
    if m.shape[0] != m.shape[1]:
        raise SingularMatrixError(f"cannot invert non-square matrix {m.shape}")
    n = m.shape[0]
    reduced, aug, pivots = _eliminate(field, m, field.eye(n))
    if len(pivots) != n:
        raise SingularMatrixError(f"matrix of shape {m.shape} is singular mod {field.p}")
    del reduced
    return aug


def solve(field: PrimeField, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``a @ x = b`` over ``F_p`` for square invertible ``a``."""
    a = _as_matrix(a)
    b_arr = field.element(b)
    vector_input = b_arr.ndim == 1
    if vector_input:
        b_arr = b_arr.reshape(-1, 1)
    if a.shape[0] != b_arr.shape[0]:
        raise FieldError(f"incompatible shapes {a.shape} and {b_arr.shape}")
    x = field_matmul(field, inverse(field, a), b_arr)
    return x.ravel() if vector_input else x


def determinant(field: PrimeField, matrix: np.ndarray) -> int:
    """Determinant over ``F_p`` (fraction-free elimination with pivot tracking)."""
    m = field.element(_as_matrix(matrix)).copy()
    n = m.shape[0]
    if n != m.shape[1]:
        raise FieldError(f"determinant of non-square matrix {m.shape}")
    det = 1
    for col in range(n):
        pivot_candidates = np.nonzero(m[col:, col])[0]
        if pivot_candidates.size == 0:
            return 0
        pivot_row = col + int(pivot_candidates[0])
        if pivot_row != col:
            m[[col, pivot_row]] = m[[pivot_row, col]]
            det = (-det) % field.p
        pivot = int(m[col, col])
        det = det * pivot % field.p
        inv_pivot = field.scalar_inv(pivot)
        for other in range(col + 1, n):
            if m[other, col] == 0:
                continue
            factor = field.mul(int(m[other, col]), inv_pivot)
            m[other] = field.sub(m[other], field.mul(m[col], int(factor)))
    return int(det)


def vandermonde(field: PrimeField, points: np.ndarray, n_rows: int) -> np.ndarray:
    """Vandermonde matrix ``V[i, j] = points[j]**i`` of shape ``(n_rows, len(points))``.

    With distinct evaluation points, every ``n_rows x n_rows`` column
    submatrix is invertible — exactly the MDS property DarKnight needs for
    the collusion-tolerant noise block ``A2`` (any ``M`` colluding GPUs see
    noise coefficients of full rank, so no linear combination cancels the
    masks).
    """
    pts = field.element(points).ravel()
    if len(set(int(v) for v in pts)) != pts.size:
        raise FieldError("Vandermonde points must be distinct")
    if n_rows < 1:
        raise FieldError(f"need at least one row, got {n_rows}")
    rows = [field.ones(pts.shape)]
    for _ in range(1, n_rows):
        rows.append(field.mul(rows[-1], pts))
    return np.stack(rows, axis=0)


def all_column_subsets_full_rank(
    field: PrimeField, matrix: np.ndarray, subset_size: int, max_checks: int | None = 5000
) -> bool:
    """Verify every ``subset_size``-column subset of ``matrix`` has full rank.

    Used by tests and by the strict coefficient generator to certify the
    collusion-privacy condition of Section 4.5.  ``max_checks`` bounds the
    combinatorial explosion for wide matrices; ``None`` means exhaustive.
    """
    from itertools import combinations

    m = _as_matrix(matrix)
    if subset_size > m.shape[0]:
        raise FieldError(
            f"subset size {subset_size} exceeds row count {m.shape[0]}; rank cannot be full"
        )
    checked = 0
    for cols in combinations(range(m.shape[1]), subset_size):
        if rank(field, m[:, cols]) != subset_size:
            return False
        checked += 1
        if max_checks is not None and checked >= max_checks:
            break
    return True
