"""Fixed-point quantization into ``F_p`` (the paper's Algorithm 1).

The enclave cannot mask floating-point data — a one-time pad only exists over
a finite group — so DarKnight first maps floats to fixed point and then lifts
them into ``F_p``:

* inputs and weights are scaled by ``2**l`` and rounded (``l = 8`` in the
  paper),
* biases are scaled by ``2**(2l)`` so they line up with the product scale
  after one bilinear operation,
* negatives are lifted by adding ``p`` ("Field" procedure),
* after the GPUs return, entries above ``p/2`` are re-interpreted as
  negatives and the ``2**(2l)`` scale is divided back out in two rounding
  steps (Algorithm 1, line 9).

Range discipline
----------------
Decoding is exact only while the *true* (unmasked) result stays inside
``(-p/2, p/2)``.  With ``l = 8`` this bounds the valid inner-product
magnitude at ``~2**24/2**16 = 256`` in real terms, which deep convolution
fan-ins can exceed; the paper handles VGG with dynamic max-abs normalisation
(see :mod:`repro.quantization.dynamic`).  This module raises
:class:`~repro.errors.QuantizationError` (or optionally saturates) instead of
silently wrapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.errors import QuantizationError
from repro.fieldmath import PrimeField


def round_half_up(values: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """The paper's Round procedure: fractional part < 0.5 floors, else ceils.

    Note this differs from numpy's banker's rounding (``np.rint``); ties go
    *up* exactly as in Algorithm 1 lines 12-17.  The whole pass is one
    fused ``add``/``floor`` ufunc chain over a single float64 buffer
    (``out`` when given), never a per-element Python loop.
    """
    if out is None:
        out = np.array(values, dtype=np.float64)
    else:
        np.copyto(out, values, casting="unsafe")
    out += 0.5
    return np.floor(out, out=out)


@dataclass(frozen=True)
class QuantizationConfig:
    """Parameters of the fixed-point <-> field mapping.

    Parameters
    ----------
    fractional_bits:
        ``l`` in the paper; inputs/weights use scale ``2**l``, biases and
        bilinear products ``2**(2l)``.
    field:
        Target prime field (defaults to ``p = 2**25 - 39``).
    saturate:
        When ``True`` values that exceed the signed field range are clipped
        to the boundary instead of raising.  The paper's implementation
        relies on normalisation keeping values in range; we default to the
        stricter fail-fast behaviour so silent wraparound can't corrupt an
        experiment.
    """

    fractional_bits: int = 8
    field: PrimeField = dataclass_field(default_factory=PrimeField)
    saturate: bool = False

    def __post_init__(self) -> None:
        if self.fractional_bits < 1:
            raise QuantizationError(
                f"fractional_bits must be >= 1, got {self.fractional_bits}"
            )
        if 2 ** (2 * self.fractional_bits) >= self.field.half:
            raise QuantizationError(
                f"2*l = {2 * self.fractional_bits} bits of scale leave no headroom in"
                f" a field with p = {self.field.p}"
            )

    @property
    def scale(self) -> int:
        """``2**l`` — the scale of quantized inputs and weights."""
        return 2**self.fractional_bits

    @property
    def product_scale(self) -> int:
        """``2**(2l)`` — the scale of one bilinear product (and of biases)."""
        return 2 ** (2 * self.fractional_bits)

    @property
    def resolution(self) -> float:
        """Smallest representable increment, ``2**-l``."""
        return 1.0 / self.scale

    # ------------------------------------------------------------------
    # float -> field
    # ------------------------------------------------------------------
    def _check_range(self, ints: np.ndarray, what: str) -> np.ndarray:
        """Range-guard quantized integers without materialising ``|ints|``.

        Two scalar reductions (max and min) replace the old
        ``abs -> compare -> any`` chain, so the fail-fast check allocates
        no temporaries on the hot path; ``ints`` must be a buffer this
        module owns (saturation clips it in place).
        """
        limit = self.field.half
        if self.saturate:
            return np.clip(ints, -limit, limit, out=ints)
        hi = int(np.max(ints, initial=0))
        lo = int(np.min(ints, initial=0))
        if hi > limit or -lo > limit:
            worst = float(max(hi, -lo))
            raise QuantizationError(
                f"{what} overflows the signed field range: |value| up to {worst:.0f}"
                f" exceeds p/2 = {limit}; lower fractional_bits or enable dynamic"
                " normalisation"
            )
        return ints

    def quantize(self, values: np.ndarray, *, bias: bool = False) -> np.ndarray:
        """Floats -> canonical field elements at input scale (or bias scale).

        Single-pass ufunc chain over one float64 buffer — fused
        ``multiply``/``add``/``floor``, one int64 cast, then an in-place
        signed lift (``+= p`` where negative).  The lift is bit-identical
        to :meth:`~repro.fieldmath.PrimeField.from_signed`'s modulus
        because :meth:`_check_range` has already bounded every value to
        ``[-p/2, p/2]``.
        """
        scale = self.product_scale if bias else self.scale
        scaled = np.array(values, dtype=np.float64)
        scaled *= scale
        scaled += 0.5
        np.floor(scaled, out=scaled)
        ints = scaled.astype(np.int64)
        ints = self._check_range(ints, "bias" if bias else "input")
        np.add(ints, self.field.p, out=ints, where=ints < 0)
        return ints

    def quantize_weights(self, values: np.ndarray) -> np.ndarray:
        """Alias of :meth:`quantize` for readability at call sites."""
        return self.quantize(values)

    # ------------------------------------------------------------------
    # field -> float
    # ------------------------------------------------------------------
    def _signed_inplace(self, elements: np.ndarray) -> np.ndarray:
        """Centre-lift into a fresh int64 buffer, then fix it up in place.

        Equivalent to :meth:`~repro.fieldmath.PrimeField.to_signed` bit
        for bit, but the ``arr - p`` branch writes into the modulus
        result instead of materialising a ``np.where`` triple.
        """
        signed = np.asarray(self.field.element(elements))
        np.subtract(signed, self.field.p, out=signed, where=signed > self.field.half)
        return signed

    def dequantize(self, elements: np.ndarray) -> np.ndarray:
        """Field elements at input scale back to floats (in-place chain)."""
        out = self._signed_inplace(elements).astype(np.float64)
        out /= self.scale
        return out

    def dequantize_product(self, elements: np.ndarray) -> np.ndarray:
        """Field elements at product scale (``2**2l``) back to floats.

        Implements Algorithm 1 line 9: ``Round(Y_q * 2**-l) * 2**-l`` — one
        rounding division by ``2**l`` followed by a float division, which
        matches the reference implementation bit for bit.  The whole pass
        is one ufunc chain over a single float64 buffer: divide, add 0.5,
        floor, divide — ``2**l`` divisions are exact in float64, so the
        in-place form changes no bits.
        """
        out = self._signed_inplace(elements).astype(np.float64)
        out /= self.scale
        np.add(out, 0.5, out=out)
        np.floor(out, out=out)
        out /= self.scale
        return out

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def headroom(self, max_abs_product: float) -> float:
        """How much of the signed range a worst-case product magnitude uses.

        ``max_abs_product`` is in *real* units (pre-quantization); values
        ``> 1.0`` mean a decode of that magnitude would be ambiguous.
        """
        return (max_abs_product * self.product_scale) / self.field.half

    def max_safe_product(self) -> float:
        """Largest real-valued bilinear result that decodes unambiguously."""
        return self.field.half / self.product_scale

    def quantization_error_bound(self) -> float:
        """Worst-case absolute rounding error for a single quantized value."""
        return 0.5 * self.resolution
