"""Dynamic max-abs normalisation for models without batch-norm (VGG).

Section 5 of the paper: "for VGG models a slightly different quantization is
used to dynamically normalize the values of inputs and weights if they pass
the limits ... by dividing them to the maximum absolute entry of the vector."
ResNet/MobileNet keep activations in range via normalisation layers and use
the static scheme.

The normaliser divides a tensor by its max-abs (when that exceeds a target
ceiling), remembers the factor, and multiplies the factor back into decoded
bilinear results.  Because the masked computation is linear, scaling an input
by ``1/c`` scales every decoded product by ``1/c`` exactly, so the round trip
is lossless apart from the usual fixed-point rounding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError


@dataclass(frozen=True)
class Normalization:
    """The scale factor applied to one tensor (1.0 means untouched)."""

    factor: float

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Scale values down by the stored factor."""
        if self.factor == 1.0:
            return np.asarray(values, dtype=np.float64)
        return np.asarray(values, dtype=np.float64) / self.factor

    def unapply_product(self, values: np.ndarray, other: "Normalization") -> np.ndarray:
        """Restore a bilinear product of two normalised operands."""
        scale = self.factor * other.factor
        if scale == 1.0:
            return np.asarray(values, dtype=np.float64)
        return np.asarray(values, dtype=np.float64) * scale


IDENTITY = Normalization(1.0)


class DynamicNormalizer:
    """Per-tensor max-abs normalisation with a configurable ceiling.

    Parameters
    ----------
    ceiling:
        Tensors whose max-abs exceeds this are divided down to it.  The
        default 1.0 reproduces the paper's "divide by the maximum absolute
        entry" rule; larger ceilings trade headroom for resolution.
    """

    def __init__(self, ceiling: float = 1.0) -> None:
        if ceiling <= 0:
            raise QuantizationError(f"ceiling must be positive, got {ceiling}")
        self.ceiling = float(ceiling)

    def normalize(self, values: np.ndarray) -> tuple[np.ndarray, Normalization]:
        """Return ``(scaled_values, normalization)``.

        Only scales when needed so well-behaved tensors keep full
        fixed-point resolution.
        """
        arr = np.asarray(values, dtype=np.float64)
        max_abs = float(np.max(np.abs(arr))) if arr.size else 0.0
        if max_abs <= self.ceiling or max_abs == 0.0:
            return arr, IDENTITY
        norm = Normalization(max_abs / self.ceiling)
        return norm.apply(arr), norm
