"""Dynamic max-abs normalisation for models without batch-norm (VGG).

Section 5 of the paper: "for VGG models a slightly different quantization is
used to dynamically normalize the values of inputs and weights if they pass
the limits ... by dividing them to the maximum absolute entry of the vector."
ResNet/MobileNet keep activations in range via normalisation layers and use
the static scheme.

The normaliser divides a tensor by its max-abs (when that exceeds a target
ceiling), remembers the factor, and multiplies the factor back into decoded
bilinear results.  Because the masked computation is linear, scaling an input
by ``1/c`` scales every decoded product by ``1/c`` exactly, so the round trip
is lossless apart from the usual fixed-point rounding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError


@dataclass(frozen=True)
class Normalization:
    """The scale applied to one tensor (1.0 means untouched).

    ``factor`` is a scalar for whole-tensor normalisation, or a broadcast
    array of shape ``(n, 1, ...)`` for per-sample normalisation (one factor
    per leading row; see :meth:`DynamicNormalizer.normalize_rows`).
    """

    factor: float | np.ndarray

    @property
    def is_identity(self) -> bool:
        """True when applying this normalisation is a no-op."""
        return np.isscalar(self.factor) and self.factor == 1.0

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Scale values down by the stored factor."""
        if self.is_identity:
            return np.asarray(values, dtype=np.float64)
        return np.asarray(values, dtype=np.float64) / self.factor

    def unapply_product(self, values: np.ndarray, other: "Normalization") -> np.ndarray:
        """Restore a bilinear product of two normalised operands."""
        if self.is_identity and other.is_identity:
            return np.asarray(values, dtype=np.float64)
        scale = self.factor * other.factor
        return np.asarray(values, dtype=np.float64) * scale


IDENTITY = Normalization(1.0)


class DynamicNormalizer:
    """Per-tensor max-abs normalisation with a configurable ceiling.

    Parameters
    ----------
    ceiling:
        Tensors whose max-abs exceeds this are divided down to it.  The
        default 1.0 reproduces the paper's "divide by the maximum absolute
        entry" rule; larger ceilings trade headroom for resolution.
    """

    def __init__(self, ceiling: float = 1.0) -> None:
        if ceiling <= 0:
            raise QuantizationError(f"ceiling must be positive, got {ceiling}")
        self.ceiling = float(ceiling)

    def normalize(self, values: np.ndarray) -> tuple[np.ndarray, Normalization]:
        """Return ``(scaled_values, normalization)``.

        Only scales when needed so well-behaved tensors keep full
        fixed-point resolution.
        """
        arr = np.asarray(values, dtype=np.float64)
        max_abs = float(np.max(np.abs(arr))) if arr.size else 0.0
        if max_abs <= self.ceiling or max_abs == 0.0:
            return arr, IDENTITY
        norm = Normalization(max_abs / self.ceiling)
        return norm.apply(arr), norm

    def normalize_rows(self, values: np.ndarray) -> tuple[np.ndarray, Normalization]:
        """Per-sample variant: one independent factor per leading row.

        Each row (sample slot) is scaled by *its own* max-abs, so a sample's
        quantization — and therefore its decoded result — never depends on
        what else happens to share its virtual batch.  That makes served
        logits invariant to batch composition (the property multi-shard
        routing relies on for bit-identical outputs) and closes the
        cross-tenant side channel where one tenant's data range perturbs a
        co-batched tenant's low-order logit bits.  Inference-only: the
        backward pass needs a scalar batch factor to unscale aggregated
        gradients.
        """
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim < 2 or arr.size == 0:
            # A sample with no feature axes has no meaningful per-row
            # factor shape; fall back to the scalar whole-tensor rule.
            return self.normalize(arr)
        axes = tuple(range(1, arr.ndim))
        max_abs = np.max(np.abs(arr), axis=axes, keepdims=True)
        factors = np.where(max_abs > self.ceiling, max_abs / self.ceiling, 1.0)
        if np.all(factors == 1.0):
            return arr, IDENTITY
        norm = Normalization(factors)
        return arr / factors, norm
