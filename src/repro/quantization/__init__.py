"""Fixed-point quantization into the field (Algorithm 1) + dynamic scaling."""

from repro.quantization.dynamic import IDENTITY, DynamicNormalizer, Normalization
from repro.quantization.fixed_point import QuantizationConfig, round_half_up

__all__ = [
    "QuantizationConfig",
    "round_half_up",
    "DynamicNormalizer",
    "Normalization",
    "IDENTITY",
]
