"""DarKnight's core: matrix-masking encode/decode, integrity, virtual batches."""

from repro.masking.backward import BackwardDecoder, BackwardEncoder, reference_aggregate
from repro.masking.coefficients import CoefficientSet
from repro.masking.forward import EncodedBatch, ForwardDecoder, ForwardEncoder
from repro.masking.integrity import IntegrityReport, IntegrityVerifier
from repro.masking.virtual_batch import VirtualBatch, iter_virtual_batches, n_virtual_batches

__all__ = [
    "CoefficientSet",
    "ForwardEncoder",
    "ForwardDecoder",
    "EncodedBatch",
    "BackwardEncoder",
    "BackwardDecoder",
    "reference_aggregate",
    "IntegrityVerifier",
    "IntegrityReport",
    "VirtualBatch",
    "iter_virtual_batches",
    "n_virtual_batches",
]
