"""Forward-pass masking: encode a virtual batch, decode GPU results.

Section 4.1 of the paper.  Given ``K`` quantized inputs ``x(1)..x(K)`` (field
elements) the enclave computes ``n_shares`` masked shares

    x̄(j) = Σ_i A[i, j]·x(i) + Σ_m A[K+m, j]·r(m)          (Equation 1/10)

and sends exactly one share to each GPU.  Because the offloaded operator
``<W, ·>`` is bilinear, the stacked GPU outputs satisfy
``Ȳ = <W, [X R]>·A``, so the enclave recovers ``[Y | W·R] = Ȳ_J · A_J^{-1}``
from any invertible ``(K+M)``-column subset ``J`` and simply drops the
``W·R`` columns (the paper: "we extract W·r, but that value is just
dropped" — the 1/K extra compute that buys perfect privacy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecodingError, EncodingError
from repro.fieldmath import FieldRng, field_matmul
from repro.masking.coefficients import CoefficientSet
from repro.precompute.scratch import active_scratch


@dataclass(frozen=True)
class EncodedBatch:
    """The masked shares for one virtual batch.

    Attributes
    ----------
    shares:
        Field array of shape ``(n_shares, *feature_shape)``; ``shares[j]``
        goes to GPU ``j`` and — per the privacy theorem — is marginally
        uniform over the field.
    noise:
        The ``M`` noise vectors (shape ``(m, *feature_shape)``).  Kept only
        inside the enclave; exposed here for tests and analysis.
    coefficients:
        The secret coefficient set that produced the shares.
    """

    shares: np.ndarray
    noise: np.ndarray
    coefficients: CoefficientSet

    @property
    def feature_shape(self) -> tuple[int, ...]:
        """Per-sample tensor shape (whatever the layer consumes)."""
        return tuple(self.shares.shape[1:])

    def share_for_gpu(self, gpu_index: int) -> np.ndarray:
        """The single share GPU ``gpu_index`` is allowed to see."""
        return self.shares[gpu_index]


class ForwardEncoder:
    """Encodes virtual batches under a given coefficient set."""

    def __init__(self, coefficients: CoefficientSet, rng: FieldRng) -> None:
        if coefficients.field is not rng.field and coefficients.field.p != rng.field.p:
            raise EncodingError("coefficient set and RNG use different fields")
        self.coefficients = coefficients
        self._rng = rng

    def encode(self, inputs: np.ndarray, noise: np.ndarray | None = None) -> EncodedBatch:
        """Mask ``inputs`` of shape ``(K, *feature_shape)``.

        Parameters
        ----------
        inputs:
            Canonical field elements, one row per real input.
        noise:
            Optional pre-drawn noise ``(M, *feature_shape)`` — used by tests
            for determinism; normally drawn fresh per batch as the paper
            requires.
        """
        coeffs = self.coefficients
        field = coeffs.field
        inputs = np.asarray(inputs, dtype=np.int64)
        if inputs.shape[0] != coeffs.k:
            raise EncodingError(
                f"expected {coeffs.k} inputs per virtual batch, got {inputs.shape[0]}"
            )
        if not field.is_canonical(inputs):
            raise EncodingError("inputs must be canonical field elements; quantize first")
        feature_shape = inputs.shape[1:]
        if noise is None:
            noise = self._rng.uniform((coeffs.m,) + feature_shape)
        else:
            noise = np.asarray(noise, dtype=np.int64)
            if noise.shape != (coeffs.m,) + feature_shape:
                raise EncodingError(
                    f"noise shape {noise.shape} does not match ({coeffs.m},"
                    f" *{feature_shape})"
                )
            if not field.is_canonical(noise):
                raise EncodingError("noise must be canonical field elements")

        # One GEMM in the transposed form shares = A^T @ [X R]: the
        # (n_sources, features) source block stays contiguous and no
        # (features, n_shares) intermediate needs re-transposing — same
        # exact field sums as (flat^T @ A)^T, so bit-identical shares.
        # The stacked source block never escapes this call, so it may live
        # in a recycled scratch buffer (precompute mode's zero-allocation
        # steady state); the shares themselves are always fresh.
        scratch = active_scratch()
        if scratch is not None:
            sources = scratch.get(
                "fwd_sources", (coeffs.n_sources,) + feature_shape, np.int64
            )
            np.concatenate([inputs, noise], axis=0, out=sources)
        else:
            sources = np.concatenate([inputs, noise], axis=0)
        flat = sources.reshape(coeffs.n_sources, -1)  # (k+m, features)
        shares_flat = field_matmul(field, coeffs.a.T, flat)  # (n_shares, features)
        shares = shares_flat.reshape((coeffs.n_shares,) + feature_shape)
        return EncodedBatch(shares=shares, noise=noise, coefficients=coeffs)


class ForwardDecoder:
    """Recovers true linear-op outputs from masked GPU results."""

    def __init__(self, coefficients: CoefficientSet) -> None:
        self.coefficients = coefficients

    def decode(
        self,
        gpu_outputs: np.ndarray,
        subset: tuple[int, ...] | None = None,
        return_noise_product: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Decode stacked GPU outputs back to the ``K`` true results.

        Parameters
        ----------
        gpu_outputs:
            Field array ``(n_shares, *out_shape)`` — ``gpu_outputs[j]`` is
            GPU ``j``'s result on share ``j``.  When a subset is given, rows
            must still be indexed by absolute share id (the decoder picks the
            subset's rows itself).
        subset:
            Which ``k+m`` shares to decode from (default: primary subset).
        return_noise_product:
            Also return the recovered ``<W, r>`` columns; integrity checks
            compare these across subsets too.
        """
        coeffs = self.coefficients
        field = coeffs.field
        outputs = np.asarray(gpu_outputs, dtype=np.int64)
        if outputs.shape[0] != coeffs.n_shares:
            raise DecodingError(
                f"expected outputs from all {coeffs.n_shares} shares (indexed by"
                f" share id), got {outputs.shape[0]} rows"
            )
        subset = coeffs.primary_subset if subset is None else tuple(subset)
        decode_matrix = coeffs.decoding_matrix(subset)
        out_shape = outputs.shape[1:]
        # Transposed decode [Y | WR] = D^T @ Ȳ_J: one GEMM on contiguous
        # rows, no feature-major intermediate (bit-identical sums).  The
        # gathered subset rows are kernel-local, so they may reuse scratch.
        flat_outputs = outputs.reshape(coeffs.n_shares, -1)
        scratch = active_scratch()
        if scratch is not None:
            selected = scratch.get(
                "dec_selected", (len(subset), flat_outputs.shape[1]), np.int64
            )
            np.take(flat_outputs, list(subset), axis=0, out=selected)
        else:
            selected = flat_outputs[list(subset)]
        recovered = field_matmul(field, decode_matrix.T, selected)  # (k+m, features)
        recovered = recovered.reshape((coeffs.n_sources,) + out_shape)
        results = recovered[: coeffs.k]
        if return_noise_product:
            return results, recovered[coeffs.k :]
        return results
