"""Coefficient matrices ``A``, ``B``, ``Gamma`` for DarKnight masking.

One :class:`CoefficientSet` captures everything Sections 4.1-4.5 of the paper
need for a single virtual batch:

* ``A`` (``(K+M) x n_shares``) — encoding coefficients.  Rows ``0..K-1``
  (the paper's ``A1``) weight the real inputs, rows ``K..K+M-1`` (``A2``)
  weight the ``M`` uniform noise vectors.  Share ``j`` is
  ``x̄(j) = Σ_i A[i, j]·x(i) + Σ_m A[K+m, j]·r(m)``.
* ``Gamma`` (diagonal, one ``γ_j`` per share) and ``B`` (``n_shares x K``)
  satisfying the paper's Equation 5/13 constraint
  ``Bᵀ·Γ·Aᵀ = [I_K | 0_{K x M}]`` which makes the backward decode a plain
  ``Σ_j γ_j·Eq_j``.
* ``n_shares = K + M + extra`` where ``extra >= 1`` adds the redundant
  equations used for integrity verification (Section 4.4).

Collusion safety (Section 4.5) requires that any ``<= M``-column subset of
``A2`` be full rank; a merely random ``A2`` only satisfies this with high
probability, so by default we build ``A2`` as a Vandermonde (MDS) matrix
where the property holds *by construction*.

The enclave keeps ``A`` and ``Gamma`` secret; ``B`` is public (the paper:
"we do not need to protect matrix B in the enclave").
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.errors import EncodingError, SingularMatrixError
from repro.fieldmath import (
    FieldRng,
    PrimeField,
    all_column_subsets_full_rank,
    field_matmul,
    inverse,
    is_invertible,
)


def _recovery_target(field: PrimeField, k: int, m: int) -> np.ndarray:
    """The ``[I_K | 0_{K x M}]`` right-hand side of Equation 5/13."""
    target = field.zeros((k, k + m))
    target[:k, :k] = field.eye(k)
    return target


@dataclass(frozen=True)
class CoefficientSet:
    """Per-virtual-batch masking coefficients (enclave-secret unless noted).

    Attributes
    ----------
    field:
        Prime field all matrices live in.
    k:
        Virtual batch size (number of real inputs combined per share).
    m:
        Number of noise vectors = collusion tolerance.
    a:
        Encoding matrix, shape ``(k + m, n_shares)``.  **Secret.**
    gamma:
        Per-share decoding scalars ``γ_j``, shape ``(n_shares,)``.  **Secret.**
    b:
        Gradient-combination matrix, shape ``(n_shares, k)``.  Public.
    primary_subset:
        The ``k + m`` share indices used for the default decode; its ``A``
        column submatrix is invertible by construction.
    """

    field: PrimeField
    k: int
    m: int
    a: np.ndarray
    gamma: np.ndarray
    b: np.ndarray
    primary_subset: tuple[int, ...]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        rng: FieldRng,
        k: int,
        m: int = 1,
        extra_shares: int = 0,
        mds_noise: bool = True,
        certify_collusion: bool = False,
    ) -> "CoefficientSet":
        """Sample a fresh coefficient set.

        Parameters
        ----------
        rng:
            Seeded field sampler (one per enclave session).
        k:
            Virtual batch size, ``>= 1``.
        m:
            Noise vectors / collusion tolerance, ``>= 1``.  ``m=1`` is the
            paper's base scheme of Section 4.1.
        extra_shares:
            Redundant equations for integrity (Section 4.4 uses 1).
        mds_noise:
            Build ``A2`` as a Vandermonde matrix so the collusion-privacy
            rank condition holds by construction rather than w.h.p.
        certify_collusion:
            Exhaustively check the ``<= m``-column-subset rank condition
            (slow for wide matrices; tests use it, production trusts MDS).
        """
        if k < 1:
            raise EncodingError(f"virtual batch size must be >= 1, got {k}")
        if m < 1:
            raise EncodingError(
                f"at least one noise vector is required for privacy, got m={m}"
            )
        if extra_shares < 0:
            raise EncodingError(f"extra_shares must be >= 0, got {extra_shares}")
        field = rng.field
        n_shares = k + m + extra_shares
        if n_shares >= field.p:
            raise EncodingError("share count exceeds field size")

        s = k + m
        for _ in range(FieldRng.MAX_REJECTIONS):
            a1 = rng.uniform((k, n_shares))
            a2 = rng.mds_matrix(m, n_shares) if mds_noise else rng.uniform((m, n_shares))
            a = np.vstack([a1, a2])
            # The primary decode uses the first s shares; resample until that
            # submatrix is invertible (failure probability ~ s/p per draw).
            if is_invertible(field, a[:, :s]):
                break
        else:  # pragma: no cover - probability ~ (s/p)^64
            raise EncodingError("failed to sample an invertible encoding submatrix")

        if certify_collusion and not all_column_subsets_full_rank(field, a2, min(m, n_shares)):
            raise EncodingError("noise block A2 violates the collusion rank condition")

        gamma = rng.nonzero((n_shares,))
        primary = tuple(range(s))
        b = cls._solve_b(field, a, gamma, k, m, primary)
        return cls(field=field, k=k, m=m, a=a, gamma=gamma, b=b, primary_subset=primary)

    @staticmethod
    def _solve_b(
        field: PrimeField,
        a: np.ndarray,
        gamma: np.ndarray,
        k: int,
        m: int,
        subset: tuple[int, ...],
    ) -> np.ndarray:
        """Solve ``Bᵀ·Γ·Aᵀ = [I | 0]`` with support restricted to ``subset``.

        For the share indices in ``subset`` (``|subset| = k + m``, ``A``
        columns invertible) we need
        ``B_Jᵀ · Γ_J · A_Jᵀ = [I | 0]``, i.e.
        ``B_Jᵀ = [I | 0] · (Γ_J · A_Jᵀ)^{-1}``.  Shares outside the subset
        get zero columns in ``Bᵀ`` — they do not participate in the primary
        gradient decode (the integrity share is redundant by design).
        """
        n_shares = a.shape[1]
        a_j = a[:, list(subset)]
        gamma_j = np.diag(gamma[list(subset)])
        target = _recovery_target(field, k, m)
        try:
            core = inverse(field, field_matmul(field, gamma_j, a_j.T))
        except SingularMatrixError as exc:
            raise EncodingError(
                "selected share subset cannot support gradient decoding"
            ) from exc
        b_t_subset = field_matmul(field, target, core)  # (k, k+m)
        b = field.zeros((n_shares, k))
        for local, share in enumerate(subset):
            b[share, :] = b_t_subset[:, local]
        return b

    # ------------------------------------------------------------------
    # derived properties
    # ------------------------------------------------------------------
    @property
    def n_shares(self) -> int:
        """Total encoded shares (== GPUs receiving data), ``k + m + extra``."""
        return self.a.shape[1]

    @property
    def n_sources(self) -> int:
        """Rows of ``A``: real inputs plus noise vectors, ``k + m``."""
        return self.k + self.m

    @property
    def extra_shares(self) -> int:
        """Redundant shares available for integrity checking."""
        return self.n_shares - self.n_sources

    @property
    def a1(self) -> np.ndarray:
        """Input-coefficient block (paper's ``A1``), shape ``(k, n_shares)``."""
        return self.a[: self.k]

    @property
    def a2(self) -> np.ndarray:
        """Noise-coefficient block (paper's ``A2``), shape ``(m, n_shares)``."""
        return self.a[self.k :]

    # ------------------------------------------------------------------
    # decode-subset management
    # ------------------------------------------------------------------
    def decoding_matrix(self, subset: tuple[int, ...] | None = None) -> np.ndarray:
        """``A[:, subset]^{-1}`` for a ``k+m``-sized invertible share subset.

        Memoized per subset: the field inverse is deterministic and ``A``
        is frozen, so serving windows that decode thousands of batches
        under one cached coefficient set pay the Gauss–Jordan inversion
        once — part of the offline/online split's "coefficient material".
        """
        subset = self.primary_subset if subset is None else tuple(subset)
        if len(subset) != self.n_sources:
            raise EncodingError(
                f"decoding needs exactly {self.n_sources} shares, got {len(subset)}"
            )
        cache = self.__dict__.get("_decode_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_decode_cache", cache)
        cached = cache.get(subset)
        if cached is not None:
            return cached
        sub = self.a[:, list(subset)]
        try:
            matrix = inverse(self.field, sub)
        except SingularMatrixError as exc:
            raise EncodingError(f"share subset {subset} is not decodable") from exc
        cache[subset] = matrix
        return matrix

    def iter_decoding_subsets(self, limit: int | None = None):
        """Yield invertible ``k+m``-sized share subsets (primary first).

        Integrity verification decodes from at least two of these and
        compares.  ``limit`` caps the enumeration for wide share sets.
        """
        yielded = 0
        seen_primary = False
        for subset in combinations(range(self.n_shares), self.n_sources):
            if subset == self.primary_subset:
                seen_primary = True
            if is_invertible(self.field, self.a[:, list(subset)]):
                yield subset
                yielded += 1
                if limit is not None and yielded >= limit:
                    return
        if not seen_primary:  # pragma: no cover - primary is always a combination
            raise EncodingError("primary subset missing from enumeration")

    def backward_matrices_for_subset(
        self, subset: tuple[int, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(B, Gamma)`` pair supported on an alternative share subset.

        Lets the integrity path decode the aggregate gradient twice from
        disjoint-enough share subsets and cross-check.
        """
        b = self._solve_b(self.field, self.a, self.gamma, self.k, self.m, tuple(subset))
        return b, self.gamma

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def verify(self) -> bool:
        """Check the Equation 5/13 constraint ``Bᵀ·Γ·Aᵀ = [I | 0]`` exactly."""
        lhs = field_matmul(
            self.field,
            field_matmul(self.field, self.b.T, np.diag(self.gamma)),
            self.a.T,
        )
        return bool(np.array_equal(lhs, _recovery_target(self.field, self.k, self.m)))

    def collusion_tolerance(self) -> int:
        """``M`` — how many colluding GPUs leak nothing (Section 4.5)."""
        return self.m
