"""Backward-pass masking: gradient combination and aggregate-update decode.

Section 4.2 of the paper.  Weight updates need ``Σ_i <δ(i), x(i)>`` but the
``x(i)`` live on the GPUs only in masked form.  DarKnight's insight: training
only needs the *batch-aggregate* update, so each GPU ``j`` computes

    Eq_j = < Σ_i B[j, i]·δ(i),  x̄(j) >                    (Equation 4/11)

on its single share, and — because ``Bᵀ·Γ·Aᵀ = [I | 0]`` — the enclave
decodes the aggregate exactly as ``Σ_j γ_j·Eq_j`` (Equation 6, proved via the
trace identity in Section 4.3).  Individual per-input gradients are never
materialised anywhere, which doubles as secure aggregation.

``B`` is public: combining public gradients ``δ(i)`` with public scalars has
no privacy implication (the sensitive factor is ``x̄(j)``, already masked).

Every product here funnels through :func:`repro.fieldmath.field_matmul`, so
the combine/decode GEMMs run on the configured field-op backend (the default
``"limb"`` backend executes them as float64 BLAS GEMMs, bit-identical to the
generic chunked path).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import DecodingError, EncodingError
from repro.fieldmath import field_matmul
from repro.masking.coefficients import CoefficientSet

#: A bilinear operator ``(delta, x) -> grad_w`` in the field, e.g. the
#: outer product for dense layers or a correlation for convolutions.
BilinearOp = Callable[[np.ndarray, np.ndarray], np.ndarray]


class BackwardEncoder:
    """Combines per-input gradients with the public ``B`` coefficients.

    In the real system the GPUs perform this combination themselves (``B`` is
    shipped to them); the simulator centralises it here so both the GPU
    device and tests share one implementation.
    """

    def __init__(self, coefficients: CoefficientSet) -> None:
        self.coefficients = coefficients

    def combine_deltas(self, deltas: np.ndarray, share_index: int) -> np.ndarray:
        """``δ̄(j) = Σ_i B[j, i]·δ(i)`` for one share ``j``."""
        coeffs = self.coefficients
        deltas = np.asarray(deltas, dtype=np.int64)
        if deltas.shape[0] != coeffs.k:
            raise EncodingError(
                f"expected {coeffs.k} per-input gradients, got {deltas.shape[0]}"
            )
        if not (0 <= share_index < coeffs.n_shares):
            raise EncodingError(f"share index {share_index} out of range")
        flat = deltas.reshape(coeffs.k, -1)
        row = coeffs.b[share_index].reshape(1, coeffs.k)
        combined = field_matmul(coeffs.field, row, flat)
        return combined.reshape(deltas.shape[1:])

    def combine_all(self, deltas: np.ndarray) -> np.ndarray:
        """All combined gradients at once, shape ``(n_shares, *delta_shape)``."""
        coeffs = self.coefficients
        deltas = np.asarray(deltas, dtype=np.int64)
        if deltas.shape[0] != coeffs.k:
            raise EncodingError(
                f"expected {coeffs.k} per-input gradients, got {deltas.shape[0]}"
            )
        flat = deltas.reshape(coeffs.k, -1)
        combined = field_matmul(coeffs.field, coeffs.b, flat)
        return combined.reshape((coeffs.n_shares,) + deltas.shape[1:])


class BackwardDecoder:
    """Recovers the aggregate weight update from the GPUs' ``Eq_j`` values."""

    def __init__(self, coefficients: CoefficientSet) -> None:
        self.coefficients = coefficients

    def decode(self, equations: np.ndarray) -> np.ndarray:
        """``Σ_j γ_j·Eq_j`` over the field — the (un-averaged) batch update.

        Parameters
        ----------
        equations:
            Field array ``(n_shares, *grad_shape)`` of per-GPU ``Eq_j``
            results, indexed by share id.  Shares outside the coefficient
            set's primary subset have zero ``B`` rows, so they contribute
            nothing (their ``Eq_j`` is redundancy for integrity).

        Returns
        -------
        The field-encoded ``Σ_i <δ(i), x(i)>``; divide by ``K`` *after*
        dequantization (the ``1/K`` average lives outside the field).
        """
        coeffs = self.coefficients
        equations = np.asarray(equations, dtype=np.int64)
        if equations.shape[0] != coeffs.n_shares:
            raise DecodingError(
                f"expected {coeffs.n_shares} equations, got {equations.shape[0]}"
            )
        flat = equations.reshape(coeffs.n_shares, -1)
        gamma_row = coeffs.gamma.reshape(1, coeffs.n_shares)
        aggregate = field_matmul(coeffs.field, gamma_row, flat)
        return aggregate.reshape(equations.shape[1:])

    def decode_many(self, equations: np.ndarray) -> np.ndarray:
        """Decode ``R`` independent equation sets in one gamma GEMM.

        Parameters
        ----------
        equations:
            Field array ``(R, n_shares, *grad_shape)`` — one ``Eq_j`` set
            per virtual batch (or per layer, when shapes match).  The
            share axis of every set is contracted against the same
            ``gamma`` row in a single ``(1, S) @ (S, R*F)`` product, so
            the per-set decode loop disappears; each slice of the result
            is bit-identical to :meth:`decode` of the matching set (field
            arithmetic is exact, so batching cannot change any value).

        Returns
        -------
        Field array ``(R, *grad_shape)`` of aggregates, one per set.
        """
        coeffs = self.coefficients
        equations = np.asarray(equations, dtype=np.int64)
        if equations.ndim < 2 or equations.shape[1] != coeffs.n_shares:
            raise DecodingError(
                f"expected (R, {coeffs.n_shares}, *grad_shape) equations,"
                f" got shape {equations.shape}"
            )
        r = equations.shape[0]
        if r == 0:
            return np.zeros((0,) + equations.shape[2:], dtype=np.int64)
        # (R, S, F) -> (S, R*F): the share axis leads, every set's
        # payload flattens side by side under one contraction.
        flat = equations.reshape(r, coeffs.n_shares, -1)
        stacked = flat.transpose(1, 0, 2).reshape(coeffs.n_shares, -1)
        gamma_row = coeffs.gamma.reshape(1, coeffs.n_shares)
        aggregate = field_matmul(coeffs.field, gamma_row, stacked)
        return aggregate.reshape((r,) + equations.shape[2:])

    def decode_with_matrices(
        self, equations: np.ndarray, b: np.ndarray, gamma: np.ndarray
    ) -> np.ndarray:
        """Decode using an alternative ``(B, Gamma)`` pair (integrity path).

        The ``B`` argument is accepted for interface symmetry with
        :meth:`CoefficientSet.backward_matrices_for_subset`; only ``gamma``
        weights enter the decode (``B`` acted GPU-side).
        """
        del b  # combination already happened GPU-side under this B
        coeffs = self.coefficients
        equations = np.asarray(equations, dtype=np.int64)
        if equations.shape[0] != coeffs.n_shares:
            raise DecodingError(
                f"expected {coeffs.n_shares} equations, got {equations.shape[0]}"
            )
        flat = equations.reshape(coeffs.n_shares, -1)
        gamma_row = np.asarray(gamma, dtype=np.int64).reshape(1, coeffs.n_shares)
        aggregate = field_matmul(coeffs.field, gamma_row, flat)
        return aggregate.reshape(equations.shape[1:])


def reference_aggregate(
    field, deltas: np.ndarray, inputs: np.ndarray, op: BilinearOp
) -> np.ndarray:
    """Unmasked ``Σ_i <δ(i), x(i)>`` — the ground truth the decode must equal.

    Used by tests and by the SGX-only baseline.  ``op`` is the same bilinear
    operator the GPUs apply to masked operands.
    """
    deltas = np.asarray(deltas, dtype=np.int64)
    inputs = np.asarray(inputs, dtype=np.int64)
    if deltas.shape[0] != inputs.shape[0]:
        raise EncodingError(
            f"gradient count {deltas.shape[0]} != input count {inputs.shape[0]}"
        )
    if deltas.shape[0] == 0:
        raise EncodingError("cannot aggregate an empty batch")
    # The bilinear op stays per-sample (its signature is pairwise), but the
    # reduction is one stacked sum + one modular pass instead of a chained
    # field.add per sample: each term is canonical (< p < 2**25), so even
    # millions of terms sum exactly inside int64 before the reduction.
    terms = np.stack([op(delta, x) for delta, x in zip(deltas, inputs)])
    return field.element(terms.sum(axis=0, dtype=np.int64))
