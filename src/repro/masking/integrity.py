"""Computational-integrity verification via redundant shares (Section 4.4).

With ``K + M + 1`` shares there are ``K + M + 1`` linear equations for
``K + M`` unknowns, so every result is recoverable from at least two distinct
share subsets.  An honest system decodes identically from all of them; any
disagreement proves at least one GPU returned a tampered result.  This gives
the paper's ``(K'-1)``-security: *detection* succeeds even if all but one GPU
lies (the decodes cannot all agree unless the lies are consistent with the
secret ``A``, which the adversary cannot know).

Beyond detection, with enough redundancy the verifier can *localise* faults:
a share whose exclusion restores consistency across every remaining subset is
the culprit.  The paper leaves corrective action out of scope; we expose the
suspect list so callers can re-dispatch work.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.errors import IntegrityError
from repro.masking.coefficients import CoefficientSet
from repro.masking.forward import ForwardDecoder


@dataclass(frozen=True)
class IntegrityReport:
    """Outcome of a redundant-decode verification."""

    consistent: bool
    subsets_checked: int
    suspected_shares: tuple[int, ...] = dataclass_field(default=())

    def raise_on_failure(self) -> None:
        """Raise :class:`IntegrityError` when verification failed."""
        if not self.consistent:
            raise IntegrityError(
                "GPU results are inconsistent across decode subsets; suspected"
                f" shares: {list(self.suspected_shares) or 'undetermined'}"
            )


class IntegrityVerifier:
    """Cross-checks GPU results by decoding from multiple share subsets.

    Parameters
    ----------
    coefficients:
        Must carry at least one extra share (``extra_shares >= 1``);
        otherwise only a single decode subset may exist and tampering on the
        unique subset is undetectable.
    max_subsets:
        Upper bound on how many invertible subsets to compare.  Two already
        provide detection; more improve localisation.
    """

    def __init__(self, coefficients: CoefficientSet, max_subsets: int = 8) -> None:
        if coefficients.extra_shares < 1:
            raise IntegrityError(
                "integrity verification requires at least one redundant share"
                f" (K+M+1 GPUs); got {coefficients.n_shares} shares for"
                f" {coefficients.n_sources} sources"
            )
        if max_subsets < 2:
            raise IntegrityError(f"need at least 2 subsets to compare, got {max_subsets}")
        self.coefficients = coefficients
        self.max_subsets = max_subsets
        self._decoder = ForwardDecoder(coefficients)

    # ------------------------------------------------------------------
    # forward-pass verification
    # ------------------------------------------------------------------
    def verify_forward(self, gpu_outputs: np.ndarray) -> IntegrityReport:
        """Decode ``gpu_outputs`` from several subsets and compare everything.

        Comparison covers the recovered ``Y`` *and* the ``W·r`` noise
        products — a tamper that only perturbs the noise coordinate of one
        subset would otherwise slip through.
        """
        subsets = list(
            self.coefficients.iter_decoding_subsets(limit=self.max_subsets)
        )
        if len(subsets) < 2:
            raise IntegrityError(
                "coefficient set admits fewer than two decode subsets;"
                " cannot verify"
            )
        decoded = {}
        for subset in subsets:
            y, noise_product = self._decoder.decode(
                gpu_outputs, subset=subset, return_noise_product=True
            )
            decoded[subset] = np.concatenate(
                [y.reshape(y.shape[0], -1), noise_product.reshape(noise_product.shape[0], -1)]
            )
        reference_subset = subsets[0]
        reference = decoded[reference_subset]
        mismatching = [
            subset
            for subset in subsets[1:]
            if not np.array_equal(decoded[subset], reference)
        ]
        if not mismatching:
            return IntegrityReport(consistent=True, subsets_checked=len(subsets))
        suspects = self._localise(decoded)
        return IntegrityReport(
            consistent=False,
            subsets_checked=len(subsets),
            suspected_shares=suspects,
        )

    def _localise(self, decoded: dict) -> tuple[int, ...]:
        """Find shares whose exclusion restores cross-subset consistency.

        For each candidate share, consider only decode subsets that avoid
        it; if all those agree (and at least two exist), the candidate
        explains the corruption.
        """
        suspects: list[int] = []
        for share in range(self.coefficients.n_shares):
            excluding = [s for s in decoded if share not in s]
            if len(excluding) < 2:
                continue
            reference = decoded[excluding[0]]
            if all(np.array_equal(decoded[s], reference) for s in excluding[1:]):
                suspects.append(share)
        return tuple(suspects)

    # ------------------------------------------------------------------
    # backward-pass verification
    # ------------------------------------------------------------------
    def verify_backward(
        self, equations_by_bset: dict[tuple[int, ...], np.ndarray]
    ) -> IntegrityReport:
        """Compare aggregate-gradient decodes computed under different ``B``s.

        The trainer asks the GPUs to evaluate ``Eq_j`` under two (or more)
        ``B`` matrices supported on different share subsets; each decode must
        yield the same ``Σ_i <δ(i), x(i)>``.

        Parameters
        ----------
        equations_by_bset:
            Maps the share subset that defined each ``B`` to the decoded
            aggregate (field array).  Values must already be decoded — this
            method only cross-compares.
        """
        if len(equations_by_bset) < 2:
            raise IntegrityError(
                "backward verification needs decodes under >= 2 B-matrices"
            )
        items = list(equations_by_bset.items())
        _, reference = items[0]
        mismatch = [
            subset for subset, agg in items[1:] if not np.array_equal(agg, reference)
        ]
        if not mismatch:
            return IntegrityReport(consistent=True, subsets_checked=len(items))
        all_subsets = [s for s, _ in items]
        shared = set(all_subsets[0])
        for s in all_subsets[1:]:
            shared &= set(s)
        # Shares in every subset cannot be exonerated; shares in only the
        # mismatching subsets are prime suspects.
        suspects = sorted(
            set().union(*[set(s) for s in mismatch]) - shared
            if mismatch and shared != set(mismatch[0])
            else set().union(*[set(s) for s in mismatch])
        )
        return IntegrityReport(
            consistent=False,
            subsets_checked=len(items),
            suspected_shares=tuple(suspects),
        )
