"""Virtual-batch partitioning (Section 3.1, step 3 and Section 6).

A *virtual batch* is the largest group of inputs the enclave can encode at
once (limited by SGX memory, ``K ~ 4-8`` in the paper), which is generally
smaller than the ML batch.  This module slices training batches into virtual
batches and remembers padding so ragged tails round-trip exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class VirtualBatch:
    """One ``K``-sized slice of a larger batch.

    Attributes
    ----------
    data:
        Array of shape ``(k, *feature_shape)``; padded rows are zero.
    indices:
        Positions of the real rows inside the parent batch.
    n_real:
        How many leading rows are real (the rest is padding).
    """

    data: np.ndarray
    indices: tuple[int, ...]
    n_real: int

    @property
    def is_padded(self) -> bool:
        """True when the slice carries zero-padding rows."""
        return self.n_real < self.data.shape[0]


def iter_virtual_batches(batch: np.ndarray, k: int) -> Iterator[VirtualBatch]:
    """Split ``batch`` (first axis = samples) into ``K``-sized virtual batches.

    The final slice is zero-padded up to ``k`` so every virtual batch uses
    the same coefficient shapes; padded positions carry zero inputs and the
    caller must ignore their decoded outputs (``VirtualBatch.n_real`` says
    how many are real).
    """
    batch = np.asarray(batch)
    if k < 1:
        raise ConfigurationError(f"virtual batch size must be >= 1, got {k}")
    if batch.shape[0] == 0:
        raise ConfigurationError("cannot split an empty batch")
    n = batch.shape[0]
    for start in range(0, n, k):
        stop = min(start + k, n)
        chunk = batch[start:stop]
        n_real = chunk.shape[0]
        if n_real < k:
            pad = np.zeros((k - n_real,) + batch.shape[1:], dtype=batch.dtype)
            chunk = np.concatenate([chunk, pad], axis=0)
        yield VirtualBatch(
            data=chunk,
            indices=tuple(range(start, stop)),
            n_real=n_real,
        )


def n_virtual_batches(batch_size: int, k: int) -> int:
    """How many virtual batches a batch of ``batch_size`` splits into."""
    if k < 1:
        raise ConfigurationError(f"virtual batch size must be >= 1, got {k}")
    if batch_size < 1:
        raise ConfigurationError(f"batch size must be >= 1, got {batch_size}")
    return -(-batch_size // k)
