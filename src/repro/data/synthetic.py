"""Seeded synthetic image-classification datasets.

The paper trains on CIFAR-10 and ImageNet; neither ships with this offline
reproduction, so we generate class-conditional synthetic images instead
(documented substitution in DESIGN.md §2).  Each class gets a smooth random
template (low-frequency sinusoid mixture — image-like spatial correlation);
samples are template + per-sample texture + Gaussian noise.  The task is
learnable but not trivial, which is all the Fig. 4 experiment needs: it
compares *relative* accuracy of raw vs. masked training on identical data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Dataset:
    """An in-memory split dataset."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    n_classes: int

    @property
    def input_shape(self) -> tuple[int, ...]:
        """Per-sample shape."""
        return tuple(self.x_train.shape[1:])


def _class_template(
    shape: tuple[int, int, int], rng: np.random.Generator, n_waves: int = 4
) -> np.ndarray:
    """A smooth random pattern with image-like spatial correlation."""
    c, h, w = shape
    yy, xx = np.meshgrid(np.linspace(0, 1, h), np.linspace(0, 1, w), indexing="ij")
    template = np.zeros(shape)
    for _ in range(n_waves):
        fy, fx = rng.uniform(0.5, 3.0, size=2)
        phase = rng.uniform(0, 2 * np.pi)
        amp = rng.uniform(0.5, 1.0)
        wave = amp * np.sin(2 * np.pi * (fy * yy + fx * xx) + phase)
        channel_mix = rng.uniform(0.2, 1.0, size=(c, 1, 1))
        template += channel_mix * wave
    return template / np.max(np.abs(template))


def make_image_dataset(
    n_train: int,
    n_test: int,
    n_classes: int = 10,
    shape: tuple[int, int, int] = (3, 16, 16),
    noise: float = 0.35,
    seed: int = 0,
) -> Dataset:
    """Build a seeded class-conditional synthetic image dataset.

    Parameters
    ----------
    noise:
        Standard deviation of the additive Gaussian noise; higher values
        make the task harder (0.35 gives mid-90s accuracy for the Mini
        models after a few epochs).
    """
    if n_train < 1 or n_test < 1:
        raise ConfigurationError(
            f"need at least 1 train and 1 test sample, got ({n_train}, {n_test})"
        )
    if n_classes < 2:
        raise ConfigurationError(f"need at least 2 classes, got {n_classes}")
    rng = np.random.default_rng(seed)
    templates = [ _class_template(shape, rng) for _ in range(n_classes) ]

    def sample(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, n_classes, size=n)
        images = np.empty((n,) + shape)
        for i, label in enumerate(labels):
            jitter = rng.normal(0.0, 0.15)
            images[i] = (
                (1.0 + jitter) * templates[label]
                + noise * rng.normal(size=shape)
            )
        # Keep pixel range roughly [-1, 1] like normalised CIFAR.
        images = np.clip(images, -2.0, 2.0) / 2.0
        return images, labels

    x_train, y_train = sample(n_train)
    x_test, y_test = sample(n_test)
    return Dataset(
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        n_classes=n_classes,
    )


def cifar_like(
    n_train: int = 512, n_test: int = 128, seed: int = 0, size: int = 16
) -> Dataset:
    """CIFAR-10-shaped synthetic data (10 classes, 3 channels).

    ``size`` defaults to 16 rather than 32 to keep the numpy masked-training
    experiments fast; pass 32 for full CIFAR geometry.
    """
    return make_image_dataset(
        n_train, n_test, n_classes=10, shape=(3, size, size), seed=seed
    )


def imagenet_like(
    n_train: int = 8, n_test: int = 4, seed: int = 0, n_classes: int = 1000
) -> Dataset:
    """ImageNet-shaped synthetic data (224x224); for shape/pipeline tests only."""
    return make_image_dataset(
        n_train, n_test, n_classes=n_classes, shape=(3, 224, 224), seed=seed
    )
