"""Synthetic datasets and loaders (CIFAR/ImageNet substitution per DESIGN.md)."""

from repro.data.loaders import BatchIterator
from repro.data.synthetic import Dataset, cifar_like, imagenet_like, make_image_dataset

__all__ = [
    "Dataset",
    "make_image_dataset",
    "cifar_like",
    "imagenet_like",
    "BatchIterator",
]
