"""Minibatch iteration over in-memory datasets."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError


class BatchIterator:
    """Seeded, optionally shuffled minibatch iterator.

    Iterating yields ``(x_batch, y_batch)`` views; a fresh shuffle order is
    drawn per epoch (i.e. per ``iter()`` call).
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
    ) -> None:
        if x.shape[0] != np.asarray(y).shape[0]:
            raise ConfigurationError("x and y disagree on sample count")
        if batch_size < 1:
            raise ConfigurationError(f"batch size must be >= 1, got {batch_size}")
        self.x = x
        self.y = np.asarray(y)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = self.x.shape[0]
        if self.drop_last:
            return n // self.batch_size
        return -(-n // self.batch_size)

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = self.x.shape[0]
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        stop_at = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop_at, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.x[idx], self.y[idx]
