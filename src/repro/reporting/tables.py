"""ASCII rendering for reproduced tables and figure series.

Every benchmark prints its reproduction in the same rows/series layout the
paper uses, via these helpers, so EXPERIMENTS.md and the bench output line
up one to one.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    """Fixed-width table with a header rule; cells are str()-ed."""
    if not rows:
        raise ConfigurationError("table needs at least one row")
    str_rows = [[_fmt(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(str(headers[i])), max(len(r[i]) for r in str_rows))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def render_series(
    name: str, xs: Sequence, ys: Sequence[float], unit: str = ""
) -> str:
    """One figure series as ``x -> y`` lines (plot-free environments)."""
    if len(xs) != len(ys):
        raise ConfigurationError(f"series length mismatch: {len(xs)} vs {len(ys)}")
    suffix = f" {unit}" if unit else ""
    lines = [name]
    for x, y in zip(xs, ys):
        lines.append(f"  {x!s:>10} -> {_fmt(y)}{suffix}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
