"""Shared ASCII table/series rendering for benches and examples."""

from repro.reporting.tables import render_series, render_table

__all__ = ["render_table", "render_series"]
