"""``python -m repro`` — regenerate the paper's evaluation as a text report.

Runs the same harnesses the benchmarks assert on and prints every table and
figure series (see examples/paper_report.py for the library-level version).
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path


def main() -> int:
    report = Path(__file__).resolve().parent.parent.parent / "examples" / "paper_report.py"
    if report.exists():
        runpy.run_path(str(report), run_name="__main__")
        return 0
    # Installed without the examples tree: fall back to the harnesses.
    from repro.perf import headline_speedups, table1_rows
    from repro.reporting import render_table

    rows = table1_rows()
    print(
        render_table(
            ["Operations", "Linear", "Maxpool", "Relu", "Total"],
            [
                [r["operation"]] + [f"{r[k]:.2f}x" for k in ("linear", "maxpool", "relu", "total")]
                for r in rows
            ],
            title="Table 1 — GPU speedup over SGX (VGG16, ImageNet)",
        )
    )
    headline = headline_speedups()
    print(
        f"\nheadline: training {headline['training_speedup_avg']:.1f}x,"
        f" inference {headline['inference_speedup_avg']:.1f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
