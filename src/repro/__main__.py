"""``python -m repro`` — paper report (default) or the serving driver.

* ``python -m repro`` / ``python -m repro report`` — regenerate the
  paper's evaluation as a text report;
* ``python -m repro serve --model tiny --requests 64 ...`` — replay a
  synthetic multi-tenant trace through the private-inference server and
  print the serving metrics (see :mod:`repro.cli`).
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
