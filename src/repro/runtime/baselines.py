"""Baseline execution models the paper compares against.

* :class:`SgxOnlyBackend` — everything (linear + non-linear) inside the
  enclave.  Functionally identical to plain float; the value is the
  *accounting*: every op and activation is charged to the enclave ledger
  and EPC model, which is where the paper's two-orders-of-magnitude
  slowdown comes from (Table 4, Fig. 7).
* :class:`GpuOnlyBackend` — the non-private PyTorch-style baseline: floats
  on simulated GPUs, no masking, no privacy (Table 4's upper bound).
"""

from __future__ import annotations

import numpy as np

from repro.enclave import Enclave
from repro.gpu import GpuCluster
from repro.nn.backends import PlainBackend


class SgxOnlyBackend(PlainBackend):
    """Float execution with full enclave accounting (the paper's baseline).

    Parameters
    ----------
    enclave:
        Where ops/bytes are charged; EPC pressure from activations is
        tracked per call so the perf model can price paging.
    """

    def __init__(self, enclave: Enclave | None = None) -> None:
        self.enclave = enclave or Enclave(code_identity="sgx-only-baseline")

    def _charge(self, op: str, *arrays: np.ndarray) -> None:
        nbytes = sum(int(np.asarray(a).nbytes) for a in arrays if a is not None)
        self.enclave.record_compute(op, nbytes)
        # Activations stream through protected memory; charge paging when
        # the instantaneous working set exceeds EPC.
        paged = self.enclave.epc.working_set_paging_bytes(nbytes)
        if paged:
            self.enclave.epc.stats.paged_out_bytes += paged // 2
            self.enclave.epc.stats.paged_in_bytes += paged - paged // 2
            self.enclave.epc.stats.page_faults += 1

    def conv2d_forward(self, x, w, b, stride, pad, key):
        out = super().conv2d_forward(x, w, b, stride, pad, key)
        self._charge("sgx_conv2d_forward", x, w, out)
        return out

    def conv2d_grad_w(self, x, delta, kh, kw, stride, pad, key):
        out = super().conv2d_grad_w(x, delta, kh, kw, stride, pad, key)
        self._charge("sgx_conv2d_grad_w", x, delta, out)
        return out

    def conv2d_grad_x(self, w, delta, x_shape, stride, pad, key):
        out = super().conv2d_grad_x(w, delta, x_shape, stride, pad, key)
        self._charge("sgx_conv2d_grad_x", w, delta, out)
        return out

    def dense_forward(self, x, w, b, key):
        out = super().dense_forward(x, w, b, key)
        self._charge("sgx_dense_forward", x, w, out)
        return out

    def dense_grad_w(self, x, delta, key):
        out = super().dense_grad_w(x, delta, key)
        self._charge("sgx_dense_grad_w", x, delta, out)
        return out

    def dense_grad_x(self, w, delta, key):
        out = super().dense_grad_x(w, delta, key)
        self._charge("sgx_dense_grad_x", w, delta, out)
        return out


class GpuOnlyBackend(PlainBackend):
    """Non-private floats on simulated GPUs (data-parallel over devices).

    Numerically identical to :class:`PlainBackend`; GPU ledgers record the
    work for Table 4's "unprotected 3-GPU PyTorch" comparison.
    """

    def __init__(self, cluster: GpuCluster | None = None) -> None:
        from repro.fieldmath import PrimeField

        self.cluster = cluster or GpuCluster(PrimeField(), 3)

    def _charge(self, op: str, macs: int, out: np.ndarray) -> None:
        # Work splits evenly across devices in data-parallel training.
        per_device = macs // len(self.cluster)
        for device in self.cluster.devices:
            device.ledger.record(op, per_device, int(out.nbytes) // len(self.cluster))

    def conv2d_forward(self, x, w, b, stride, pad, key):
        out = super().conv2d_forward(x, w, b, stride, pad, key)
        macs = int(out.size) * int(w.shape[1] * w.shape[2] * w.shape[3])
        self._charge("gpu_conv2d_forward", macs, out)
        return out

    def conv2d_grad_w(self, x, delta, kh, kw, stride, pad, key):
        out = super().conv2d_grad_w(x, delta, kh, kw, stride, pad, key)
        self._charge("gpu_conv2d_grad_w", int(delta.size) * kh * kw * x.shape[1], out)
        return out

    def conv2d_grad_x(self, w, delta, x_shape, stride, pad, key):
        out = super().conv2d_grad_x(w, delta, x_shape, stride, pad, key)
        self._charge("gpu_conv2d_grad_x", int(delta.size) * int(w.shape[1]), out)
        return out

    def dense_forward(self, x, w, b, key):
        out = super().dense_forward(x, w, b, key)
        self._charge("gpu_dense_forward", int(x.shape[0]) * int(w.size), out)
        return out

    def dense_grad_w(self, x, delta, key):
        out = super().dense_grad_w(x, delta, key)
        self._charge("gpu_dense_grad_w", int(x.shape[0]) * int(out.size), out)
        return out

    def dense_grad_x(self, w, delta, key):
        out = super().dense_grad_x(w, delta, key)
        self._charge("gpu_dense_grad_x", int(delta.shape[0]) * int(w.size), out)
        return out
