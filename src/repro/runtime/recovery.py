"""Corrective action after an integrity failure (the paper's future work).

Section 4.4 ends with: "Once an integrity violation is detected, TEE may
perform additional corrective action, such as executing on another GPU
worker or perform additional redundant computations. But these actions are
outside the scope of our current work."  This module implements that scope
extension:

* :class:`RecoveringExecutor` retries a masked computation when the
  verifier flags it, quarantining suspected devices and re-encoding the
  virtual batch with fresh coefficients for the survivors;
* when localisation is impossible (a single redundant share detects but
  cannot name the culprit), it falls back to trial-exclusion: re-run with
  each device benched in turn until a consistent cluster is found.

The executor needs spare capacity: recovery from ``f`` byzantine devices
requires ``K + M + 1 + f`` GPUs in the pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Callable

import numpy as np

from repro.errors import IntegrityError
from repro.gpu import GpuCluster
from repro.masking import CoefficientSet, ForwardDecoder, ForwardEncoder, IntegrityVerifier


@dataclass
class RecoveryReport:
    """What happened during a recovering execution."""

    attempts: int = 0
    quarantined: list = dataclass_field(default_factory=list)
    recovered: bool = False

    @property
    def was_attacked(self) -> bool:
        """True when at least one retry was needed."""
        return self.attempts > 1


class RecoveringExecutor:
    """Runs masked forward computations with detect-quarantine-retry.

    Parameters
    ----------
    cluster:
        Device pool; must exceed the share count for recovery headroom.
    rng:
        Enclave randomness for fresh coefficients per retry.
    max_retries:
        Abort after this many failed attempts (a fully-byzantine pool).
    """

    def __init__(self, cluster: GpuCluster, rng, max_retries: int = 4) -> None:
        if max_retries < 1:
            raise IntegrityError(f"max_retries must be >= 1, got {max_retries}")
        self.cluster = cluster
        self.rng = rng
        self.max_retries = max_retries
        self._quarantined: set[int] = set()

    @property
    def quarantined_devices(self) -> tuple[int, ...]:
        """Devices currently benched."""
        return tuple(sorted(self._quarantined))

    def _available_devices(self) -> list[int]:
        return [d for d in range(len(self.cluster)) if d not in self._quarantined]

    def _run_once(
        self,
        inputs_q: np.ndarray,
        k: int,
        m: int,
        gpu_op: Callable,
        lineup: list[int],
        key: str,
        report: RecoveryReport,
    ):
        """One masked execution on ``lineup``; returns (verdict, decode-or-None)."""
        report.attempts += 1
        coeffs = CoefficientSet.generate(self.rng, k=k, m=m, extra_shares=1)
        encoded = ForwardEncoder(coeffs, self.rng).encode(inputs_q)
        for share_index, device_id in enumerate(lineup):
            self.cluster[device_id].receive_share(key, encoded.shares[share_index])
        outputs = np.stack([gpu_op(self.cluster[d], key) for d in lineup])
        for device_id in lineup:
            self.cluster[device_id].drop_share(key)
        verdict = IntegrityVerifier(coeffs).verify_forward(outputs)
        decoded = ForwardDecoder(coeffs).decode(outputs) if verdict.consistent else None
        return verdict, decoded

    def execute_forward(
        self,
        inputs_q: np.ndarray,
        k: int,
        m: int,
        gpu_op: Callable,
        share_key: str = "recovery",
    ) -> tuple[np.ndarray, RecoveryReport]:
        """Run ``gpu_op(device, share_key) -> field tensor`` with verification.

        ``inputs_q`` is the quantized virtual batch ``(k, *features)``.
        Returns the decoded true results and a :class:`RecoveryReport`.

        When verification fails without localisation, the executor performs
        *swap-and-test*: it re-runs with each lineup member replaced by a
        spare; a lineup that turns consistent convicts the swapped-out
        device (the only change between the runs), which is then benched.
        Innocent devices are never permanently quarantined.

        Raises
        ------
        IntegrityError
            When no consistent device subset can be found within the retry
            budget (or the pool lacks spare capacity to keep probing).
        """
        report = RecoveryReport()
        n_shares = k + m + 1  # always carry the redundant share
        for round_index in range(self.max_retries):
            devices = self._available_devices()
            if len(devices) < n_shares:
                raise IntegrityError(
                    f"only {len(devices)} trustworthy devices left;"
                    f" need {n_shares} (quarantined: {self.quarantined_devices})"
                )
            lineup = devices[:n_shares]
            key = f"{share_key}/round{round_index}"
            verdict, decoded = self._run_once(
                inputs_q, k, m, gpu_op, lineup, key, report
            )
            if decoded is not None:
                report.recovered = True
                return decoded, report
            if verdict.suspected_shares:
                for share_index in verdict.suspected_shares:
                    self._bench(lineup[share_index], report)
                continue
            # No localisation: swap each member for a spare and re-test.
            spares = devices[n_shares:]
            if not spares:
                raise IntegrityError(
                    "integrity failure persists and no spare device is"
                    " available for swap-and-test recovery"
                )
            convicted = False
            for swap_index, suspect in enumerate(lineup):
                trial_lineup = [d for d in lineup if d != suspect] + [spares[0]]
                trial_key = f"{key}/swap{swap_index}"
                verdict, decoded = self._run_once(
                    inputs_q, k, m, gpu_op, trial_lineup, trial_key, report
                )
                if decoded is not None:
                    self._bench(suspect, report)
                    report.recovered = True
                    return decoded, report
                convicted = convicted or bool(verdict.suspected_shares)
            if not convicted:
                # Multiple colluding liars: bench the whole lineup and use
                # whatever capacity remains.
                for device_id in lineup:
                    self._bench(device_id, report)
        raise IntegrityError(
            f"no consistent GPU subset after {report.attempts} attempts;"
            f" quarantined {self.quarantined_devices}"
        )

    def _bench(self, device_id: int, report: RecoveryReport) -> None:
        if device_id not in self._quarantined:
            self._quarantined.add(device_id)
            report.quarantined.append(device_id)

    def pardon(self, device_id: int) -> None:
        """Return a benched device to the pool (e.g. after operator review)."""
        self._quarantined.discard(device_id)
