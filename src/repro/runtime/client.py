"""Client-side provisioning: attest, establish a channel, upload data.

Figure 1 / Section 3.1 step 1 of the paper: "A batch of training/inference
input data set is encrypted by the client and sent to the TEE enclave on
the server", after the client has verified — via remote attestation — that
the enclave really runs the audited DarKnight code.  This module implements
both ends of that handshake on the simulation substrates:

* :class:`ClientSession` — verifies the enclave quote against the code
  identity the client audited, runs the key exchange, encrypts batches;
* :class:`EnclaveReceiver` — the enclave-side endpoint that decrypts
  uploads inside protected memory and accounts for them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm import Envelope, LinkModel, SecureChannel
from repro.enclave import Enclave, measure_enclave
from repro.errors import CommunicationError

#: The enclave code identity clients are expected to have audited.
DEFAULT_CODE_IDENTITY = "darknight-enclave-v1"


@dataclass(frozen=True)
class ProvisionedBatch:
    """One uploaded (still encrypted on the wire) training batch."""

    data: Envelope
    labels: Envelope


class EnclaveReceiver:
    """Enclave-side endpoint for client uploads."""

    def __init__(self, enclave: Enclave, channel: SecureChannel) -> None:
        self.enclave = enclave
        self._channel = channel

    def receive_batch(self, batch: ProvisionedBatch) -> tuple[np.ndarray, np.ndarray]:
        """Decrypt a client batch inside the enclave.

        Raises
        ------
        CommunicationError
            If either envelope fails authentication (tampered in transit).
        """
        self.enclave.ecall("client_upload", batch.data.nbytes + batch.labels.nbytes)
        x = self._channel.recv_array(batch.data)
        y = self._channel.recv_array(batch.labels)
        self.enclave.record_compute("decrypt_client_batch", int(x.nbytes + y.nbytes))
        return x, y


class ClientSession:
    """A data holder's session with the cloud enclave.

    Parameters are produced by :meth:`connect`, which performs the paper's
    trust-establishment sequence: quote -> verify measurement -> key
    exchange -> encrypted channel.
    """

    def __init__(
        self, channel: SecureChannel, receiver: EnclaveReceiver, link: LinkModel
    ) -> None:
        self._channel = channel
        self.receiver = receiver
        self.link = link
        self.batches_sent = 0

    @classmethod
    def connect(
        cls,
        enclave: Enclave,
        expected_code_identity: str | bytes = DEFAULT_CODE_IDENTITY,
        link: LinkModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> "ClientSession":
        """Attest the enclave and open an encrypted channel to it.

        Raises
        ------
        AttestationError
            When the enclave's measurement does not match the code the
            client audited — the client refuses to provision data.
        """
        link = link or LinkModel()
        rng = rng or np.random.default_rng()
        quote = enclave.quote(report_data=b"client-session")
        expected = measure_enclave(expected_code_identity)
        enclave.verify_peer_quote(quote, expected)  # raises on mismatch
        client_end, enclave_end = SecureChannel.establish_pair(
            "client", "enclave", link, rng
        )
        receiver = EnclaveReceiver(enclave, enclave_end)
        return cls(client_end, receiver, link)

    def upload_batch(self, x: np.ndarray, y: np.ndarray) -> ProvisionedBatch:
        """Encrypt one training batch for the enclave.

        The ciphertext is what crosses the untrusted network; feeding the
        returned envelopes to ``self.receiver`` models delivery.
        """
        x = np.asarray(x)
        y = np.asarray(y)
        if x.shape[0] != y.shape[0]:
            raise CommunicationError(
                f"batch mismatch: {x.shape[0]} samples vs {y.shape[0]} labels"
            )
        batch = ProvisionedBatch(
            data=self._channel.send_array(x),
            labels=self._channel.send_array(y),
        )
        self.batches_sent += 1
        return batch

    def provision(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Convenience: upload and deliver one batch, returning the enclave's
        decrypted view (what the masking pipeline consumes next)."""
        return self.receiver.receive_batch(self.upload_batch(x, y))
