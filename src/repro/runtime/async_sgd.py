"""Staleness-aware asynchronous SGD for the pipelined execution mode.

Section 7.1: "Pipelined implementation with asynchronous SGD has been
designed in prior work [PipeDream; Zhang et al.]".  When DarKnight encodes
virtual batch ``v+1`` under the shadow of batch ``v``'s GPU execution, the
gradients applied at step ``t`` were computed against the weights of step
``t - s`` for pipeline depth ``s``.  Left uncorrected, stale gradients
destabilise training; the standard fix (Zhang et al. 2015, the paper's
citation [86]) scales each gradient's learning rate by ``1 / (1 + s)``.

:class:`StalenessAwareSGD` simulates exactly that: updates enter a delay
queue of configurable depth and are applied with staleness-scaled steps, so
the functional pipeline can be studied end to end, not just priced.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.network import Sequential


@dataclass
class _PendingUpdate:
    """A gradient snapshot waiting in the pipeline."""

    grads: dict[str, np.ndarray]
    born_step: int


class StalenessAwareSGD:
    """SGD whose updates arrive through a depth-``s`` pipeline.

    Parameters
    ----------
    network:
        The model whose layer ``grads`` feed the optimiser.
    lr:
        Base learning rate (scaled down per update by its staleness).
    pipeline_depth:
        How many steps a gradient spends in flight; 0 reduces to plain SGD.
    momentum:
        Classical momentum applied to the staleness-scaled update.
    """

    def __init__(
        self,
        network: Sequential,
        lr: float = 0.01,
        pipeline_depth: int = 1,
        momentum: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        if pipeline_depth < 0:
            raise ConfigurationError(
                f"pipeline depth cannot be negative, got {pipeline_depth}"
            )
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.network = network
        self.lr = lr
        self.pipeline_depth = pipeline_depth
        self.momentum = momentum
        self._queue: deque[_PendingUpdate] = deque()
        self._velocity: dict[str, np.ndarray] = {}
        self._step = 0
        #: Histogram of applied-update staleness (for tests/analysis).
        self.staleness_applied: list[int] = []

    def _snapshot_grads(self) -> dict[str, np.ndarray]:
        grads = {}
        for layer, name, _ in self.network.parameters():
            if name in layer.grads:
                grads[f"{layer.name}/{name}"] = layer.grads[name].copy()
        if not grads:
            raise ConfigurationError("no gradients recorded; run backward first")
        return grads

    def step(self) -> None:
        """Enqueue the current gradients; apply whatever left the pipeline."""
        self._queue.append(_PendingUpdate(self._snapshot_grads(), self._step))
        self._step += 1
        while self._queue and (
            self._step - self._queue[0].born_step > self.pipeline_depth
            or len(self._queue) > self.pipeline_depth + 1
        ):
            self._apply(self._queue.popleft())
        for layer, name, _ in self.network.parameters():
            layer.grads.pop(name, None)

    def drain(self) -> None:
        """Apply every in-flight update (end of training)."""
        while self._queue:
            self._apply(self._queue.popleft())

    def _apply(self, pending: _PendingUpdate) -> None:
        staleness = self._step - pending.born_step - 1
        self.staleness_applied.append(staleness)
        scale = self.lr / (1.0 + staleness)
        params = {
            f"{layer.name}/{name}": param
            for layer, name, param in self.network.parameters()
        }
        for key, grad in pending.grads.items():
            update = grad
            if self.momentum:
                vel = self._velocity.get(key)
                vel = self.momentum * vel + grad if vel is not None else grad
                self._velocity[key] = vel
                update = vel
            params[key] -= scale * update

    @property
    def in_flight(self) -> int:
        """Updates currently inside the pipeline."""
        return len(self._queue)
