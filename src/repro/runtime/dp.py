"""Central differential privacy on top of DarKnight (the paper's suggestion).

Section 3: "One common defense is using central differential privacy to
keep the model private.  Central differential privacy can be used on top of
DarKnight [Erlingsson et al.]."  DarKnight's enclave is the natural DP
aggregator: it already computes the batch-aggregate update ``▽W`` in
cleartext inside the TEE, so it can clip and noise that aggregate *before*
anything leaves protected memory — the GPUs (and anyone watching model
updates) only ever see the privatised gradient.

:class:`GradientPrivatizer` implements Gaussian-mechanism DP-SGD at the
aggregate level: per-example clipping happens upstream by bounding the
virtual-batch contribution norm, and the privacy ledger tracks (ε, δ) under
basic and advanced composition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DpConfig:
    """Gaussian-mechanism parameters.

    Parameters
    ----------
    clip_norm:
        L2 bound ``C`` enforced on each batch-aggregate update (the
        mechanism's sensitivity).
    noise_multiplier:
        ``σ``; noise std is ``σ·C``.
    delta:
        Target δ of the (ε, δ) guarantee.
    """

    clip_norm: float = 1.0
    noise_multiplier: float = 1.0
    delta: float = 1e-5

    def __post_init__(self) -> None:
        if self.clip_norm <= 0:
            raise ConfigurationError(f"clip_norm must be positive, got {self.clip_norm}")
        if self.noise_multiplier <= 0:
            raise ConfigurationError(
                f"noise_multiplier must be positive, got {self.noise_multiplier}"
            )
        if not 0 < self.delta < 1:
            raise ConfigurationError(f"delta must be in (0, 1), got {self.delta}")

    def epsilon_per_step(self) -> float:
        """Single-release ε of the Gaussian mechanism at this σ and δ."""
        return math.sqrt(2.0 * math.log(1.25 / self.delta)) / self.noise_multiplier


class PrivacyLedger:
    """(ε, δ) accounting over released updates.

    Reports both basic composition (ε grows linearly) and the advanced
    composition bound of Dwork-Rothblum-Vadhan, which grows ~√steps — the
    standard budget views for DP-SGD without a moments accountant.
    """

    def __init__(self, config: DpConfig) -> None:
        self.config = config
        self.steps = 0

    def record_release(self) -> None:
        """Account one privatised update leaving the enclave."""
        self.steps += 1

    @property
    def epsilon_basic(self) -> float:
        """Linear composition: ``steps * ε_step`` at total δ = steps·δ."""
        return self.steps * self.config.epsilon_per_step()

    def epsilon_advanced(self, delta_prime: float = 1e-6) -> float:
        """Advanced composition at an extra slack ``δ'``."""
        if not 0 < delta_prime < 1:
            raise ConfigurationError(f"delta_prime must be in (0, 1), got {delta_prime}")
        if self.steps == 0:
            return 0.0
        eps = self.config.epsilon_per_step()
        k = self.steps
        return math.sqrt(2.0 * k * math.log(1.0 / delta_prime)) * eps + k * eps * (
            math.exp(eps) - 1.0
        )


class GradientPrivatizer:
    """Clip-and-noise applied to aggregate updates inside the enclave.

    Parameters
    ----------
    config:
        Mechanism parameters.
    rng:
        Noise source (the enclave's generator in the real flow).
    """

    def __init__(self, config: DpConfig, rng: np.random.Generator | None = None) -> None:
        self.config = config
        self.ledger = PrivacyLedger(config)
        self._rng = rng or np.random.default_rng()

    def clip(self, update: np.ndarray) -> np.ndarray:
        """Scale the update down to L2 norm ``clip_norm`` when it exceeds it."""
        update = np.asarray(update, dtype=np.float64)
        norm = float(np.linalg.norm(update))
        if norm <= self.config.clip_norm or norm == 0.0:
            return update
        return update * (self.config.clip_norm / norm)

    def privatize(self, update: np.ndarray) -> np.ndarray:
        """Clip, add calibrated Gaussian noise, and account the release."""
        clipped = self.clip(update)
        noise_std = self.config.noise_multiplier * self.config.clip_norm
        noised = clipped + self._rng.normal(0.0, noise_std, size=clipped.shape)
        self.ledger.record_release()
        return noised

    def privatize_named(self, updates: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Privatise a whole parameter-keyed update dict as one release.

        The clip bound applies to the *joint* L2 norm across all tensors
        (one mechanism invocation, one ledger entry), matching how DP-SGD
        treats the full gradient vector.
        """
        if not updates:
            raise ConfigurationError("no updates to privatise")
        flat = np.concatenate([np.asarray(u, dtype=np.float64).ravel() for u in updates.values()])
        noised = self.privatize(flat)
        out: dict[str, np.ndarray] = {}
        offset = 0
        for key, value in updates.items():
            size = int(np.asarray(value).size)
            out[key] = noised[offset : offset + size].reshape(np.asarray(value).shape)
            offset += size
        return out
