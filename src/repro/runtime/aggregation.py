"""Large-batch weight-update aggregation (the paper's Algorithm 2).

Multiple virtual batches make up a training batch.  Storing every virtual
batch's ``▽W_v`` inside SGX exceeds enclave memory for large models, so
DarKnight seals each one, evicts it to untrusted DRAM, then reloads,
decrypts and sums them all once the batch completes — optionally in
*shards* (layer groups) so reload+sum pipelines with sending updates to the
GPUs.

:class:`LargeBatchAggregator` implements exactly that flow on top of the
enclave's sealing facilities, and its byte ledgers drive the Fig. 3
aggregation-speedup experiment.
"""

from __future__ import annotations

import numpy as np

from repro.enclave import Enclave
from repro.errors import ConfigurationError


class LargeBatchAggregator:
    """Seal/evict per-virtual-batch updates, reload and sum at batch end.

    Parameters
    ----------
    enclave:
        Provides sealing, the untrusted store, and ledgers.
    n_shards:
        How many shards to split each update into (Section 6's pipelined
        shard-wise aggregation); 1 disables sharding.
    """

    def __init__(self, enclave: Enclave, n_shards: int = 1) -> None:
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        self.enclave = enclave
        self.n_shards = n_shards
        self._shapes: dict[str, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Algorithm 2 lines 8-10: compute, encrypt, evict
    # ------------------------------------------------------------------
    def add_update(self, key: str, update: np.ndarray) -> None:
        """Seal one virtual batch's ``▽W_v`` and push it to untrusted memory."""
        if key in self._shapes:
            raise ConfigurationError(f"update key {key!r} already evicted")
        update = np.ascontiguousarray(update, dtype=np.float64)
        self._shapes[key] = update.shape
        flat = update.reshape(-1)
        bounds = np.linspace(0, flat.size, self.n_shards + 1, dtype=int)
        for shard in range(self.n_shards):
            chunk = flat[bounds[shard] : bounds[shard + 1]]
            self.enclave.seal_and_evict(
                f"{key}/shard{shard}", chunk, label=key.encode()
            )

    # ------------------------------------------------------------------
    # Algorithm 2 lines 14-21: reload, decrypt, accumulate
    # ------------------------------------------------------------------
    def aggregate(self, keys: list[str]) -> np.ndarray:
        """Reload every sealed update and return their sum.

        Shard-wise: all virtual batches' shard ``s`` are combined before
        moving to shard ``s+1``, which is what lets the real system pipeline
        partial updates to the GPUs.
        """
        if not keys:
            raise ConfigurationError("nothing to aggregate")
        missing = [k for k in keys if k not in self._shapes]
        if missing:
            raise ConfigurationError(f"updates never evicted: {missing}")
        shape = self._shapes[keys[0]]
        for k in keys[1:]:
            if self._shapes[k] != shape:
                raise ConfigurationError(
                    f"update {k!r} has shape {self._shapes[k]}, expected {shape}"
                )
        pieces: list[np.ndarray] = []
        for shard in range(self.n_shards):
            shard_total: np.ndarray | None = None
            for key in keys:
                chunk = self.enclave.reload_and_unseal(f"{key}/shard{shard}")
                shard_total = chunk if shard_total is None else shard_total + chunk
            pieces.append(shard_total)
        for key in keys:
            for shard in range(self.n_shards):
                self.enclave.drop_evicted(f"{key}/shard{shard}")
            del self._shapes[key]
        return np.concatenate(pieces).reshape(shape)

    def pending_keys(self) -> list[str]:
        """Updates evicted but not yet aggregated."""
        return list(self._shapes)
