"""DarKnight orchestration: config, backend, trainer, inference, baselines."""

from repro.runtime.aggregation import LargeBatchAggregator
from repro.runtime.async_sgd import StalenessAwareSGD
from repro.runtime.baselines import GpuOnlyBackend, SgxOnlyBackend
from repro.runtime.client import ClientSession, EnclaveReceiver, ProvisionedBatch
from repro.runtime.config import DarKnightConfig
from repro.runtime.darknight import DarKnightBackend
from repro.runtime.dp import DpConfig, GradientPrivatizer, PrivacyLedger
from repro.runtime.inference import PrivateInferenceEngine
from repro.runtime.recovery import RecoveringExecutor, RecoveryReport
from repro.runtime.trainer import Trainer, TrainingHistory, make_darknight_trainer

__all__ = [
    "DarKnightConfig",
    "DarKnightBackend",
    "Trainer",
    "TrainingHistory",
    "make_darknight_trainer",
    "PrivateInferenceEngine",
    "LargeBatchAggregator",
    "SgxOnlyBackend",
    "GpuOnlyBackend",
    "ClientSession",
    "EnclaveReceiver",
    "ProvisionedBatch",
    "RecoveringExecutor",
    "RecoveryReport",
    "DpConfig",
    "GradientPrivatizer",
    "PrivacyLedger",
    "StalenessAwareSGD",
]
