"""The DarKnight execution backend: TEE-GPU cooperative linear algebra.

This is the paper's Section 3.1 flow as a :class:`~repro.nn.backends.LinearBackend`:

1. the enclave quantizes a virtual batch of layer inputs into ``F_p``;
2. masks them into ``K + M (+1)`` shares with fresh coefficients;
3. scatters one share per simulated GPU over the (modeled) link;
4. GPUs run the bilinear kernel on their share;
5. the enclave decodes the stacked results exactly, optionally verifying
   integrity via a second decode subset, and dequantizes back to float;
6. backward weight gradients reuse the *stored* forward shares: GPUs combine
   the public-``B``-weighted gradients and return ``Eq_j``; the enclave
   recovers the batch-aggregate update with ``Σ_j γ_j·Eq_j``;
7. ``δ``-propagation (input gradients) is offloaded unencoded — it carries
   no input data (Section 4.2).

The forward flow is exposed two ways.  The classic blocking entry points
(:meth:`DarKnightBackend.conv2d_forward` / :meth:`~DarKnightBackend.dense_forward`)
serve training and ``pipeline_depth=1`` inference.  Underneath, the flow is
split into three explicitly schedulable stage ops —
:meth:`~DarKnightBackend.encode` → :meth:`~DarKnightBackend.dispatch` →
:meth:`~DarKnightBackend.decode` — which
:class:`repro.pipeline.PipelineExecutor` interleaves across virtual batches
so the enclave encodes batch ``n+1`` while GPUs compute batch ``n`` (the
paper's Fig. 7 threading argument).  Both paths share the same code and are
bit-identical: masking decodes exactly, so stage order never changes values.

Plugging this backend into any :class:`~repro.nn.network.Sequential` makes
its linear layers private without touching model code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm import LinkModel
from repro.enclave import Enclave
from repro.errors import ConfigurationError, DecodingError
from repro.gpu import GpuCluster
from repro.masking import (
    BackwardDecoder,
    CoefficientSet,
    ForwardDecoder,
    ForwardEncoder,
    IntegrityVerifier,
    iter_virtual_batches,
)
from repro.masking.virtual_batch import VirtualBatch
from repro.pipeline.stages import EncodeTicket, GpuFuture, StagedLinearOp
from repro.precompute import MaskStreamPool, enable_scratch
from repro.quantization import IDENTITY, DynamicNormalizer, Normalization, QuantizationConfig
from repro.runtime.aggregation import LargeBatchAggregator
from repro.runtime.config import DarKnightConfig


@dataclass
class _ForwardRecord:
    """State kept per (layer, virtual batch) from forward for backward reuse."""

    coefficients: CoefficientSet
    share_key: str
    indices: tuple[int, ...]
    n_real: int
    x_norm: Normalization
    w_norm: Normalization
    vb_index: int = 0


class DarKnightBackend:
    """Masked TEE+GPU backend for conv/dense forward and weight gradients.

    Parameters
    ----------
    config:
        Session parameters (K, M, integrity, quantization...).
    enclave:
        The trusted side; provides randomness, accounting, sealing.
    cluster:
        Simulated accelerators; needs ``config.n_gpus_required`` devices.
    link:
        Interconnect cost model (bytes charged on every scatter/gather).
    """

    def __init__(
        self,
        config: DarKnightConfig | None = None,
        enclave: Enclave | None = None,
        cluster: GpuCluster | None = None,
        link: LinkModel | None = None,
    ) -> None:
        self.config = config or DarKnightConfig()
        # Every masked GEMM in this session (enclave encode/decode and the
        # simulated GPUs' kernels) funnels through field_matmul, so the
        # config's backend choice is applied as the process default here —
        # the single construction point both sides share.
        from repro.fieldmath.kernels import set_default_backend

        set_default_backend(self.config.field_backend)
        self.enclave = enclave or Enclave(seed=self.config.seed)
        self.field = self.enclave.field
        if self.field.p != self.config.prime:
            raise DecodingError(
                f"enclave field p={self.field.p} != config prime {self.config.prime}"
            )
        self.cluster = cluster or GpuCluster(self.field, self.config.n_gpus_required)
        self.link = link or LinkModel()
        self.quantizer = QuantizationConfig(
            fractional_bits=self.config.fractional_bits, field=self.field
        )
        self._normalizer = (
            DynamicNormalizer() if self.config.dynamic_normalization else None
        )
        self._grad_normalizer = DynamicNormalizer()
        self._forward_store: dict[str, list[_ForwardRecord]] = {}
        self._cached_coefficients: CoefficientSet | None = None
        # Offline/online split: a counter-based mask pool plus a static
        # weight-encoding cache (precompute mode only — training mutates
        # weight arrays in place, so caching by identity is serving-only).
        self._mask_pool: MaskStreamPool | None = None
        self._weight_cache: dict[str, tuple[tuple, StagedLinearOp]] = {}
        if self.config.precompute:
            base_key = (
                self.config.seed
                if self.config.seed is not None
                else int(self.enclave.rng.generator.integers(0, 2**63))
            )
            self._mask_pool = MaskStreamPool(self.field, base_key)
            enable_scratch(True)
        self._aggregator = (
            LargeBatchAggregator(self.enclave) if self.config.sealed_aggregation else None
        )
        self._step = 0

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def _normalize(self, values: np.ndarray) -> tuple[np.ndarray, Normalization]:
        if self._normalizer is None:
            return np.asarray(values, dtype=np.float64), IDENTITY
        return self._normalizer.normalize(values)

    def _normalize_inputs(self, values: np.ndarray) -> tuple[np.ndarray, Normalization]:
        """Normalise one virtual batch of layer inputs before quantization.

        In ``per_sample_normalization`` mode every sample slot gets its own
        factor, so a slot's decoded output is invariant to what else shares
        the batch — the property shard routing relies on for bit-identical
        logits at every shard count.
        """
        if self._normalizer is None:
            return np.asarray(values, dtype=np.float64), IDENTITY
        if self.config.per_sample_normalization:
            return self._normalizer.normalize_rows(values)
        return self._normalizer.normalize(values)

    def _fresh_coefficients(self) -> CoefficientSet:
        # Coefficient shapes depend only on the (frozen) config's
        # (K, M, extra, mds) — the batch's feature shape never enters
        # because A/B/Gamma weight whole sample slots — so one cached set
        # serves every batch.  Reuse skips only the resample/inversion;
        # the per-encode noise vectors are still drawn fresh by the encoder.
        cfg = self.config
        if not cfg.fresh_coefficients and self._cached_coefficients is not None:
            self.enclave.record_compute("reuse_coefficients", 0)
            return self._cached_coefficients
        coeffs = CoefficientSet.generate(
            self.enclave.rng,
            k=cfg.virtual_batch_size,
            m=cfg.collusion_tolerance,
            extra_shares=cfg.extra_shares,
            mds_noise=cfg.mds_noise,
        )
        self.enclave.record_compute("generate_coefficients", coeffs.a.nbytes)
        if not cfg.fresh_coefficients:
            self._cached_coefficients = coeffs
        return coeffs

    def _scatter(self, share_key: str, shares: np.ndarray) -> None:
        self.cluster.scatter_shares(share_key, shares)
        per_share = int(shares[0].nbytes)
        for j in range(shares.shape[0]):
            self.link.transfer("enclave", f"gpu{j}", per_share)
        self.enclave.ocall("scatter_shares", int(shares.nbytes))

    def _gather(self, outputs: np.ndarray) -> None:
        per_out = int(outputs[0].nbytes)
        for j in range(outputs.shape[0]):
            self.link.transfer(f"gpu{j}", "enclave", per_out)
        self.enclave.ecall("gather_outputs", int(outputs.nbytes))

    def _verify_forward(self, coeffs: CoefficientSet, outputs: np.ndarray) -> None:
        if not self.config.integrity:
            return
        report = IntegrityVerifier(coeffs).verify_forward(outputs)
        report.raise_on_failure()
        self.enclave.record_compute("integrity_check", int(outputs.nbytes))

    # ------------------------------------------------------------------
    # staged forward ops: stage_linear -> encode -> dispatch -> decode
    # ------------------------------------------------------------------
    def stage_linear(
        self,
        kind: str,
        w: np.ndarray,
        b: np.ndarray | None,
        key: str,
        stride: int = 1,
        pad: int = 0,
    ) -> StagedLinearOp:
        """Prepare one linear layer for staged execution.

        Pays the per-layer costs exactly once — weight normalisation,
        quantization, and broadcast to every device — so each virtual batch
        afterwards only pays encode/dispatch/decode.  ``kind`` is
        ``"conv2d"`` or ``"dense"``.
        """
        if kind not in ("conv2d", "dense"):
            raise ConfigurationError(f"unknown staged linear op kind {kind!r}")
        # Re-staging a layer starts a fresh forward for it: stale records
        # (e.g. a re-forward with fewer virtual batches before end_batch)
        # are dropped wholesale, shares included, so backward never mixes
        # encodings from two different forward passes.
        stale = self._forward_store.pop(key, None)
        if stale:
            for record in stale:
                self.cluster.drop_shares(record.share_key)
        if self._mask_pool is not None:
            # Offline phase: the quantized encoding and its broadcast
            # payload are static across flush windows.  The fingerprint is
            # by array identity — serving weights are never mutated in
            # place, and a model swap hands in new arrays.
            w_arr = np.asarray(w)
            fingerprint = (
                kind,
                id(w_arr),
                w_arr.shape,
                None if b is None else id(np.asarray(b)),
                stride,
                pad,
                self.config.validate_decode,
            )
            cached = self._weight_cache.get(key)
            if cached is not None and cached[0] == fingerprint:
                op = cached[1]
                op.staged_bytes = 0
                self.enclave.record_compute("reuse_weights", 0)
                return op
        w_scaled, w_norm = self._normalize(w)
        w_q = self.quantizer.quantize(w_scaled)
        self.cluster.broadcast_weights(key, w_q)
        if kind == "conv2d":
            gpu_op = lambda dev, share_key: dev.conv2d_forward(share_key, key, stride, pad)
        else:
            gpu_op = lambda dev, share_key: dev.dense_forward(share_key, key)
        validate = None
        if self.config.validate_decode:
            if kind == "conv2d":
                reference = lambda rows: self._float_conv(rows, w, stride, pad)
            else:
                reference = lambda rows: rows @ w
            validate = lambda got, rows: self._validate(got, reference(rows), key)
        op = StagedLinearOp(
            kind=kind, key=key, w_norm=w_norm, bias=b, gpu_op=gpu_op, validate=validate
        )
        op.staged_bytes = int(w_q.nbytes)
        if self._mask_pool is not None:
            self.enclave.record_compute("stage_weights", int(w_q.nbytes))
            self._weight_cache[key] = (fingerprint, op)
        return op

    def encode(self, op: StagedLinearOp, vb: VirtualBatch, vb_index: int) -> EncodeTicket:
        """Stage 1 — mask one virtual batch and scatter its shares.

        The forward record is registered *before* returning, so the shares
        now resident on the devices are always released by
        :meth:`end_batch`, even if the pipeline aborts before this ticket
        is ever dispatched or decoded.
        """
        data, x_norm = self._normalize_inputs(vb.data)
        x_q = self.quantizer.quantize(data)
        self.enclave.record_compute("quantize_inputs", int(x_q.nbytes))
        coeffs = self._fresh_coefficients()
        encoder = ForwardEncoder(coeffs, self.enclave.rng)
        inline_noise_bytes = int(coeffs.m) * int(x_q[0].nbytes)
        if self._mask_pool is not None and coeffs.m > 0:
            noise, pooled = self._mask_pool.draw(
                x_q.shape[1:], coeffs.k, coeffs.m
            )
            if pooled:
                self.enclave.record_compute("mask_pool_hit", int(noise.nbytes))
                inline_noise_bytes = 0
            else:
                self.enclave.record_compute("mask_inline", int(noise.nbytes))
            encoded = encoder.encode(x_q, noise=noise)
        else:
            encoded = encoder.encode(x_q)
        self.enclave.record_compute("encode_forward", int(encoded.shares.nbytes))
        share_key = f"{op.key}/step{self._step}/vb{vb_index}"
        self._scatter(share_key, encoded.shares)
        self._forward_store.setdefault(op.key, []).append(
            _ForwardRecord(
                coefficients=coeffs,
                share_key=share_key,
                indices=vb.indices,
                n_real=vb.n_real,
                x_norm=x_norm,
                w_norm=op.w_norm,
                vb_index=vb_index,
            )
        )
        return EncodeTicket(
            op=op,
            share_key=share_key,
            coefficients=coeffs,
            vb_index=vb_index,
            indices=vb.indices,
            n_real=vb.n_real,
            x_norm=x_norm,
            encode_bytes=int(encoded.shares.nbytes),
            inline_noise_bytes=inline_noise_bytes,
        )

    def dispatch(self, ticket: EncodeTicket) -> GpuFuture:
        """Stage 2 — run the bilinear kernel on every device holding a share.

        Compute happens eagerly (the simulation has no real asynchrony);
        the future carries the real per-share MAC count so a scheduler can
        price when the result *would* be ready on the simulated clock.
        """
        coeffs = ticket.coefficients
        macs_before = self.cluster.total_mac_ops()
        outputs = self.cluster.map_shares(
            coeffs.n_shares, lambda dev: ticket.op.gpu_op(dev, ticket.share_key)
        )
        macs = self.cluster.total_mac_ops() - macs_before
        return GpuFuture(
            ticket=ticket,
            outputs=outputs,
            macs_per_share=macs // max(1, coeffs.n_shares),
            output_bytes=int(outputs.nbytes),
        )

    def decode(self, future: GpuFuture) -> np.ndarray:
        """Stage 3 — gather, verify, unmask, dequantize; real rows only.

        Bias is *not* applied here (callers add it after concatenation,
        exactly like the synchronous path).
        """
        ticket = future.ticket
        self._gather(future.outputs)
        self._verify_forward(ticket.coefficients, future.outputs)
        decoded = ForwardDecoder(ticket.coefficients).decode(future.outputs)
        self.enclave.record_compute("decode_forward", int(decoded.nbytes))
        y = self.quantizer.dequantize_product(decoded)
        y = y * (ticket.x_norm.factor * ticket.op.w_norm.factor)
        return y[: ticket.n_real]

    def _masked_forward(self, x: np.ndarray, op: StagedLinearOp) -> np.ndarray:
        """Synchronous forward: drive the three stages back to back per
        virtual batch (the ``pipeline_depth=1`` execution order)."""
        outputs = [
            self.decode(self.dispatch(self.encode(op, vb, vb_index)))
            for vb_index, vb in enumerate(
                iter_virtual_batches(x, self.config.virtual_batch_size)
            )
        ]
        return np.concatenate(outputs, axis=0)

    def conv2d_forward(self, x, w, b, stride, pad, key):
        """Masked convolution over the virtual-batched input."""
        op = self.stage_linear("conv2d", w, b, key, stride, pad)
        out = self._masked_forward(x, op)
        if self.config.validate_decode:
            self._validate(out, self._float_conv(x, w, stride, pad), key)
        if b is not None:
            out = out + b.reshape(1, -1, 1, 1)
        return out

    def dense_forward(self, x, w, b, key):
        """Masked dense layer over the virtual-batched input."""
        op = self.stage_linear("dense", w, b, key)
        out = self._masked_forward(x, op)
        if self.config.validate_decode:
            self._validate(out, x @ w, key)
        if b is not None:
            out = out + b
        return out

    # ------------------------------------------------------------------
    # backward weight gradients (the Eq_j protocol)
    # ------------------------------------------------------------------
    def _masked_grad_w(self, delta: np.ndarray, key: str, gpu_op) -> np.ndarray:
        """Shared backward path: returns ``Σ_i <δ(i), x(i)>`` in float.

        ``gpu_op(device, share_key, combined_delta) -> field tensor``
        computes one ``Eq_j``.
        """
        if self.config.per_sample_normalization:
            raise ConfigurationError(
                "per-sample normalization is inference-only: the backward"
                " decode recovers a batch-aggregated gradient, which only a"
                " scalar batch factor can unscale"
            )
        records = self._forward_store.get(key)
        if not records:
            raise DecodingError(
                f"no stored forward encodings for layer {key!r}; run forward first"
            )
        cfg = self.config
        total: np.ndarray | None = None
        # Pipelined forwards may register records out of virtual-batch order;
        # sum in vb order so gradients are bit-identical to the sync path.
        records = sorted(records, key=lambda r: r.vb_index)
        staged: list[tuple] = []  # (record, d_q, d_norm, field equations)
        for record in records:
            rows = delta[list(record.indices)]
            if rows.shape[0] < cfg.virtual_batch_size:
                pad_rows = np.zeros(
                    (cfg.virtual_batch_size - rows.shape[0],) + rows.shape[1:],
                    dtype=rows.dtype,
                )
                rows = np.concatenate([rows, pad_rows], axis=0)
            d_scaled, d_norm = self._grad_normalizer.normalize(rows)
            d_q = self.quantizer.quantize(d_scaled)
            self.enclave.record_compute("quantize_deltas", int(d_q.nbytes))
            coeffs = record.coefficients
            # Quantized deltas and the public B rows ship to every GPU; the
            # combination Σ_i B[j,i]·δ(i) is GPU-side work (Section 4.2:
            # "δ(i)s are multiplied with the β_{j,i} in the GPUs").
            for j in range(coeffs.n_shares):
                self.link.transfer("enclave", f"gpu{j}", int(d_q.nbytes))
            equations = self.cluster.map_shares(
                coeffs.n_shares,
                lambda dev: gpu_op(
                    dev,
                    record.share_key,
                    dev.combine_deltas(d_q, coeffs.b[dev.device_id]),
                ),
            )
            self._gather(equations)
            staged.append((record, d_q, d_norm, np.asarray(equations, np.int64)))
        # All virtual batches share one coefficient set unless
        # fresh_coefficients re-draws per encode; in the shared case every
        # per-record gamma decode collapses into one batched GEMM
        # (bit-identical: field arithmetic is exact, order-free).
        coeffs0 = records[0].coefficients
        if len(staged) > 1 and all(
            r.coefficients is coeffs0 for r in records
        ) and len({eq.shape for _, _, _, eq in staged}) == 1:
            aggregates = list(
                BackwardDecoder(coeffs0).decode_many(
                    np.stack([eq for _, _, _, eq in staged])
                )
            )
        else:
            aggregates = [
                BackwardDecoder(record.coefficients).decode(eq)
                for record, _, _, eq in staged
            ]
        for (record, d_q, d_norm, _), aggregate in zip(staged, aggregates):
            coeffs = record.coefficients
            self.enclave.record_compute("decode_backward", int(aggregate.nbytes))
            if cfg.integrity:
                self._verify_backward(coeffs, d_q, aggregate, gpu_op, record)
            # The decode yields Σ<δ', x'> of the *normalised* operands; the
            # weight factor never enters a (δ, x) pairing, so only the input
            # and gradient factors multiply back.
            grad = self.quantizer.dequantize_product(aggregate)
            contribution = grad * (record.x_norm.factor * d_norm.factor)
            if self._aggregator is not None:
                self._aggregator.add_update(f"{key}/{record.share_key}", contribution)
            else:
                total = contribution if total is None else total + contribution
        if self._aggregator is not None:
            keys = [f"{key}/{r.share_key}" for r in records]
            return self._aggregator.aggregate(keys)
        return total

    def _verify_backward(self, coeffs, d_q, primary_aggregate, gpu_op, record) -> None:
        """Re-decode the aggregate under a ``B`` supported on an alternate subset."""
        alt_subset = None
        for subset in coeffs.iter_decoding_subsets(limit=4):
            if subset != coeffs.primary_subset:
                alt_subset = subset
                break
        if alt_subset is None:
            return
        b_alt, gamma = coeffs.backward_matrices_for_subset(alt_subset)
        equations = self.cluster.map_shares(
            coeffs.n_shares,
            lambda dev: gpu_op(
                dev,
                record.share_key,
                dev.combine_deltas(d_q, b_alt[dev.device_id]),
            ),
        )
        alt_aggregate = BackwardDecoder(coeffs).decode_with_matrices(
            equations, b_alt, gamma
        )
        verifier = IntegrityVerifier(coeffs)
        report = verifier.verify_backward(
            {coeffs.primary_subset: primary_aggregate, alt_subset: alt_aggregate}
        )
        report.raise_on_failure()
        self.enclave.record_compute("integrity_check_backward", int(d_q.nbytes))

    def conv2d_grad_w(self, x, delta, kh, kw, stride, pad, key):
        """Masked batch-aggregate conv weight gradient."""
        grad = self._masked_grad_w(
            delta,
            key,
            lambda dev, share_key, combined: dev.backward_equation_conv(
                share_key, combined, kh, kw, stride, pad
            ),
        )
        if self.config.validate_decode:
            from repro.nn import functional as F

            self._validate(
                grad, F.conv2d_grad_w(x, delta, kh, kw, np.matmul, stride, pad), key
            )
        return grad

    def dense_grad_w(self, x, delta, key):
        """Masked batch-aggregate dense weight gradient (``x^T @ δ``)."""
        grad = self._masked_grad_w(
            delta,
            key,
            lambda dev, share_key, combined: dev.backward_equation_dense(
                share_key, combined
            ),
        )
        if self.config.validate_decode:
            self._validate(grad, x.T @ delta, key)
        return grad

    # ------------------------------------------------------------------
    # delta propagation — offloaded unencoded (no input data involved)
    # ------------------------------------------------------------------
    def conv2d_grad_x(self, w, delta, x_shape, stride, pad, key):
        """Input gradient on GPU 0, raw floats (Section 4.2's second op)."""
        return self.cluster[0].float_conv2d_grad_x(w, delta, x_shape, stride, pad)

    def dense_grad_x(self, w, delta, key):
        """Input gradient ``δ @ w^T`` on GPU 0, raw floats."""
        return self.cluster[0].float_matmul(delta, w.T)

    # ------------------------------------------------------------------
    # lifecycle / debug
    # ------------------------------------------------------------------
    def end_batch(self) -> None:
        """Drop stored encodings on enclave and GPUs (between batches).

        Idempotent: a second call with no intervening forward work is a
        no-op (and does not advance the step counter), so defensive
        ``finally:``-style cleanup can stack without consequence.  Every
        encoding registered by :meth:`encode` is released here — including
        tickets a pipeline abort left undispatched or undecoded.
        """
        if not self._forward_store:
            return
        for records in self._forward_store.values():
            for record in records:
                self.cluster.drop_shares(record.share_key)
        self._forward_store.clear()
        self._step += 1

    def open_encodings(self) -> int:
        """Stored (layer, virtual-batch) encodings not yet released."""
        return sum(len(records) for records in self._forward_store.values())

    # ------------------------------------------------------------------
    # offline precompute (mask pool + weight-encoding cache)
    # ------------------------------------------------------------------
    def invalidate_precompute(self) -> None:
        """Drop cached weight encodings (membership change / model swap).

        The next :meth:`stage_linear` per layer re-quantizes and
        re-broadcasts from scratch.  The mask pool is untouched — its
        streams are keyed by shape, not by model identity, and its
        counters must keep advancing for bit-identity.
        """
        self._weight_cache.clear()

    def precompute_pending(self) -> int:
        """Bytes of the next mask-pool refill unit (0 = saturated or off).

        The pipeline executor polls this to fill enclave idle gaps with
        ``stage_precompute`` work.
        """
        return 0 if self._mask_pool is None else self._mask_pool.pending_bytes()

    def precompute_refill(self) -> int:
        """Pregenerate one mask tensor; returns its byte size."""
        if self._mask_pool is None:
            return 0
        nbytes = self._mask_pool.refill_one()
        if nbytes:
            self.enclave.record_compute("precompute_mask", nbytes)
        return nbytes

    def precompute_snapshot(self) -> dict | None:
        """Strict-JSON pool + weight-cache telemetry (``None`` when off)."""
        if self._mask_pool is None:
            return None
        snap = self._mask_pool.snapshot()
        counts = self.enclave.ledger.op_counts
        snap["weights_staged"] = counts.get("stage_weights", 0)
        snap["weights_reused"] = counts.get("reuse_weights", 0)
        snap["cached_layers"] = len(self._weight_cache)
        return snap

    def assert_encodings_released(self) -> None:
        """Fail loudly if any encoding survived cleanup.

        Checks both sides of the scatter: the enclave's forward store and
        the shares resident on every device.  Called after
        :meth:`end_batch` on inference exit paths so a leak (e.g. an abort
        path that skipped a record) surfaces as an error, not as unbounded
        simulated-GPU memory growth.
        """
        leaked = sorted(
            key for dev in self.cluster.devices for key in dev.stored_shares
        )
        if self._forward_store or leaked:
            raise DecodingError(
                f"encodings not released: {self.open_encodings()} forward records"
                f" ({sorted(self._forward_store)}), device shares {leaked[:8]}"
            )

    def _float_conv(self, x, w, stride, pad):
        from repro.nn import functional as F

        return F.conv2d_via_matmul(x, w, np.matmul, stride, pad)

    def _validate(self, got: np.ndarray, want: np.ndarray, key: str) -> None:
        """Debug cross-check of a masked result against the float reference."""
        tol = max(1e-6, 4.0 * self.quantizer.resolution * np.sqrt(got.size / max(1, got.shape[0])))
        err = float(np.max(np.abs(got - want))) if got.size else 0.0
        scale = float(np.max(np.abs(want))) + 1.0
        if err > tol * scale:
            raise DecodingError(
                f"masked decode for {key!r} deviates from float reference:"
                f" max err {err:.3e} vs tolerance {tol * scale:.3e}"
                " (likely fixed-point range overflow; lower fractional_bits"
                " or enable dynamic normalisation)"
            )
