"""Private inference engine (the paper's Section 7.2 usage).

Forward pass and inference share the same encoding (Section 4: "forward
pass and inference are similar in terms of encoding and decoding
functions"), so the engine is a thin orchestration over the DarKnight
backend in inference mode, with optional per-layer integrity verification.

Execution is staged: the engine owns a
:class:`~repro.pipeline.executor.PipelineExecutor` that walks the network's
execution plan with up to ``pipeline_depth`` virtual batches in flight.
``pipeline_depth=1`` keeps the classic synchronous path (and
:meth:`PrivateInferenceEngine.run_batch` then drives the network's forward
loop directly, exactly as before); deeper pipelines overlap enclave
encode/decode with GPU compute.  All depths produce bit-identical logits —
masking decodes exactly, so stage order never changes values.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn import Sequential
from repro.nn.loss import SoftmaxCrossEntropy
from repro.pipeline.executor import GroupResult, PipelineExecutor
from repro.pipeline.ranker import build_ranker
from repro.pipeline.stages import PipelineStats
from repro.pipeline.timing import EnclaveTimeline, StageCostModel
from repro.runtime.config import DarKnightConfig
from repro.runtime.darknight import DarKnightBackend


class PrivateInferenceEngine:
    """Runs a trained model on private inputs via masked offload.

    Parameters
    ----------
    network:
        A trained model.
    config:
        DarKnight parameters; ``integrity=True`` adds the redundant share
        and verifies every GPU result (the DarKnight(K)+Integrity bars of
        Fig. 6a).  ``pipeline_depth`` sets how many virtual batches the
        executor keeps in flight.
    backend:
        Optionally share an existing backend (e.g. to reuse its cluster).
    pipeline_depth:
        Overrides ``config.pipeline_depth`` when given.
    stage_costs:
        Simulated-time pricing for the pipeline stages (timed runs).
    timeline:
        The enclave's serialized simulated clock.  Pass a shared instance
        so consecutive batches overlap on the clock (the serving worker
        pool does exactly this for cross-batch pipelining).
    """

    def __init__(
        self,
        network: Sequential,
        config: DarKnightConfig | None = None,
        backend: DarKnightBackend | None = None,
        pipeline_depth: int | None = None,
        stage_costs: StageCostModel | None = None,
        timeline: EnclaveTimeline | None = None,
    ) -> None:
        self.network = network
        self.backend = backend or DarKnightBackend(config or DarKnightConfig())
        depth = (
            pipeline_depth
            if pipeline_depth is not None
            else self.backend.config.pipeline_depth
        )
        if depth < 1:
            raise ConfigurationError(f"pipeline depth must be >= 1, got {depth}")
        self.pipeline_depth = depth
        self.timeline = timeline or EnclaveTimeline()
        self.executor = PipelineExecutor(
            network,
            self.backend,
            pipeline_depth=depth,
            costs=stage_costs,
            timeline=self.timeline,
            ranker=build_ranker(self.backend.config.stage_ranker),
        )

    def run_batch(self, x: np.ndarray) -> np.ndarray:
        """Run one pre-formed batch through the masked pipeline.

        The reusable single-batch entry point serving workers call.  At
        ``pipeline_depth=1`` this is the classic synchronous forward; at
        deeper settings the staged executor interleaves virtual batches.
        Either way the backend's stored encodings are released on every
        exit path — including decode/integrity failures and pipeline
        aborts mid-network — and the release is asserted, so a byzantine
        batch cannot wedge (or leak into) the next one.
        """
        try:
            if self.pipeline_depth == 1:
                return self.network.forward(x, self.backend, training=False)
            return self.executor.run(x).output
        finally:
            self.backend.end_batch()
            self.backend.assert_encodings_released()

    def run_batch_timed(
        self, x: np.ndarray, release_time: float = 0.0
    ) -> tuple[np.ndarray, PipelineStats]:
        """Like :meth:`run_batch` but through the staged executor at every
        depth, returning per-stage simulated timings.

        ``release_time`` is when the batch became available on the
        simulated clock; the serving pool passes each batch's flush time
        so consecutive batches overlap on the shared timeline.
        """
        try:
            result = self.executor.run(x, release_time=release_time)
            return result.output, result.stats
        finally:
            self.backend.end_batch()
            self.backend.assert_encodings_released()

    def run_batch_window(
        self, items: list[tuple], step_range: tuple[int, int] | None = None
    ) -> tuple[list[GroupResult], PipelineStats]:
        """Pipeline a *window* of batches through one executor event loop.

        ``items`` is ``(batch, release_time)`` — optionally ``(batch,
        release_time, deadline)`` for SLO-ranked windows — per scheduled
        batch.  This
        is where cross-batch overlap actually happens: the enclave encodes
        batch ``n+1``'s first layer while batch ``n``'s shares are still on
        the GPUs.  Returns one :class:`~repro.pipeline.executor.GroupResult`
        per input batch (its logits plus its own start/finish on the
        simulated clock) and the window-wide stats.

        ``step_range`` runs only that slice of the execution plan — one
        layer-partition shard's stage range; mid-plan items are live value
        dicts and may carry a fourth ``transfer_bytes`` element pricing
        the sealed hand-off (see
        :meth:`~repro.pipeline.PipelineExecutor.run_grouped`).
        """
        try:
            return self.executor.run_grouped(items, step_range=step_range)
        finally:
            self.backend.end_batch()
            self.backend.assert_encodings_released()

    def predict_logits(self, x: np.ndarray) -> np.ndarray:
        """Logits for a batch of private inputs."""
        return self.run_batch(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions for a batch of private inputs."""
        return np.argmax(self.predict_logits(x), axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Top-1 accuracy of private predictions."""
        return SoftmaxCrossEntropy.accuracy(self.predict_logits(x), y)
