"""Private inference engine (the paper's Section 7.2 usage).

Forward pass and inference share the same encoding (Section 4: "forward
pass and inference are similar in terms of encoding and decoding
functions"), so the engine is a thin orchestration over the DarKnight
backend in inference mode, with optional per-layer integrity verification.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Sequential
from repro.nn.loss import SoftmaxCrossEntropy
from repro.runtime.config import DarKnightConfig
from repro.runtime.darknight import DarKnightBackend


class PrivateInferenceEngine:
    """Runs a trained model on private inputs via masked offload.

    Parameters
    ----------
    network:
        A trained model.
    config:
        DarKnight parameters; ``integrity=True`` adds the redundant share
        and verifies every GPU result (the DarKnight(K)+Integrity bars of
        Fig. 6a).
    backend:
        Optionally share an existing backend (e.g. to reuse its cluster).
    """

    def __init__(
        self,
        network: Sequential,
        config: DarKnightConfig | None = None,
        backend: DarKnightBackend | None = None,
    ) -> None:
        self.network = network
        self.backend = backend or DarKnightBackend(config or DarKnightConfig())

    def run_batch(self, x: np.ndarray) -> np.ndarray:
        """Run one pre-formed batch through the masked pipeline.

        The reusable single-batch entry point serving workers call: one
        forward pass over the shared backend, with the backend's stored
        encodings released even when decode/integrity verification raises
        (so a byzantine batch cannot wedge the next one).
        """
        try:
            return self.network.forward(x, self.backend, training=False)
        finally:
            self.backend.end_batch()

    def predict_logits(self, x: np.ndarray) -> np.ndarray:
        """Logits for a batch of private inputs."""
        return self.run_batch(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions for a batch of private inputs."""
        return np.argmax(self.predict_logits(x), axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Top-1 accuracy of private predictions."""
        return SoftmaxCrossEntropy.accuracy(self.predict_logits(x), y)
