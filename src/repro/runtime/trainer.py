"""Training loops over any linear backend (raw float or DarKnight).

The same :class:`Trainer` drives both sides of the paper's Fig. 4 accuracy
comparison: construct it with a :class:`~repro.nn.backends.PlainBackend`
for the "Raw Data" curve and a
:class:`~repro.runtime.darknight.DarKnightBackend` for the private curve —
model code and data pipeline stay identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.errors import ConfigurationError
from repro.nn import SGD, PlainBackend, Sequential, SoftmaxCrossEntropy
from repro.nn.backends import LinearBackend
from repro.runtime.config import DarKnightConfig
from repro.runtime.darknight import DarKnightBackend


@dataclass
class TrainingHistory:
    """Per-epoch metrics collected by :meth:`Trainer.fit`."""

    loss: list[float] = dataclass_field(default_factory=list)
    accuracy: list[float] = dataclass_field(default_factory=list)
    val_accuracy: list[float] = dataclass_field(default_factory=list)


class Trainer:
    """Minibatch SGD training over a pluggable backend.

    Parameters
    ----------
    network:
        The model (built by :mod:`repro.models` or by hand).
    backend:
        Where linear ops execute; default plain float.
    lr / momentum / weight_decay:
        Optimiser knobs.
    """

    def __init__(
        self,
        network: Sequential,
        backend: LinearBackend | None = None,
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        self.network = network
        self.backend = backend or PlainBackend()
        self.loss = SoftmaxCrossEntropy()
        self.optimizer = SGD(network, lr=lr, momentum=momentum, weight_decay=weight_decay)
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    # steps and epochs
    # ------------------------------------------------------------------
    def train_step(self, x: np.ndarray, y: np.ndarray) -> float:
        """One SGD step; returns the batch loss."""
        logits = self.network.forward(x, self.backend, training=True)
        loss_value = self.loss.forward(logits, y)
        self.network.backward(self.loss.backward(), self.backend)
        self.optimizer.step()
        self.optimizer.zero_grad()
        self.backend.end_batch()
        return loss_value

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        batch_size: int,
        val_x: np.ndarray | None = None,
        val_y: np.ndarray | None = None,
        shuffle_seed: int = 0,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes, recording loss/accuracy per epoch."""
        if x.shape[0] != np.asarray(y).shape[0]:
            raise ConfigurationError("x and y disagree on sample count")
        if batch_size < 1:
            raise ConfigurationError(f"batch size must be >= 1, got {batch_size}")
        rng = np.random.default_rng(shuffle_seed)
        n = x.shape[0]
        for epoch in range(epochs):
            order = rng.permutation(n)
            epoch_losses = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                epoch_losses.append(self.train_step(x[idx], y[idx]))
            self.history.loss.append(float(np.mean(epoch_losses)))
            self.history.accuracy.append(self.evaluate(x, y))
            if val_x is not None and val_y is not None:
                self.history.val_accuracy.append(self.evaluate(val_x, val_y))
            if verbose:  # pragma: no cover - console convenience
                print(
                    f"epoch {epoch + 1}/{epochs}: loss={self.history.loss[-1]:.4f}"
                    f" acc={self.history.accuracy[-1]:.3f}"
                )
        return self.history

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Top-1 accuracy in inference mode (plain backend: evaluation is
        not privacy-sensitive on the server's own held-out checks; use
        :mod:`repro.runtime.inference` for private predictions)."""
        logits = self.network.predict(x, PlainBackend())
        return SoftmaxCrossEntropy.accuracy(logits, y)


def make_darknight_trainer(
    network: Sequential,
    config: DarKnightConfig | None = None,
    lr: float = 0.05,
    momentum: float = 0.9,
    weight_decay: float = 0.0,
) -> tuple[Trainer, DarKnightBackend]:
    """Convenience: build a trainer wired to a fresh DarKnight backend."""
    backend = DarKnightBackend(config or DarKnightConfig())
    trainer = Trainer(
        network, backend, lr=lr, momentum=momentum, weight_decay=weight_decay
    )
    return trainer, backend
