"""Configuration for the DarKnight runtime."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.fieldmath import DEFAULT_PRIME


@dataclass(frozen=True)
class DarKnightConfig:
    """Everything that parameterises a DarKnight session.

    Parameters
    ----------
    virtual_batch_size:
        ``K`` — inputs combined per encoding (SGX memory bounds it to ~4-8
        in the paper; Fig. 3/6b sweep it).
    collusion_tolerance:
        ``M`` — noise vectors; privacy holds against up to ``M`` colluding
        GPUs.  The paper's base scheme is ``M = 1``.
    integrity:
        Add one redundant share (``K' = K + M + 1`` GPUs) and verify every
        GPU result against a second decode subset (Section 4.4).
    fractional_bits:
        ``l`` of Algorithm 1 (8 in the paper).
    prime:
        Field modulus (``2**25 - 39`` in the paper).
    field_backend:
        Field-op backend every masked GEMM dispatches to
        (:mod:`repro.fieldmath.kernels`): ``"limb"`` (the default — exact
        float64 BLAS GEMMs over 13-bit limbs with Barrett reduction, ~8x
        faster) or ``"generic"`` (the chunked int64 oracle).  Backends are
        bit-identical by construction; constructing a backend applies the
        choice process-wide.
    dynamic_normalization:
        Max-abs rescale tensors before quantization (the paper's VGG mode);
        gradients are always normalised since their scale varies wildly.
    mds_noise:
        Build the noise block as Vandermonde/MDS so collusion privacy is by
        construction, not w.h.p.
    sealed_aggregation:
        Route per-virtual-batch weight updates through Algorithm 2's
        seal -> evict -> reload -> aggregate path instead of accumulating
        in enclave memory.
    fresh_coefficients:
        Regenerate the masking coefficients for every virtual batch (the
        paper's training behaviour, and the safe default).  ``False`` lets
        the backend reuse one cached :class:`CoefficientSet` per
        ``(K, M, integrity)`` shape — the per-encode noise vectors stay
        fresh, only the resampling/inversion of ``A``/``B``/``Gamma`` is
        skipped, which the serving hot path exploits.
    validate_decode:
        Debug mode: cross-check every masked decode against a float
        reference and fail loudly on range overflow (tests use this).
    pipeline_depth:
        Virtual batches the inference pipeline keeps in flight.  ``1`` is
        the classic synchronous path (encode, compute, decode serialize
        per batch); ``>= 2`` lets the enclave encode batch ``n+1`` while
        GPUs compute batch ``n`` (the paper's Fig. 7 overlap).  Outputs
        are bit-identical at every depth.
    stage_ranker:
        The pipeline executor's task-selection policy
        (:mod:`repro.pipeline.ranker`): ``"earliest"`` (the default —
        earliest feasible start, decode-first tie-break) or
        ``"deadline"`` (jobs carrying the tightest remaining SLO budget
        run first).  Every ranker decodes bit-identical values; only the
        simulated schedule changes.
    num_shards:
        Enclave shards the serving layer partitions tenants across.  Each
        shard owns its own enclave + GPU cluster + serialized timeline, so
        shards progress in parallel on the simulated clock; ``1`` keeps
        the single-enclave deployment.  Requires
        ``num_shards * n_gpus_required`` simulated GPUs in total.  Under
        elastic autoscaling (``ServingConfig.autoscale``) this is only
        the *initial* count — the server clamps it into the autoscaler's
        ``[min_shards, max_shards]`` band and membership changes at
        runtime.
    per_sample_normalization:
        Dynamic-normalize each virtual-batch slot by its *own* max-abs
        instead of the whole batch's, making a sample's decoded logits
        independent of whatever it was co-batched with.  Inference-only
        (the backward pass needs a scalar batch factor); the serving layer
        enables it so routing/coalescing choices — including shard counts —
        can never change a response bit.
    precompute:
        Enable the offline/online split (:mod:`repro.precompute`): masks
        are drawn from a pregenerated counter-based pool refilled during
        enclave idle gaps, weight encodings are cached per layer across
        flush windows (invalidated on membership change / model swap),
        and hot-path kernels reuse per-shape scratch buffers.  Off (the
        default) keeps the legacy always-inline behaviour; outputs are
        bit-identical either way.
    epc_budget_bytes:
        Usable EPC bytes each provisioned enclave models (``None`` keeps
        the paper generation's ~93 MB).  The serving layer's adaptive
        batching sizes the virtual batch against this budget so one
        batch's masking working set never silently pages; tests and
        benchmarks shrink it to exercise the paper's Fig. 3/6b memory
        knee without 93 MB tensors.
    seed:
        Seed for all enclave randomness.
    """

    virtual_batch_size: int = 4
    collusion_tolerance: int = 1
    integrity: bool = False
    fractional_bits: int = 8
    prime: int = DEFAULT_PRIME
    field_backend: str = "limb"
    dynamic_normalization: bool = True
    mds_noise: bool = True
    sealed_aggregation: bool = False
    fresh_coefficients: bool = True
    validate_decode: bool = False
    pipeline_depth: int = 1
    stage_ranker: str = "earliest"
    num_shards: int = 1
    per_sample_normalization: bool = False
    precompute: bool = False
    epc_budget_bytes: int | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.virtual_batch_size < 1:
            raise ConfigurationError(
                f"virtual batch size must be >= 1, got {self.virtual_batch_size}"
            )
        if self.collusion_tolerance < 1:
            raise ConfigurationError(
                f"collusion tolerance must be >= 1, got {self.collusion_tolerance}"
            )
        if self.fractional_bits < 1:
            raise ConfigurationError(
                f"fractional bits must be >= 1, got {self.fractional_bits}"
            )
        if self.pipeline_depth < 1:
            raise ConfigurationError(
                f"pipeline depth must be >= 1, got {self.pipeline_depth}"
            )
        # Validated here (not just at executor construction) so a bad
        # name fails before any enclave/GPU provisioning happens.
        from repro.pipeline.ranker import STAGE_RANKERS

        if self.stage_ranker not in STAGE_RANKERS:
            raise ConfigurationError(
                f"unknown stage ranker {self.stage_ranker!r}"
                f" (available: {sorted(STAGE_RANKERS)})"
            )
        from repro.fieldmath.kernels import BACKENDS

        if self.field_backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown field backend {self.field_backend!r}"
                f" (available: {sorted(BACKENDS)})"
            )
        if self.num_shards < 1:
            raise ConfigurationError(
                f"num shards must be >= 1, got {self.num_shards}"
            )
        if self.epc_budget_bytes is not None and self.epc_budget_bytes <= 0:
            raise ConfigurationError(
                f"EPC budget must be > 0 bytes, got {self.epc_budget_bytes}"
            )

    @property
    def extra_shares(self) -> int:
        """Redundant shares added for integrity."""
        return 1 if self.integrity else 0

    @property
    def n_shares(self) -> int:
        """Encoded shares per virtual batch = GPUs that receive data."""
        return self.virtual_batch_size + self.collusion_tolerance + self.extra_shares

    @property
    def n_gpus_required(self) -> int:
        """``K'`` — the paper's ``K + M + 1 <= K'`` bound (equality here)."""
        return self.n_shares
