"""Ablation: virtual batch size K on end-to-end *training* time.

Fig. 3 sweeps K for aggregation and Fig. 6b for inference; the paper never
shows the training-side sweep explicitly.  This ablation completes the
picture: larger K amortises masking and communication per sample until the
EPC knee at K=4, after which paging offsets further amortisation and the
curve flattens — the quantitative argument for the paper's K=4 default
(training is less knee-sensitive than aggregation/inference because its
per-sample cost is dominated by TEE non-linear work that K cannot shrink).
"""

from conftest import show

from repro.models import resnet50_spec, vgg16_spec
from repro.perf import CostModel
from repro.reporting import render_table
from repro.runtime import DarKnightConfig


def _sweep():
    cm = CostModel()
    out = {}
    for name, spec_fn in (("VGG16", vgg16_spec), ("ResNet50", resnet50_spec)):
        spec = spec_fn()
        baseline = cm.sgx_baseline_training(spec).total
        out[name] = {
            k: baseline
            / cm.darknight_training(spec, DarKnightConfig(virtual_batch_size=k)).total
            for k in (1, 2, 3, 4, 5, 6)
        }
    return out


def test_ablation_virtual_batch_training(benchmark, capsys):
    series = benchmark(_sweep)
    ks = sorted(next(iter(series.values())))
    show(
        capsys,
        render_table(
            ["Model"] + [f"K={k}" for k in ks],
            [
                [model] + [f"{speedups[k]:.1f}x" for k in ks]
                for model, speedups in series.items()
            ],
            title="Ablation — training speedup over SGX baseline vs virtual batch size",
        ),
    )
    for model, speedups in series.items():
        # Monotone gains up to the knee...
        assert speedups[1] < speedups[2] < speedups[4], model
        # ...then the curve flattens: the 4->6 marginal gain collapses to a
        # small fraction of the 1->2 gain (paging offsets amortisation).
        early_gain = speedups[2] - speedups[1]
        late_gain = speedups[6] - speedups[4]
        assert late_gain < 0.4 * early_gain, model
        assert speedups[6] <= speedups[5] * 1.01, model
