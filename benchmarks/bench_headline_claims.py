"""Headline claims: the abstract's 6.5x training / 12.5x inference averages.

"We observe an average of 6.5x performance improvement for different DNN
models" (training, Section 1) and "an average of 6.5x training speedup and
12.5x inference speedup" (Section 8).
"""

from conftest import show

from repro.perf import headline_speedups
from repro.reporting import render_table


def test_headline_claims(benchmark, capsys):
    headline = benchmark(headline_speedups)
    show(
        capsys,
        render_table(
            ["Claim", "Paper", "Reproduced"],
            [
                ["avg training speedup", "6.5x", f"{headline['training_speedup_avg']:.1f}x"],
                ["avg inference speedup", "12.5x", f"{headline['inference_speedup_avg']:.1f}x"],
            ],
            title="Headline claims (abstract / conclusion)",
        ),
    )
    assert abs(headline["training_speedup_avg"] - 6.5) / 6.5 < 0.5
    assert abs(headline["inference_speedup_avg"] - 12.5) / 12.5 < 0.5
