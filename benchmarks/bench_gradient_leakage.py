"""Section 6's side-channel argument, measured: ∇W leakage vs batch size.

The paper (citing Zhu et al.) concedes the aggregate update may leak input
information, and argues large-batch aggregation "can eliminate nearly all
the side channel leakage".  This benchmark quantifies that on the real
substrate: the cosine alignment between a target sample's gradient and the
released aggregate, as the aggregation width grows.
"""

from conftest import show

import numpy as np

from repro.analysis import gradient_leakage_curve, leakage_reduction
from repro.data import cifar_like
from repro.models import build_mini_vgg
from repro.reporting import render_series


def _measure():
    data = cifar_like(n_train=32, n_test=8, seed=0, size=8)
    net = build_mini_vgg(
        input_shape=(3, 8, 8), n_classes=10, rng=np.random.default_rng(0), width=8
    )
    return gradient_leakage_curve(
        net, data.x_train, data.y_train, batch_sizes=(1, 2, 4, 8, 16, 32), seed=0
    )


def test_gradient_leakage(benchmark, capsys):
    points = benchmark.pedantic(_measure, rounds=1, iterations=1)
    show(
        capsys,
        render_series(
            "Gradient leakage — |cos(target grad, aggregate grad)| vs batch size",
            [p.batch_size for p in points],
            [p.alignment for p in points],
        )
        + f"\n  leakage reduction at batch 32: {leakage_reduction(points):.1%}",
    )
    alignments = [p.alignment for p in points]
    # Perfect alignment at batch 1 (the update IS the sample's gradient)...
    assert alignments[0] > 0.999
    # ...monotone-ish dilution as aggregation widens...
    assert alignments[-1] < alignments[1] < alignments[0]
    # ...with most of the signature gone at batch 32 (the paper's mitigation).
    assert leakage_reduction(points) > 0.4
