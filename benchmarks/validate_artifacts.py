"""Assert every benchmark JSON artifact parses as *strict* JSON.

``json.dumps`` happily emits the non-standard ``Infinity``/``NaN``
literals (and ``json.loads`` accepts them back), so a metric leaking a
non-finite float produces an artifact most other tooling rejects.  CI
runs this after the benchmark-smoke jobs: parsing with a
``parse_constant`` rejector fails the build the moment any artifact
carries a non-finite constant.

Usage::

    python benchmarks/validate_artifacts.py bench-results/
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def _reject(constant: str):
    raise ValueError(f"non-strict JSON constant {constant!r}")


def validate_tree(root: Path) -> list[Path]:
    """Strict-parse every ``*.json`` under ``root``; return the files."""
    files = sorted(root.rglob("*.json"))
    if not files:
        raise SystemExit(f"no JSON artifacts found under {root}")
    for path in files:
        try:
            json.loads(path.read_text(), parse_constant=_reject)
        except ValueError as exc:
            raise SystemExit(f"{path}: not strict JSON ({exc})") from exc
    return files


def main(argv: list[str]) -> int:
    root = Path(argv[0]) if argv else Path("bench-results")
    files = validate_tree(root)
    print(f"{len(files)} artifact(s) under {root} are strict JSON:")
    for path in files:
        print(f"  {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
