"""Ablation: MDS (Vandermonde) vs random noise coefficients (Section 4.5).

The paper asserts that a full-rank random ``A2`` keeps every column subset
full rank; that only holds with high probability.  Our default builds
``A2`` as a Vandermonde matrix where the property is guaranteed.  This
ablation measures what the guarantee costs (coefficient-generation time)
and certifies both constructions' subset-rank property empirically.
"""

from conftest import show

from repro.fieldmath import FieldRng, PrimeField, all_column_subsets_full_rank
from repro.masking import CoefficientSet
from repro.reporting import render_table

K, M, EXTRA = 3, 2, 1
TRIALS = 24


def _generate_many(mds: bool) -> dict:
    field = PrimeField()
    rng = FieldRng(field, seed=7)
    certified = 0
    for _ in range(TRIALS):
        coeffs = CoefficientSet.generate(rng, k=K, m=M, extra_shares=EXTRA, mds_noise=mds)
        if all_column_subsets_full_rank(field, coeffs.a2, M, max_checks=None):
            certified += 1
    return {"mds": mds, "certified": certified, "trials": TRIALS}


def test_ablation_mds_noise(benchmark, capsys):
    mds_stats = benchmark(lambda: _generate_many(True))
    random_stats = _generate_many(False)
    show(
        capsys,
        render_table(
            ["A2 construction", "subset-rank certified", "guarantee"],
            [
                ["Vandermonde (MDS)", f"{mds_stats['certified']}/{mds_stats['trials']}",
                 "by construction"],
                ["random", f"{random_stats['certified']}/{random_stats['trials']}",
                 "w.h.p. only (1 - O(M/p))"],
            ],
            title=f"Ablation — noise-block construction (K={K}, M={M})",
        ),
    )
    # MDS must certify always; random certifies w.h.p. over a large field
    # (failures are ~M/p per subset, so 24 trials virtually always pass too —
    # the point is the *guarantee*, not the empirical rate).
    assert mds_stats["certified"] == TRIALS
    assert random_stats["certified"] >= TRIALS - 1
