"""Table 3: ImageNet training time breakdown per phase.

Paper fractions (DarKnight | baseline):
  VGG16        lin .04 nonlin .50 encdec .19 comm .26 | lin .84 nonlin .16
  ResNet50     lin .04 nonlin .75 encdec .01 comm .20 | lin .61 nonlin .39
  MobileNetV2  lin .06 nonlin .63 encdec .08 comm .23 | lin .62 nonlin .38

Shape requirement: non-linear TEE time dominates DarKnight (especially the
BN models), linear is tiny, encode/decode and communication are the paper's
order of magnitude.  Our VGG16 charges more communication than the paper
(we price the parameter-shaped Eq_j returns; see EXPERIMENTS.md).
"""

from conftest import show

from repro.perf import table3_rows
from repro.reporting import render_table


def test_table3_time_breakdown(benchmark, capsys):
    rows = benchmark(table3_rows)
    rendered = render_table(
        ["Model", "DK lin", "DK nonlin", "DK enc/dec", "DK comm", "BL lin", "BL nonlin"],
        [
            [
                r["model"],
                f"{r['darknight']['linear']:.2f}",
                f"{r['darknight']['nonlinear']:.2f}",
                f"{r['darknight']['encode_decode']:.2f}",
                f"{r['darknight']['communication']:.2f}",
                f"{r['baseline']['linear']:.2f}",
                f"{r['baseline']['nonlinear']:.2f}",
            ]
            for r in rows
        ],
        title="Table 3 — Training time breakdown (fractions of total)",
    )
    show(capsys, rendered)
    by_model = {r["model"]: r for r in rows}
    # DarKnight linear is tiny everywhere (the offload worked).
    for r in rows:
        assert r["darknight"]["linear"] < 0.10
    # BN models are TEE-nonlinear dominated.
    assert by_model["ResNet50"]["darknight"]["nonlinear"] > 0.5
    assert by_model["MobileNetV2"]["darknight"]["nonlinear"] > 0.5
    # Baselines are linear-dominated for VGG (paper: 0.84).
    assert by_model["VGG16"]["baseline"]["linear"] > 0.7
