"""Fig. 3: aggregation speedup vs virtual batch size (batch 128).

Paper: speedup grows with K and peaks at K=4 for all three models; K=5
regresses because the virtual batch no longer fits enclave memory.
"""

from conftest import show

from repro.perf import fig3_series
from repro.reporting import render_series


def test_fig3_virtual_batch_aggregation(benchmark, capsys):
    series = benchmark(fig3_series)
    lines = []
    for model, speedups in series.items():
        ks = sorted(speedups)
        lines.append(
            render_series(
                f"Fig 3 — {model} aggregation speedup vs K=1",
                ks,
                [speedups[k] for k in ks],
                unit="x",
            )
        )
    show(capsys, "\n".join(lines))
    for model, speedups in series.items():
        assert speedups[2] < speedups[3] < speedups[4], model
        assert speedups[5] < speedups[4], f"{model}: K=5 must dip (EPC overflow)"
        assert speedups[4] > 2.0, model
