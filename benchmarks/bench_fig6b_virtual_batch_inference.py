"""Fig. 6(b): per-operation inference speedup vs virtual batch size (VGG16).

Paper: relative to DarKnight(1), blinding/unblinding/relu/maxpool/total all
improve as K grows while the virtual batch fits SGX memory; past K=4 the
execution regresses from EPC overflow.
"""

from conftest import show

from repro.perf import fig6b_series
from repro.reporting import render_table

OPS = ["Unblinding", "Blinding", "Relu", "Maxpooling", "Total"]


def test_fig6b_virtual_batch_inference(benchmark, capsys):
    series = benchmark(fig6b_series)
    ks = sorted(series["Total"])
    rendered = render_table(
        ["Operation"] + [f"K={k}" for k in ks],
        [[op] + [f"{series[op][k]:.2f}x" for k in ks] for op in OPS],
        title="Fig 6b — Inference speedup per op vs DarKnight(1), VGG16",
    )
    show(capsys, rendered)
    total = series["Total"]
    assert total[1] == 1.0
    assert 1.0 < total[2] < total[4], "total speedup must rise to the K=4 knee"
    assert total[6] < total[4], "K=6 must regress (EPC overflow)"
    for op in ("Blinding", "Unblinding", "Relu", "Maxpooling"):
        assert series[op][4] > 1.0, op
