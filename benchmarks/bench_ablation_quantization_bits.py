"""Ablation: fractional bits l vs fidelity and headroom (Section 5's choice).

The paper fixes l = 8 with p = 2**25 - 39.  This ablation shows why: sweeping
l trades round-trip precision against the signed-range headroom available
for bilinear accumulation, and measures the *realised* end-to-end logit
error of the masked pipeline at each l on a Mini model.
"""

import numpy as np
from conftest import show

from repro.models import build_mini_vgg
from repro.nn import PlainBackend
from repro.quantization import QuantizationConfig
from repro.reporting import render_table
from repro.runtime import DarKnightBackend, DarKnightConfig


def _sweep():
    rows = []
    rng = np.random.default_rng(0)
    net = build_mini_vgg(input_shape=(3, 8, 8), n_classes=10, rng=rng, width=8)
    x = rng.normal(size=(4, 3, 8, 8))
    reference = net.forward(x, PlainBackend(), training=False)
    for bits in (4, 6, 8, 10):
        q = QuantizationConfig(fractional_bits=bits)
        backend = DarKnightBackend(
            DarKnightConfig(virtual_batch_size=2, fractional_bits=bits, seed=0)
        )
        out = net.forward(x, backend, training=False)
        backend.end_batch()
        rows.append(
            {
                "bits": bits,
                "resolution": q.resolution,
                "max_safe_product": q.max_safe_product(),
                "logit_error": float(np.max(np.abs(out - reference))),
            }
        )
    return rows


def test_ablation_quantization_bits(benchmark, capsys):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    show(
        capsys,
        render_table(
            ["l (bits)", "resolution 2^-l", "max safe |<w,x>|", "masked logit err"],
            [
                [r["bits"], f"{r['resolution']:.5f}", f"{r['max_safe_product']:.0f}",
                 f"{r['logit_error']:.4f}"]
                for r in rows
            ],
            title="Ablation — fixed-point precision vs headroom (MiniVGG inference)",
        ),
    )
    errors = {r["bits"]: r["logit_error"] for r in rows}
    # More bits -> less error, monotonically across the sweep.
    assert errors[4] > errors[6] > errors[8] > errors[10]
    # The paper's l=8 already sits under typical logit noise.
    assert errors[8] < 0.1
    # Headroom shrinks 4x per extra bit pair.
    headroom = {r["bits"]: r["max_safe_product"] for r in rows}
    assert headroom[4] / headroom[6] == 16
    assert headroom[8] / headroom[10] == 16
