"""Pipelined vs synchronous execution: the paper's Fig. 7 overlap, measured.

DarKnight's threading argument says enclave encode/decode and GPU linear
compute should overlap across batches instead of serializing.  This
benchmark drives a VGG-style conv stack (9 offloaded linear layers) through
the staged executor at ``pipeline_depth=1`` (the classic synchronous
schedule) and at depth 6 (six virtual batches in flight), on identical
inputs, and compares simulated makespans.  Outputs must stay bit-identical
— pipelining reorders stages, never values.

The stage cost profile is the *balanced* regime the overlap argument
targets: one conv share's GPU kernel time rivals the enclave's
encode+decode for the same virtual batch (roughly the paper's SGX-vs-V100
operating point).  Acceptance: >= 1.5x simulated speedup, with the
enclave-busy vs GPU-busy utilization split reported per schedule.
"""

import numpy as np
from conftest import show

from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential
from repro.pipeline import PipelineExecutor, StageCostModel
from repro.reporting import render_table
from repro.runtime import DarKnightBackend, DarKnightConfig

K = 4
N_SAMPLES = 24  # 6 virtual batches in flight at depth >= 6
PIPELINE_DEPTH = 6

#: Balanced SGX-vs-GPU operating point (see module docstring).
OVERLAP_COSTS = StageCostModel(stage_overhead=5e-5, gpu_mac_throughput=1e9)


def _vgg_style_net(seed=0, width=16):
    """Eight 3x3 conv layers in two VGG blocks plus a dense head."""
    rng = np.random.default_rng(seed)
    layers = [Conv2D(3, width, 3, 1, 1, rng=rng), ReLU()]
    for _ in range(3):
        layers += [Conv2D(width, width, 3, 1, 1, rng=rng), ReLU()]
    layers += [MaxPool2D(2)]
    for _ in range(4):
        layers += [Conv2D(width, width, 3, 1, 1, rng=rng), ReLU()]
    layers += [Flatten(), Dense(width * 8 * 8, 10, rng=rng)]
    return Sequential(layers, (3, 16, 16))


def _run(depth: int, net, x):
    backend = DarKnightBackend(DarKnightConfig(virtual_batch_size=K, seed=7))
    executor = PipelineExecutor(net, backend, pipeline_depth=depth, costs=OVERLAP_COSTS)
    result = executor.run(x)
    backend.end_batch()
    backend.assert_encodings_released()
    return result


def test_pipeline_overlap_speedup(benchmark, capsys, quick):
    """>= 1.5x simulated speedup from layer-pipelined cross-batch overlap.

    ``--quick`` keeps the 9-layer stack at full width (the overlap regime
    depends on the conv/dense cost balance) and trims the sample count.
    """
    net = _vgg_style_net()
    n_linear = sum(1 for step in net.execution_plan() if step.offloaded)
    assert n_linear >= 8, f"need a >= 8-linear-layer model, built {n_linear}"
    n_samples = 16 if quick else N_SAMPLES
    x = np.random.default_rng(1).normal(size=(n_samples, 3, 16, 16))

    def run_pair():
        return _run(1, net, x), _run(PIPELINE_DEPTH, net, x)

    sync, pipelined = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert np.array_equal(sync.output, pipelined.output), "pipelining changed logits"
    assert pipelined.stats.n_jobs >= 4

    speedup = sync.stats.makespan / pipelined.stats.makespan
    rows = [
        [
            "synchronous (depth 1)",
            f"{sync.stats.makespan * 1e3:.2f}",
            f"{sync.stats.enclave_utilization:.2f}",
            f"{sync.stats.gpu_utilization:.2f}",
            f"{sync.stats.stage_totals.get('encode', 0) * 1e3:.2f}",
            f"{sync.stats.stage_totals.get('gpu', 0) * 1e3:.2f}",
            f"{sync.stats.stage_totals.get('decode', 0) * 1e3:.2f}",
        ],
        [
            f"pipelined (depth {PIPELINE_DEPTH})",
            f"{pipelined.stats.makespan * 1e3:.2f}",
            f"{pipelined.stats.enclave_utilization:.2f}",
            f"{pipelined.stats.gpu_utilization:.2f}",
            f"{pipelined.stats.stage_totals.get('encode', 0) * 1e3:.2f}",
            f"{pipelined.stats.stage_totals.get('gpu', 0) * 1e3:.2f}",
            f"{pipelined.stats.stage_totals.get('decode', 0) * 1e3:.2f}",
        ],
    ]
    show(
        capsys,
        render_table(
            [
                "schedule",
                "makespan ms",
                "enclave util",
                "gpu util",
                "encode ms",
                "gpu ms",
                "decode ms",
            ],
            rows,
            title=(
                "Layer-pipelined encode/compute/decode — VGG-style, "
                f"{n_linear} linear layers, {pipelined.stats.n_jobs} virtual batches"
                f" in flight (speedup {speedup:.2f}x simulated)"
            ),
        ),
    )

    assert speedup >= 1.5, f"pipelined speedup only {speedup:.2f}x"
    # Overlap = both resources busier within a shorter window.
    assert pipelined.stats.enclave_utilization > sync.stats.enclave_utilization
    assert pipelined.stats.gpu_utilization > sync.stats.gpu_utilization


def test_depth_sweep_monotone_until_saturation(benchmark, capsys, quick):
    """More in-flight batches help until the bottleneck resource saturates."""
    net = _vgg_style_net(seed=3)
    n_samples = 16 if quick else N_SAMPLES
    x = np.random.default_rng(2).normal(size=(n_samples, 3, 16, 16))

    def sweep():
        return {d: _run(d, net, x).stats for d in (1, 2, 4, 6)}

    stats = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = stats[1].makespan
    rows = [
        [
            f"depth {d}",
            f"{s.makespan * 1e3:.2f}",
            f"{base / s.makespan:.2f}x",
            f"{s.enclave_utilization:.2f}",
            f"{s.gpu_utilization:.2f}",
        ]
        for d, s in stats.items()
    ]
    show(
        capsys,
        render_table(
            ["schedule", "makespan ms", "speedup", "enclave util", "gpu util"],
            rows,
            title="Pipeline depth sweep — overlap saturates at the bottleneck",
        ),
    )
    assert stats[2].makespan < stats[1].makespan
    assert stats[4].makespan <= stats[2].makespan
    assert stats[6].makespan <= stats[4].makespan
