"""Microbenchmarks of the library's hot kernels (real wall-clock timing).

Unlike the exhibit benches (which assert *modeled* shapes), these time the
actual numpy implementations that every experiment runs on: the prime-field
GEMM in both backends (the generic chunked oracle vs the limb-decomposed
BLAS path) against plain float matmul, the encode/decode primitives at a
realistic layer size, Vandermonde/elimination coefficient generation, and
the batched conv-as-GEMM lowering.  Useful for regression-tracking the
simulator's own performance: CI appends the ``--benchmark-json`` output of
this file to ``BENCH_kernels.json`` via ``benchmarks/check_regression.py``,
which fails the build when a tracked kernel regresses.

The limb backend must be *exactly* as correct as the generic one, so every
timed call also cross-checks its result; the speedup acceptance test lives
here (not in tier-1) because wall-clock ratios belong in the bench lane.
"""

import time

import numpy as np
import pytest

from repro.fieldmath import FieldRng, PrimeField, field_matmul
from repro.masking import (
    BackwardDecoder,
    CoefficientSet,
    ForwardDecoder,
    ForwardEncoder,
    reference_aggregate,
)
from repro.nn.functional import conv2d_via_matmul
from repro.precompute import enable_scratch
from repro.quantization import QuantizationConfig

FIELD = PrimeField()
RNG = FieldRng(FIELD, seed=0)
N = 96
N_BIG = 256


@pytest.fixture(scope="module")
def operands():
    return RNG.uniform((N, N)), RNG.uniform((N, N))


@pytest.fixture(scope="module")
def big_operands():
    return RNG.uniform((N_BIG, N_BIG)), RNG.uniform((N_BIG, N_BIG))


def test_field_matmul_speed(benchmark, operands):
    a, b = operands
    result = benchmark(lambda: field_matmul(FIELD, a, b))
    assert result.shape == (N, N)


def test_float_matmul_reference_speed(benchmark, operands):
    a, b = operands
    af, bf = a.astype(np.float64), b.astype(np.float64)
    result = benchmark(lambda: af @ bf)
    assert result.shape == (N, N)


def test_field_matmul_generic_speed_n256(benchmark, big_operands):
    a, b = big_operands
    result = benchmark(lambda: field_matmul(FIELD, a, b, backend="generic"))
    assert result.shape == (N_BIG, N_BIG)


def test_field_matmul_limb_speed_n256(benchmark, big_operands):
    a, b = big_operands
    result = benchmark(lambda: field_matmul(FIELD, a, b, backend="limb"))
    assert result.shape == (N_BIG, N_BIG)
    assert np.array_equal(result, field_matmul(FIELD, a, b, backend="generic"))


def test_float_matmul_reference_speed_n256(benchmark, big_operands):
    a, b = big_operands
    af, bf = a.astype(np.float64), b.astype(np.float64)
    result = benchmark(lambda: af @ bf)
    assert result.shape == (N_BIG, N_BIG)


def _best_of(fn, reps):
    best = np.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_limb_backend_speedup_acceptance(big_operands, quick):
    """The limb path must beat the generic oracle by >= 3x at N=256.

    (Measured ~8x on the reference container; 3 leaves slack for noisy
    CI neighbours.  Min-of-reps so a single descheduled rep cannot fail
    the gate.)
    """
    a, b = big_operands
    reps = 3 if quick else 5
    generic = _best_of(lambda: field_matmul(FIELD, a, b, backend="generic"), reps)
    limb = _best_of(lambda: field_matmul(FIELD, a, b, backend="limb"), reps)
    speedup = generic / limb
    print(f"\nfield_matmul N={N_BIG}: generic {generic * 1e3:.2f}ms,"
          f" limb {limb * 1e3:.2f}ms, speedup {speedup:.1f}x")
    assert speedup >= 3.0


@pytest.mark.parametrize("backend", ["generic", "limb"])
def test_forward_encode_speed(benchmark, backend):
    from repro.fieldmath import use_backend

    coeffs = CoefficientSet.generate(RNG, k=4, m=1, extra_shares=1)
    encoder = ForwardEncoder(coeffs, RNG)
    x = RNG.uniform((4, 3, 32, 32))
    with use_backend(backend):
        batch = benchmark(lambda: encoder.encode(x))
    assert batch.shares.shape[0] == 6


@pytest.mark.parametrize("backend", ["generic", "limb"])
def test_forward_decode_speed(benchmark, backend):
    from repro.fieldmath import use_backend

    coeffs = CoefficientSet.generate(RNG, k=4, m=1, extra_shares=1)
    decoder = ForwardDecoder(coeffs)
    outputs = RNG.uniform((6, 3, 32, 32))
    with use_backend(backend):
        decoded = benchmark(lambda: decoder.decode(outputs))
    assert decoded.shape == (4, 3, 32, 32)


@pytest.mark.parametrize("backend", ["generic", "limb"])
def test_backward_decode_many_speed(benchmark, backend):
    """Batched gamma decode: R equation sets in one GEMM (bit-checked)."""
    from repro.fieldmath import use_backend

    coeffs = CoefficientSet.generate(RNG, k=4, m=1, extra_shares=1)
    decoder = BackwardDecoder(coeffs)
    equations = RNG.uniform((16, coeffs.n_shares, 64, 64))
    with use_backend(backend):
        decoded = benchmark(lambda: decoder.decode_many(equations))
    assert decoded.shape == (16, 64, 64)
    loop = np.stack([decoder.decode(eq) for eq in equations])
    assert np.array_equal(decoded, loop)


def test_backward_reference_aggregate_speed(benchmark):
    """The unmasked Σ<δ,x> baseline: stacked terms, one modular reduction."""
    deltas = RNG.uniform((32, 64))
    inputs = RNG.uniform((32, 128))

    def outer(d, x):
        return field_matmul(FIELD, x.reshape(-1, 1), d.reshape(1, -1))

    out = benchmark(lambda: reference_aggregate(FIELD, deltas, inputs, outer))
    assert out.shape == (128, 64)


def test_coefficient_generation_speed(benchmark):
    result = benchmark(
        lambda: CoefficientSet.generate(RNG, k=4, m=2, extra_shares=1)
    )
    assert result.verify()


def test_quantize_speed(benchmark):
    """Float -> field lift as one in-place ufunc chain (no Python loops)."""
    q = QuantizationConfig()
    rng = np.random.default_rng(0)
    values = rng.standard_normal((4, 3, 32, 32))
    out = benchmark(lambda: q.quantize(values))
    assert out.shape == values.shape
    assert out.dtype == np.int64


def test_dequantize_product_speed(benchmark):
    """Algorithm 1 line 9 (two rounding divisions) over one float64 buffer."""
    q = QuantizationConfig()
    rng = np.random.default_rng(0)
    products = q.quantize(rng.standard_normal((4, 3, 32, 32)), bias=True)
    out = benchmark(lambda: q.dequantize_product(products))
    assert out.shape == products.shape
    assert out.dtype == np.float64


@pytest.mark.parametrize("scratch", ["alloc", "scratch"])
def test_forward_encode_hot_path_speed(benchmark, scratch):
    """Encode at serving steady state: scratch reuse vs fresh allocation.

    Same kernel, same bits either way — the scratch pool only recycles
    non-escaping staging buffers (the limb planes and the concat input),
    which is what lets a steady-state flush window allocate nothing.
    Timed at 64x64 feature maps: below ~32x32 the per-call key lookups
    cost more than the (freelist-cheap) small allocations they avoid;
    at layer sizes the reuse wins (~1.2x encode, ~1.8x decode).
    """
    from repro.fieldmath import use_backend

    coeffs = CoefficientSet.generate(RNG, k=4, m=1, extra_shares=1)
    encoder = ForwardEncoder(coeffs, RNG)
    x = RNG.uniform((4, 3, 64, 64))
    previous = enable_scratch(scratch == "scratch")
    try:
        with use_backend("limb"):
            batch = benchmark(lambda: encoder.encode(x))
    finally:
        enable_scratch(previous)
    assert batch.shares.shape[0] == 6


@pytest.mark.parametrize("scratch", ["alloc", "scratch"])
def test_forward_decode_hot_path_speed(benchmark, scratch):
    """Decode at serving steady state: scratch reuse vs fresh allocation."""
    from repro.fieldmath import use_backend

    coeffs = CoefficientSet.generate(RNG, k=4, m=1, extra_shares=1)
    decoder = ForwardDecoder(coeffs)
    outputs = RNG.uniform((6, 3, 64, 64))
    previous = enable_scratch(scratch == "scratch")
    try:
        with use_backend("limb"):
            reference = decoder.decode(outputs)
            decoded = benchmark(lambda: decoder.decode(outputs))
    finally:
        enable_scratch(previous)
    assert decoded.shape == (4, 3, 64, 64)
    assert np.array_equal(decoded, reference)


def test_conv2d_batched_gemm_speed(benchmark):
    """The whole-batch conv lowering: one stacked GEMM per layer call."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal((8, 3, 16, 16))
    w = rng.standard_normal((16, 3, 3, 3))
    out = benchmark(lambda: conv2d_via_matmul(x, w, np.matmul, stride=1, pad=1))
    assert out.shape == (8, 16, 16, 16)
