"""Microbenchmarks of the library's hot kernels (real wall-clock timing).

Unlike the exhibit benches (which assert *modeled* shapes), these time the
actual numpy implementations that every experiment runs on: the chunked
field matmul against plain float matmul (the price of overflow-safe modular
arithmetic), and the encode/decode primitives at a realistic layer size.
Useful for regression-tracking the simulator's own performance.
"""

import numpy as np
import pytest

from repro.fieldmath import FieldRng, PrimeField, field_matmul
from repro.masking import CoefficientSet, ForwardDecoder, ForwardEncoder

FIELD = PrimeField()
RNG = FieldRng(FIELD, seed=0)
N = 96


@pytest.fixture(scope="module")
def operands():
    return RNG.uniform((N, N)), RNG.uniform((N, N))


def test_field_matmul_speed(benchmark, operands):
    a, b = operands
    result = benchmark(lambda: field_matmul(FIELD, a, b))
    assert result.shape == (N, N)


def test_float_matmul_reference_speed(benchmark, operands):
    a, b = operands
    af, bf = a.astype(np.float64), b.astype(np.float64)
    result = benchmark(lambda: af @ bf)
    assert result.shape == (N, N)


def test_forward_encode_speed(benchmark):
    coeffs = CoefficientSet.generate(RNG, k=4, m=1, extra_shares=1)
    encoder = ForwardEncoder(coeffs, RNG)
    x = RNG.uniform((4, 3, 32, 32))
    batch = benchmark(lambda: encoder.encode(x))
    assert batch.shares.shape[0] == 6


def test_forward_decode_speed(benchmark):
    coeffs = CoefficientSet.generate(RNG, k=4, m=1, extra_shares=1)
    decoder = ForwardDecoder(coeffs)
    outputs = RNG.uniform((6, 3, 32, 32))
    decoded = benchmark(lambda: decoder.decode(outputs))
    assert decoded.shape == (4, 3, 32, 32)


def test_coefficient_generation_speed(benchmark):
    result = benchmark(
        lambda: CoefficientSet.generate(RNG, k=4, m=2, extra_shares=1)
    )
    assert result.verify()
