"""Offline/online split: precompute overlap vs inline mask generation.

DarKnight's enclave critical path pays for three things every flush
window: mask/noise generation, weight (re-)encoding + broadcast, and
hot-path buffer churn.  None of them *has* to be online — masks can be
pregenerated into idle pipeline gaps (the paper's offline phase), weight
encodings are static across windows, and the scratch buffers a window
needs are the same ones the last window just dropped.  ``--precompute``
moves all three off the critical path.

This bench serves the same 1,000-request integrity trace (the one
``bench_serving_throughput.py`` gates on) twice — precompute off, then
on — under a cost model that prices mask-generation bandwidth, and
asserts the whole contract at once:

* responses are **bit-identical** across the two runs (the split changes
  *when* work happens, never the bits of any answer),
* p99 latency improves by >= 1.3x (measured ~2.6x: pooled masks come
  out of idle gaps, weight staging is paid once instead of per window),
* the mask pool sustains a >= 0.9 hit rate at steady state,
* the audit trail stays green in both modes: every per-shard hash chain
  verifies and a committed window replays digest-for-digest,
* the metrics snapshot (pool/cache/scratch stats included) is strict
  JSON — ``validate_artifacts.py`` re-checks the emitted artifact.

``check_regression.py --precompute`` gates the recorded ``p99_ratio``
and ``pool_hit_rate`` in CI.
"""

import time

import numpy as np
from conftest import show

from repro.audit import replay_window
from repro.cli import build_serving_model
from repro.pipeline.timing import StageCostModel
from repro.reporting import render_table
from repro.runtime import DarKnightConfig
from repro.serving import (
    AuditConfig,
    PrivateInferenceServer,
    ServingConfig,
    synthetic_trace,
)

INPUT_SHAPE = (16,)
K = 4
#: Enclave mask-generation bandwidth (bytes/simulated-second).  Prices the
#: work the offline phase exists to hide; both runs use the same model, so
#: the comparison is apples-to-apples.
MASKGEN_BANDWIDTH = 2e8


def _run(precompute: bool, n_requests: int):
    """Serve the integrity trace once; returns (server, report, wall)."""
    config = ServingConfig(
        darknight=DarKnightConfig(
            virtual_batch_size=K, integrity=True, seed=1
        ),
        coalesce=True,
        n_workers=1,
        queue_capacity=2 * n_requests,
        max_batch_wait=0.01,
        stage_costs=StageCostModel(maskgen_bandwidth=MASKGEN_BANDWIDTH),
        precompute=precompute,
        audit=AuditConfig(),
    )
    network, input_shape = build_serving_model("tiny", seed=1)
    assert input_shape == INPUT_SHAPE
    server = PrivateInferenceServer(network, config)
    trace = synthetic_trace(
        n_requests, INPUT_SHAPE, n_tenants=4, mean_interarrival=2e-4, seed=1
    )
    start = time.perf_counter()
    report = server.serve_trace(trace)
    wall = time.perf_counter() - start
    return server, report, wall


def _sorted_logits(report) -> np.ndarray:
    outcomes = sorted(report.completed, key=lambda o: o.request_id)
    return np.stack([o.logits for o in outcomes])


def _audit_green(server) -> int:
    """Verify every shard chain and replay one committed window per log.

    Returns the number of windows whose digests were re-derived.
    """
    network, _ = build_serving_model("tiny", seed=1)
    replayed = 0
    for log in server.audit.logs.values():
        assert log.verify_chain() == len(log.entries)
        for entry in log.entries:
            if not entry["leaves"]:
                continue
            result = replay_window(entry, network, server.darknight)
            assert result.matched and not result.mismatches
            replayed += 1
            break
    return replayed


def test_precompute_overlap_on_integrity_trace(benchmark, capsys, quick):
    """>= 1.3x p99 and >= 0.9 pool hit rate at bit-identical responses."""
    n = 200 if quick else 1000

    def run_pair():
        return _run(precompute=False, n_requests=n), _run(
            precompute=True, n_requests=n
        )

    (
        (server_off, off, wall_off),
        (server_on, on, wall_on),
    ) = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    assert len(off.completed) == len(on.completed) == n
    for report in (off, on):
        assert report.metrics.decode_errors == 0
        assert report.metrics.integrity_failures == 0
        assert report.metrics.shed == 0

    # The split must never change a single bit of any response.
    assert np.array_equal(_sorted_logits(off), _sorted_logits(on))

    p99_off = off.metrics.latency_percentile(99)
    p99_on = on.metrics.latency_percentile(99)
    p99_ratio = p99_on / p99_off
    pre = on.precompute
    assert pre is not None
    hit_rate = pre["hit_rate"]

    rows = [
        [
            "inline (off)",
            f"{p99_off * 1e3:.2f}",
            f"{off.metrics.throughput:.0f}",
            "-",
            "-",
            f"{n / wall_off:.0f}",
        ],
        [
            "precompute (on)",
            f"{p99_on * 1e3:.2f}",
            f"{on.metrics.throughput:.0f}",
            f"{hit_rate:.3f}",
            f"{pre['weights_reused']}",
            f"{n / wall_on:.0f}",
        ],
    ]
    show(
        capsys,
        render_table(
            ["mode", "p99 ms", "sim req/s", "pool hit", "w reuse", "wall req/s"],
            rows,
            title=(
                "Precompute overlap — offline/online split on the"
                f" {n}-request integrity trace"
                f" (p99 {p99_off / p99_on:.2f}x better, bit-identical)"
            ),
        ),
    )

    assert p99_off / p99_on >= 1.3, (
        f"p99 improved only {p99_off / p99_on:.2f}x with precompute on"
    )
    assert hit_rate is not None and hit_rate >= 0.9, (
        f"mask pool hit rate {hit_rate} below steady-state bar"
    )
    # Weight encodings are cached after the first window per (shard, layer).
    assert pre["weights_reused"] > pre["weights_staged"]

    # Audit trail green in both modes: chains verify, windows replay.
    assert _audit_green(server_off) >= 1
    assert _audit_green(server_on) >= 1

    # Gate inputs for check_regression.py --precompute, plus the full
    # strict-JSON metrics snapshot so validate_artifacts.py covers the
    # pool/cache/scratch stats (no inf/NaN may survive serialization).
    benchmark.extra_info["n_requests"] = n
    benchmark.extra_info["p99_ratio"] = p99_ratio
    benchmark.extra_info["pool_hit_rate"] = hit_rate
    benchmark.extra_info["weights_reused"] = pre["weights_reused"]
    benchmark.extra_info["metrics_snapshot"] = on.metrics.snapshot()
