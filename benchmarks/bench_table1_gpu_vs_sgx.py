"""Table 1: GPU-over-SGX speedup per operation class (VGG16 on ImageNet).

Paper values — Forward: linear 126.85x, maxpool 11.86x, relu 119.60x, total
119.03x; Backward: 149.13x, 5.47x, 6.59x, 124.56x.  These are the model's
calibration anchors, so the reproduction should match tightly.
"""

from conftest import show

from repro.perf import table1_rows
from repro.reporting import render_table

PAPER = {
    "Forward Pass": (126.85, 11.86, 119.60, 119.03),
    "Backward Propagation": (149.13, 5.47, 6.59, 124.56),
}


def test_table1_gpu_vs_sgx(benchmark, capsys):
    rows = benchmark(table1_rows)
    rendered = render_table(
        ["Operations", "Linear Ops", "Maxpool", "Relu", "Total", "(paper total)"],
        [
            [
                r["operation"],
                f"{r['linear']:.2f}x",
                f"{r['maxpool']:.2f}x",
                f"{r['relu']:.2f}x",
                f"{r['total']:.2f}x",
                f"{PAPER[r['operation']][3]:.2f}x",
            ]
            for r in rows
        ],
        title="Table 1 — Speedup in GPU relative to SGX, VGG16 training on ImageNet",
    )
    show(capsys, rendered)
    for r in rows:
        paper_lin, paper_mp, paper_relu, paper_total = PAPER[r["operation"]]
        assert abs(r["linear"] - paper_lin) / paper_lin < 0.05
        assert abs(r["maxpool"] - paper_mp) / paper_mp < 0.05
        assert abs(r["relu"] - paper_relu) / paper_relu < 0.05
        assert abs(r["total"] - paper_total) / paper_total < 0.10
