"""Adaptive coalescing vs static knobs on bursty / steady / ramping traffic.

The static flush deadline (``max_batch_wait``) is tuned for one arrival
process; every other regime pays for it — burst-tail stragglers idle out
the full deadline while the queue is provably going to stay empty.  The
adaptive policy (:mod:`repro.serving.adaptive`) learns each shard's
inter-arrival EWMA and flushes partials as soon as filling becomes
unlikely, with the static deadline as a hard ceiling, so it can only
ship *earlier* than the static server.

Acceptance (asserted below):

* bursty trace — adaptive p99 latency >= 20% better than static at
  equal-or-better batch fill ratio;
* every adaptive batch's masking working set stays inside the EPC
  budget (and a deliberately tiny budget clamps ``K`` down);
* with adaptive batching *off* the served logits are bit-identical to
  the static server's — the default path is untouched.
"""

import numpy as np
from conftest import show

from repro.cli import build_serving_model
from repro.reporting import render_table
from repro.runtime import DarKnightConfig
from repro.serving import (
    AdaptiveBatchingConfig,
    PrivateInferenceServer,
    ServingConfig,
    bursty_trace,
    ramping_trace,
    synthetic_trace,
    working_set_bytes,
)

INPUT_SHAPE = (16,)
K = 4
MAX_WAIT = 0.01


def _server(adaptive: bool, n_requests: int, seed: int = 0, epc_budget=None):
    dk = DarKnightConfig(
        virtual_batch_size=K, seed=seed, epc_budget_bytes=epc_budget
    )
    config = ServingConfig(
        darknight=dk,
        adaptive=AdaptiveBatchingConfig() if adaptive else None,
        max_batch_wait=MAX_WAIT,
        queue_capacity=2 * n_requests,
    )
    network, input_shape = build_serving_model("tiny", seed=seed)
    assert input_shape == INPUT_SHAPE
    return PrivateInferenceServer(network, config)


def _traces(n: int, seed: int = 2) -> dict:
    return {
        "bursty": bursty_trace(
            n, INPUT_SHAPE, burst_size=11, intra_gap=2e-4, burst_gap=5e-2, seed=seed
        ),
        "steady": synthetic_trace(
            n, INPUT_SHAPE, mean_interarrival=1e-3, seed=seed
        ),
        "ramping": ramping_trace(
            n, INPUT_SHAPE, start_interarrival=5e-3, end_interarrival=2e-4, seed=seed
        ),
    }


def test_adaptive_beats_static_deadline_on_bursty_traffic(benchmark, capsys, quick):
    """>= 20% p99 win on the bursty trace at equal-or-better fill."""
    n = 120 if quick else 240

    def run_all():
        results = {}
        for name, trace in _traces(n).items():
            static = _server(adaptive=False, n_requests=n).serve_trace(trace)
            adaptive = _server(adaptive=True, n_requests=n).serve_trace(trace)
            results[name] = (static, adaptive)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, (static, adaptive) in results.items():
        p99_s = static.metrics.latency_percentile(99)
        p99_a = adaptive.metrics.latency_percentile(99)
        rows.append(
            [
                name,
                f"{p99_s * 1e3:.2f}",
                f"{p99_a * 1e3:.2f}",
                f"{(1 - p99_a / p99_s) * 100:+.1f}%",
                f"{static.metrics.batch_fill_ratio:.3f}",
                f"{adaptive.metrics.batch_fill_ratio:.3f}",
                adaptive.adaptive[0]["deadline_flushes"],
            ]
        )
    show(
        capsys,
        render_table(
            [
                "trace", "static p99 ms", "adaptive p99 ms", "p99 gain",
                "static fill", "adaptive fill", "deadline flushes",
            ],
            rows,
            title=(
                "Adaptive coalescing — learned flush deadline vs static"
                f" max_batch_wait={MAX_WAIT * 1e3:.0f}ms (K={K})"
            ),
        ),
    )

    for name, (static, adaptive) in results.items():
        assert len(static.completed) == len(adaptive.completed) == n
        assert adaptive.metrics.decode_errors == 0
        assert adaptive.metrics.integrity_failures == 0

    static, adaptive = results["bursty"]
    p99_s = static.metrics.latency_percentile(99)
    p99_a = adaptive.metrics.latency_percentile(99)
    assert p99_a <= 0.8 * p99_s, (
        f"adaptive p99 {p99_a * 1e3:.2f}ms vs static {p99_s * 1e3:.2f}ms:"
        f" only {(1 - p99_a / p99_s) * 100:.1f}% better (need >= 20%)"
    )
    assert (
        adaptive.metrics.batch_fill_ratio
        >= static.metrics.batch_fill_ratio - 1e-9
    ), "adaptive must not trade fill away on the bursty trace"
    # The ceiling guarantee: the learned deadline is clamped at the
    # static one, so even on regimes with nothing to learn (steady,
    # ramping) the tail stays in the static server's neighbourhood —
    # misaligned batch boundaries cost at most a deadline's worth.
    for name, (static, adaptive) in results.items():
        assert adaptive.metrics.latency_percentile(99) <= 1.5 * (
            static.metrics.latency_percentile(99)
        ), f"{name}: adaptive p99 regressed past the static ceiling"


def test_adaptive_batches_respect_the_epc_budget(capsys, quick):
    """No flushed batch's masking working set exceeds usable EPC, and a
    tiny budget visibly clamps ``K`` below the configured size."""
    n = 48 if quick else 96
    trace = _traces(n)["bursty"]

    # Default budget: the tiny model fits at the configured K.
    server = _server(adaptive=True, n_requests=n)
    report = server.serve_trace(trace)
    snap = report.adaptive[0]
    assert snap is not None and snap["epc_budget_bytes"] is not None
    policy = server.scheduler.shards[0].policy
    for outcome in report.outcomes:
        assert outcome.batch_id is not None
    assert policy.window_working_set_bytes(server.darknight.virtual_batch_size) <= (
        snap["epc_budget_bytes"]
    ), "provisioned K's working set must fit the EPC budget"

    # Shrunken budget: K gets clamped, the working set still fits, and
    # every request is still served.
    slot = snap["slot_bytes"]
    tight_budget = working_set_bytes(2, slot, collusion_tolerance=1) + slot
    clamped = _server(adaptive=True, n_requests=n, epc_budget=tight_budget)
    assert clamped.darknight.virtual_batch_size < K
    clamped_report = clamped.serve_trace(trace)
    assert len(clamped_report.completed) == n
    clamped_snap = clamped_report.adaptive[0]
    clamped_policy = clamped.scheduler.shards[0].policy
    assert clamped_policy.window_working_set_bytes(
        clamped.darknight.virtual_batch_size
    ) <= clamped_snap["epc_budget_bytes"]
    # The enclave model itself never overflowed into paging.
    assert not clamped.shards[0].enclave.epc.is_overflowing
    show(
        capsys,
        f"EPC-aware K: budget {tight_budget}B clamps K {K} ->"
        f" {clamped.darknight.virtual_batch_size}"
        f" (slot {slot}B, all {n} requests served)",
    )


def test_adaptive_off_is_bit_identical_to_static_serving(quick):
    """The default (static) path must be untouched by this feature: a
    ServingConfig with ``adaptive=None`` and one never constructed with
    the field serve identical bits on the same trace."""
    n = 48 if quick else 96
    trace = _traces(n, seed=5)["bursty"]
    baseline = _server(adaptive=False, n_requests=n).serve_trace(trace)

    network, _ = build_serving_model("tiny", seed=0)
    legacy_config = ServingConfig(
        darknight=DarKnightConfig(virtual_batch_size=K, seed=0),
        max_batch_wait=MAX_WAIT,
        queue_capacity=2 * n,
    )
    legacy = PrivateInferenceServer(network, legacy_config).serve_trace(trace)

    a = {o.request_id: o for o in baseline.completed}
    b = {o.request_id: o for o in legacy.completed}
    assert sorted(a) == sorted(b) == list(range(n))
    for rid in a:
        assert np.array_equal(a[rid].logits, b[rid].logits)
        assert a[rid].completion_time == b[rid].completion_time
        assert a[rid].batch_id == b[rid].batch_id
