"""Table 2: qualitative comparison of prior privacy techniques.

A static capability matrix (• supported / ◦ not); reproduced verbatim from
the paper so downstream docs can regenerate it.
"""

from conftest import show

from repro.perf import TABLE2_HEADERS, table2_rows
from repro.reporting import render_table


def test_table2_feature_matrix(benchmark, capsys):
    rows = benchmark(table2_rows)
    show(
        capsys,
        render_table(
            TABLE2_HEADERS,
            rows,
            title="Table 2 — Applications and security guarantees of prior techniques",
        ),
    )
    by_name = {r[0]: r for r in rows}
    # DarKnight is the only training-capable TEE+GPU row with integrity.
    assert by_name["DarKnight"][1] == "•"
    assert by_name["Slalom"][1] == "◦"
    assert len(rows) == 11
