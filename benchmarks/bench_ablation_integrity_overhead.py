"""Ablation: the price of integrity verification (Section 4.4).

The paper reports integrity via one redundant equation and shows its effect
only in Fig. 6a's inference bars.  This ablation isolates it for training
and inference across all three models, and cross-checks the model against
the *functional* runtime: exact GPU MAC counts with and without the
redundant share on a Mini model.
"""

import numpy as np
from conftest import show

from repro.models import build_mini_vgg, mobilenet_v2_spec, resnet50_spec, vgg16_spec
from repro.perf import CostModel
from repro.reporting import render_table
from repro.runtime import DarKnightBackend, DarKnightConfig, Trainer

SPECS = {"VGG16": vgg16_spec, "ResNet50": resnet50_spec, "MobileNetV2": mobilenet_v2_spec}


def _model_overheads():
    cm = CostModel()
    rows = []
    for name, spec_fn in SPECS.items():
        spec = spec_fn()
        for workload in ("training", "inference"):
            if workload == "training":
                plain = cm.darknight_training(spec, DarKnightConfig(virtual_batch_size=3)).total
                verified = cm.darknight_training(
                    spec, DarKnightConfig(virtual_batch_size=3, integrity=True)
                ).total
            else:
                plain = cm.darknight_inference(spec, DarKnightConfig(virtual_batch_size=3)).total
                verified = cm.darknight_inference(
                    spec, DarKnightConfig(virtual_batch_size=3, integrity=True)
                ).total
            rows.append(
                {"model": name, "workload": workload, "overhead": verified / plain}
            )
    return rows


def _functional_mac_overhead() -> float:
    """Exact extra GPU work from the redundant share, measured by ledger."""
    macs = {}
    for integrity in (False, True):
        rng = np.random.default_rng(0)
        net = build_mini_vgg(input_shape=(3, 8, 8), n_classes=4, rng=rng, width=8)
        backend = DarKnightBackend(
            DarKnightConfig(virtual_batch_size=2, integrity=integrity, seed=0)
        )
        trainer = Trainer(net, backend, lr=0.01)
        x = rng.normal(size=(2, 3, 8, 8))
        y = rng.integers(0, 4, 2)
        trainer.train_step(x, y)
        macs[integrity] = backend.cluster.total_mac_ops()
    return macs[True] / macs[False]


def test_ablation_integrity_overhead(benchmark, capsys):
    rows = benchmark(_model_overheads)
    mac_ratio = _functional_mac_overhead()
    show(
        capsys,
        render_table(
            ["Model", "Workload", "time w/ integrity vs without"],
            [[r["model"], r["workload"], f"{r['overhead']:.3f}x"] for r in rows],
            title="Ablation — integrity verification overhead (cost model, K=3)",
        )
        + f"\nfunctional cross-check (MiniVGG, exact GPU MACs): {mac_ratio:.2f}x",
    )
    for r in rows:
        assert 1.0 < r["overhead"] < 2.2, r
    # The redundant share + second Eq pass lands well under triple work.
    assert 1.1 < mac_ratio < 3.0
