"""Elastic shard autoscaling vs static provisioning on a phased trace.

The autoscaling argument in one exhibit: diurnal-in-miniature traffic
(heavy / lull / heavy phases) served three ways — statically
max-provisioned (4 shards for the whole run), statically min-provisioned
(1 shard), and elastically (1-4 shards under the control loop).  The
elastic deployment must hold tail latency close to the static maximum
while paying far fewer shard-seconds (provisioned capacity integrated
over simulated time — the "shard-hours" bill), and per-sample
normalization must keep every response bit-identical across all three.

Acceptance (asserted below):

* elastic p99 <= 1.10x the static 4-shard p99;
* elastic shard-seconds <= 0.70x the static 4-shard bill;
* zero failed/shed requests under every membership change;
* logits bit-identical to both static deployments, per request.

The regression gate (``check_regression.py --autoscale``) re-checks the
emitted ``p99_ratio`` / ``shard_seconds_ratio`` from the JSON artifact.
"""

import numpy as np
from conftest import show

from repro.cli import build_serving_model
from repro.reporting import render_table
from repro.runtime import DarKnightConfig
from repro.serving import (
    AutoscaleConfig,
    PrivateInferenceServer,
    ServingConfig,
    phased_trace,
)

INPUT_SHAPE = (16,)
K = 4
MAX_SHARDS = 4
#: Acceptance bounds the CI gate re-validates from the JSON artifact.
P99_BUDGET = 1.10
SHARD_SECONDS_BUDGET = 0.70

# Scale-out is deliberately twitchy (react to a flood within a couple of
# evaluation windows) while scale-in stays conservative — provisioning
# late is what costs tail latency, decommissioning late only costs a few
# shard-seconds.
AUTOSCALE = AutoscaleConfig(
    min_shards=1,
    max_shards=MAX_SHARDS,
    eval_interval=2e-4,
    scale_out_cooldown=3e-4,
    scale_in_cooldown=5e-3,
    queue_high=2.0,
    queue_low=0.5,
    breaches_to_scale_out=1,
    breaches_to_scale_in=6,
)


def _trace(n: int):
    """Heavy / lull / heavy: each heavy phase saturates a single shard,
    the lull leaves a static max deployment mostly idle."""
    heavy = (2 * n) // 5
    lull = n - 2 * heavy
    return phased_trace(
        [(heavy, 2e-5), (lull, 2e-2), (heavy, 2e-5)],
        INPUT_SHAPE,
        n_tenants=8,
        seed=0,
    )


def _serve(trace, num_shards, autoscale=None):
    dk = DarKnightConfig(virtual_batch_size=K, seed=0, num_shards=num_shards)
    network, _ = build_serving_model("tiny", seed=0)
    server = PrivateInferenceServer(
        network,
        ServingConfig(
            darknight=dk, queue_capacity=2 * len(trace), autoscale=autoscale
        ),
    )
    return server, server.serve_trace(trace)


def _last_completion(report) -> float:
    return max(
        o.completion_time for o in report.completed if o.completion_time is not None
    )


def test_autoscale_matches_static_p99_at_fraction_of_shard_seconds(
    benchmark, capsys, quick
):
    n = 200 if quick else 1000
    trace = _trace(n)

    def run_all():
        _, static_max = _serve(trace, MAX_SHARDS)
        _, static_min = _serve(trace, 1)
        elastic_server, elastic = _serve(trace, 1, autoscale=AUTOSCALE)
        return static_max, static_min, elastic_server, elastic

    static_max, static_min, elastic_server, elastic = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    # Zero casualties from membership changes, and full completion
    # everywhere so the latency comparison is apples to apples.
    for report in (static_max, static_min, elastic):
        assert len(report.completed) == n
        assert all(o.ok for o in report.outcomes)

    # Bit-identical logits vs *both* static shard counts.
    elastic_logits = {o.request_id: o.logits for o in elastic.completed}
    for report in (static_max, static_min):
        for o in report.completed:
            assert np.array_equal(o.logits, elastic_logits[o.request_id])

    p99_static = static_max.metrics.latency_percentile(99)
    p99_elastic = elastic.metrics.latency_percentile(99)
    p99_ratio = p99_elastic / p99_static

    # A static deployment pays for every shard for the whole run.
    static_shard_seconds = MAX_SHARDS * _last_completion(static_max)
    elastic_shard_seconds = elastic.autoscale["shard_seconds"]
    shard_seconds_ratio = elastic_shard_seconds / static_shard_seconds

    benchmark.extra_info["n_requests"] = n
    benchmark.extra_info["p99_ratio"] = p99_ratio
    benchmark.extra_info["shard_seconds_ratio"] = shard_seconds_ratio
    benchmark.extra_info["scale_outs"] = elastic.autoscale["scale_outs"]
    benchmark.extra_info["scale_ins"] = elastic.autoscale["scale_ins"]
    benchmark.extra_info["peak_shards"] = elastic.autoscale["peak_shards"]

    show(
        capsys,
        render_table(
            ["metric", "static 4", "static 1", "elastic 1-4"],
            [
                [
                    "p99 (sim ms)",
                    f"{p99_static * 1e3:.2f}",
                    f"{static_min.metrics.latency_percentile(99) * 1e3:.2f}",
                    f"{p99_elastic * 1e3:.2f}",
                ],
                [
                    "shard-seconds",
                    f"{static_shard_seconds:.3f}",
                    f"{_last_completion(static_min):.3f}",
                    f"{elastic_shard_seconds:.3f}",
                ],
                [
                    "membership",
                    "fixed 4",
                    "fixed 1",
                    f"{elastic.autoscale['scale_outs']} out /"
                    f" {elastic.autoscale['scale_ins']} in,"
                    f" peak {elastic.autoscale['peak_shards']}",
                ],
            ],
            title=(
                f"Elastic autoscaling — phased trace"
                f" ({n} requests, K={K}, bounds: p99 <= {P99_BUDGET:.2f}x,"
                f" shard-seconds <= {SHARD_SECONDS_BUDGET:.2f}x)"
            ),
        ),
    )

    assert elastic.autoscale["scale_outs"] >= 1
    assert elastic.autoscale["scale_ins"] >= 1
    assert p99_ratio <= P99_BUDGET, (
        f"elastic p99 {p99_elastic:.4f}s is {p99_ratio:.2f}x the static"
        f" 4-shard p99 {p99_static:.4f}s (budget {P99_BUDGET:.2f}x)"
    )
    assert shard_seconds_ratio <= SHARD_SECONDS_BUDGET, (
        f"elastic bill {elastic_shard_seconds:.3f} shard-seconds is"
        f" {shard_seconds_ratio:.2f}x the static bill"
        f" {static_shard_seconds:.3f} (budget {SHARD_SECONDS_BUDGET:.2f}x)"
    )
