"""Fig. 7: effect of SGX multithreading on training latency (VGG16).

Paper: counter-intuitively, adding enclave threads *increases* per-batch
latency (to ~7x at 4 threads) because concurrent working sets multiply the
encrypted-paging traffic through the shared memory-encryption engine.
"""

from conftest import show

from repro.perf import fig7_series
from repro.reporting import render_series


def test_fig7_multithreading(benchmark, capsys):
    series = benchmark(fig7_series)
    threads = sorted(series)
    show(
        capsys,
        render_series(
            "Fig 7 — SGX training latency vs threads (relative to 1 thread)",
            threads,
            [series[t] for t in threads],
            unit="x",
        ),
    )
    assert series[1] == 1.0
    assert series[2] > 1.5
    assert series[3] > series[2]
    assert series[4] > series[3]
    assert 3.0 < series[4] < 12.0  # paper eyeballs ~7x
