"""Ablation: what collusion tolerance M costs (Section 4.5's trade).

Sweeps M for a fixed virtual batch: each extra tolerated colluder adds one
noise vector, one GPU, one share of encode traffic and one column of decode
work.  The paper states the requirement (K + M + 1 <= K') but never prices
it; this ablation does, with both the cost model (full-size VGG16) and the
functional runtime's exact ledger counts (Mini model).
"""

from conftest import show

from repro.models import vgg16_spec
from repro.perf import CostModel
from repro.reporting import render_table
from repro.runtime import DarKnightConfig


def _sweep():
    cm = CostModel()
    spec = vgg16_spec()
    rows = []
    base = None
    for m in (1, 2, 3, 4):
        cfg = DarKnightConfig(virtual_batch_size=4, collusion_tolerance=m)
        total = cm.darknight_training(spec, cfg).total
        base = base or total
        rows.append(
            {
                "m": m,
                "gpus": cfg.n_gpus_required,
                "total_s": total,
                "overhead_vs_m1": total / base,
            }
        )
    return rows


def test_ablation_collusion_tolerance(benchmark, capsys):
    rows = benchmark(_sweep)
    show(
        capsys,
        render_table(
            ["M (colluders tolerated)", "GPUs needed", "per-sample time", "cost vs M=1"],
            [
                [r["m"], r["gpus"], f"{r['total_s'] * 1e3:.1f} ms", f"{r['overhead_vs_m1']:.2f}x"]
                for r in rows
            ],
            title="Ablation — price of collusion tolerance (VGG16 training, K=4)",
        ),
    )
    # Monotone and sane: more privacy costs more, but far from linearly.
    totals = [r["total_s"] for r in rows]
    assert all(b >= a for a, b in zip(totals, totals[1:]))
    assert rows[-1]["overhead_vs_m1"] < 2.0  # M=4 still under 2x of M=1
    assert [r["gpus"] for r in rows] == [5, 6, 7, 8]
