"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure from the paper's evaluation
section and prints it (visible even under pytest) so the run doubles as the
EXPERIMENTS.md evidence.  Timing uses pytest-benchmark; heavyweight
functional experiments (Fig. 4's real masked training) run a single round
via ``benchmark.pedantic``.

Passing ``--quick`` shrinks the serving/pipeline/sharding benchmarks to a
smoke-sized workload (small model, few requests) so CI's benchmark-smoke
job finishes in a couple of minutes; every acceptance assertion still runs.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run benchmarks in fast smoke mode (small model, few requests)",
    )


@pytest.fixture()
def quick(request) -> bool:
    """True when the run should use the smoke-sized workload."""
    return bool(request.config.getoption("--quick"))


def show(capsys, text: str) -> None:
    """Print a rendered exhibit, bypassing pytest capture."""
    with capsys.disabled():
        print("\n" + text + "\n")
