"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure from the paper's evaluation
section and prints it (visible even under pytest) so the run doubles as the
EXPERIMENTS.md evidence.  Timing uses pytest-benchmark; heavyweight
functional experiments (Fig. 4's real masked training) run a single round
via ``benchmark.pedantic``.
"""

from __future__ import annotations


def show(capsys, text: str) -> None:
    """Print a rendered exhibit, bypassing pytest capture."""
    with capsys.disabled():
        print("\n" + text + "\n")
