"""Fig. 5: ImageNet training speedup, non-pipelined and pipelined.

Paper: VGG16 > 8x non-pipelined (linear-op time cut 23x); ResNet50 4.2x;
MobileNetV2 2.2x; pipelining overlaps communication under compute, lifting
linear-op speedups to 20-158x and the overall numbers above the
non-pipelined bars.
"""

from conftest import show

from repro.perf import fig5_series
from repro.reporting import render_table

PAPER_OVERALL = {"VGG16": 8.0, "ResNet50": 4.2, "MobileNetV2": 2.2}


def test_fig5_training_speedup(benchmark, capsys):
    series = benchmark(fig5_series)
    rendered = render_table(
        ["Model", "non-pipelined", "(paper)", "pipelined", "linear x (pipe)", "linear x (non-pipe)"],
        [
            [
                model,
                f"{v['non_pipelined']:.1f}x",
                f"{PAPER_OVERALL[model]:.1f}x",
                f"{v['pipelined']:.1f}x",
                f"{v['linear_speedup_pipelined']:.0f}x",
                f"{v['linear_speedup_non_pipelined']:.0f}x",
            ]
            for model, v in series.items()
        ],
        title="Fig 5 — ImageNet training speedup over the SGX-only baseline",
    )
    show(capsys, rendered)
    for model, v in series.items():
        paper = PAPER_OVERALL[model]
        assert abs(v["non_pipelined"] - paper) / paper < 0.5, model
        assert v["pipelined"] > v["non_pipelined"]
    # Paper's pipelined linear-op speedups span roughly 20-158x.
    lin = [v["linear_speedup_pipelined"] for v in series.values()]
    assert max(lin) > 50 and min(lin) > 10
    # Ordering: VGG benefits most, MobileNet least.
    assert (
        series["VGG16"]["non_pipelined"]
        > series["ResNet50"]["non_pipelined"]
        > series["MobileNetV2"]["non_pipelined"]
    )
